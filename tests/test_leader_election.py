"""Leader election via Compete on random candidate identifiers."""

import pytest

from repro import elect_leader, topology
from repro.errors import ConfigurationError


def test_acceptance_unique_leader_on_complete_graph():
    """Acceptance criterion: >= 95/100 seeded trials on K_n elect a
    unique leader that every node agrees on."""
    graph = topology.complete_graph(16)
    unique_successes = 0
    for seed in range(100):
        result = elect_leader(graph, seed=seed)
        if not result.success:
            continue
        finals = set(result.compete_result.final_messages.values())
        if len(finals) == 1 and result.leader in graph:
            unique_successes += 1
    assert unique_successes >= 95


def test_leader_election_on_path_and_random_graph():
    for graph in (
        topology.path_graph(24),
        topology.connected_gnp_graph(24, 0.2, seed=4),
    ):
        result = elect_leader(graph, seed=11)
        assert result.success
        assert result.leader in graph
        assert result.attempts >= 1
        assert result.rounds > 0


def test_rounds_and_metrics_accumulate_across_attempts():
    graph = topology.complete_graph(8)
    result = elect_leader(graph, seed=5)
    assert result.metrics.rounds == result.rounds
    if result.attempts > 1:
        # A failed attempt charges the full schedule, so total rounds
        # exceed the final attempt's alone.
        assert result.rounds > result.compete_result.rounds


def test_single_node_elects_itself():
    result = elect_leader(topology.path_graph(1), seed=0)
    assert result.success
    assert result.leader == 0


def test_deterministic_given_seed():
    graph = topology.complete_graph(12)
    first = elect_leader(graph, seed=21)
    second = elect_leader(graph, seed=21)
    assert first.leader == second.leader
    assert first.attempts == second.attempts
    assert first.rounds == second.rounds


def test_candidate_probability_one_always_has_candidates():
    graph = topology.star_graph(6)
    result = elect_leader(graph, seed=2, candidate_probability=1.0)
    assert result.success
    assert result.num_candidates == 7


def test_invalid_arguments_rejected():
    graph = topology.path_graph(4)
    with pytest.raises(ConfigurationError):
        elect_leader(graph, seed=0, candidate_probability=0.0)
    with pytest.raises(ConfigurationError):
        elect_leader(graph, seed=0, candidate_probability=1.5)
    with pytest.raises(ConfigurationError):
        elect_leader(graph, seed=0, max_attempts=0)
