"""The repro.api layer: ExecutionConfig, resolve_execution, the registry.

Covers (a) config validation and immutability, (b) the single-source
engine-resolution path and its dense/sparse crossover regression pins,
(c) the algorithm registry's capability enforcement and plugin seam, and
(d) the deprecation shims: each legacy kwarg spelling must warn exactly
once, build the equivalent config, and yield seed-identical results.
"""

import dataclasses
import warnings

import pytest

from repro import topology
from repro.api import (
    DEFAULT_ALGORITHMS,
    Algorithm,
    AlgorithmRegistry,
    ExecutionConfig,
    coerce_execution_config,
    get_algorithm,
    resolve_execution,
)
from repro.core.broadcast import broadcast
from repro.core.compete import Compete, SkeletonStrategy, compete
from repro.core.leader_election import elect_leader
from repro.core.parameters import CompeteParameters
from repro.errors import ConfigurationError
from repro.network.radio import CollisionModel
from repro.simulation.sparse import (
    DENSE_NODE_CUTOFF,
    SPARSE_DENSITY_CUTOFF,
    resolve_engine,
    select_engine,
    sparse_crossover_edges,
)
from repro.simulation.vectorized import VectorizedCompeteEngine


# ----------------------------------------------------------------------
# ExecutionConfig
# ----------------------------------------------------------------------
def test_config_defaults_and_describe():
    config = ExecutionConfig()
    assert config.backend == "reference"
    assert config.engine == "auto"
    assert config.strategy == "skeleton"
    assert config.collision_model is CollisionModel.NO_DETECTION
    assert config.parameters is None
    assert config.rng == "replay"
    assert config.describe()["strategy"] == "skeleton"
    assert config.describe()["collision_model"] == "no-detection"


def test_config_validation_rejects_bad_axes():
    with pytest.raises(ConfigurationError, match="backend"):
        ExecutionConfig(backend="warp-drive")
    with pytest.raises(ConfigurationError, match="engine"):
        ExecutionConfig(engine="gpu")
    with pytest.raises(ConfigurationError, match="strategy"):
        ExecutionConfig(strategy="quantum")
    with pytest.raises(ConfigurationError, match="collision_model"):
        ExecutionConfig(collision_model="psychic")
    with pytest.raises(ConfigurationError, match="margin"):
        ExecutionConfig(margin=0)
    with pytest.raises(ConfigurationError, match="draw_block"):
        ExecutionConfig(draw_block=0)
    with pytest.raises(ConfigurationError, match="rng"):
        ExecutionConfig(rng="quantum")
    # "decoupled" is a valid policy but only for the vectorized backend:
    # the reference runner is *defined* by its per-node stream replay.
    with pytest.raises(ConfigurationError, match="decoupled"):
        ExecutionConfig(rng="decoupled", backend="reference")
    assert ExecutionConfig(
        rng="decoupled", backend="vectorized"
    ).rng == "decoupled"
    with pytest.raises(ConfigurationError, match="parameters"):
        ExecutionConfig(parameters="not-parameters")


def test_config_normalises_collision_model_strings():
    config = ExecutionConfig(collision_model="with-detection")
    assert config.collision_model is CollisionModel.WITH_DETECTION
    # ...and the string spelling equals the enum spelling.
    assert config == ExecutionConfig(
        collision_model=CollisionModel.WITH_DETECTION
    )


def test_config_is_immutable_and_replace_derives():
    config = ExecutionConfig(backend="vectorized")
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.backend = "reference"
    derived = config.replace(engine="sparse", strategy="clustered")
    assert (derived.backend, derived.engine) == ("vectorized", "sparse")
    assert config.engine == "auto"  # original untouched
    with pytest.raises(ConfigurationError):
        config.replace(engine="gpu")  # replace re-validates


def test_config_accepts_strategy_instances():
    config = ExecutionConfig(strategy=SkeletonStrategy())
    assert config.strategy_name == "skeleton"
    assert isinstance(config.strategy_instance(), SkeletonStrategy)


# ----------------------------------------------------------------------
# resolve_execution: the one shared resolution path
# ----------------------------------------------------------------------
def test_resolve_execution_derives_everything():
    graph = topology.path_graph(16)
    resolved = resolve_execution(graph, ExecutionConfig(strategy="clustered"))
    assert resolved.parameters == CompeteParameters.from_graph(graph)
    assert resolved.strategy.name == "clustered"
    assert resolved.engine == "dense"  # n = 16 is far below the cutoff
    assert resolved.collision_model is CollisionModel.NO_DETECTION
    schedule = resolved.schedule
    assert schedule is resolved.schedule  # built once, cached
    assert set(schedule.nodes) == set(graph.nodes())


def test_resolve_execution_rejects_mismatched_parameters():
    graph = topology.path_graph(8)
    wrong = CompeteParameters.from_graph(topology.path_graph(9))
    with pytest.raises(ConfigurationError, match="n=9"):
        resolve_execution(graph, ExecutionConfig(), parameters=wrong)
    with pytest.raises(ConfigurationError, match="n=9"):
        resolve_execution(graph, ExecutionConfig(parameters=wrong))


def test_resolve_execution_honours_explicit_parameters():
    graph = topology.path_graph(8)
    explicit = CompeteParameters(
        num_nodes=8, diameter=7, decay_steps=3, num_decay_rounds=5
    )
    assert resolve_execution(
        graph, ExecutionConfig(parameters=explicit)
    ).parameters == explicit
    # The per-call override wins over the config's field.
    override = CompeteParameters(
        num_nodes=8, diameter=7, decay_steps=3, num_decay_rounds=9
    )
    resolved = resolve_execution(
        graph, ExecutionConfig(parameters=explicit), parameters=override
    )
    assert resolved.parameters == override


def test_engine_crossover_regression():
    # The dense<->sparse crossover of the auto heuristic, pinned so the
    # single source of truth cannot silently move: dense at and below
    # the node cutoff regardless of shape, sparse above it while the
    # edge density stays below the cutoff, dense again at high density.
    assert DENSE_NODE_CUTOFF == 1024 and SPARSE_DENSITY_CUTOFF == 0.125
    assert select_engine(DENSE_NODE_CUTOFF, DENSE_NODE_CUTOFF - 1) == "dense"
    assert select_engine(DENSE_NODE_CUTOFF + 1, DENSE_NODE_CUTOFF) == "sparse"
    # sparse_crossover_edges is the one exported statement of where the
    # density boundary sits; pin its concrete values so a cutoff change
    # cannot land without touching this line.
    n = 2048
    boundary = sparse_crossover_edges(n)
    assert boundary == 262016
    assert sparse_crossover_edges(4096) == 1048320
    assert select_engine(n, boundary - 1) == "sparse"
    assert select_engine(n, boundary) == "dense"
    # resolve_engine (the funnel resolve_execution applies) agrees with
    # the raw heuristic on "auto" and passes concrete kinds through.
    for num_nodes, num_edges in [(8, 7), (1025, 1024), (n, boundary)]:
        assert resolve_engine("auto", num_nodes, num_edges) == select_engine(
            num_nodes, num_edges
        )
    assert resolve_engine("dense", 10**6, 10**6) == "dense"


def test_resolution_is_the_single_crossover_authority():
    # Every consumer of the heuristic -- resolve_execution, the Compete
    # primitive, the engine constructor -- must report the same kernel
    # for the same graph, on both sides of the node-cutoff crossover.
    below = topology.path_graph(32)
    above = topology.path_graph(DENSE_NODE_CUTOFF + 1)
    for graph, expected in ((below, "dense"), (above, "sparse")):
        resolved = resolve_execution(graph, ExecutionConfig())
        assert resolved.engine == expected
        assert Compete(graph).selected_engine() == expected
        assert resolved.build_engine().engine == expected


def test_engine_config_excludes_every_explicit_keyword():
    # config= carries its own engine and draw_block; silently ignoring
    # an explicit one would run a different kernel than requested.
    graph = topology.path_graph(6)
    for kwargs in (
        {"max_rounds": 4},
        {"engine": "sparse"},
        {"draw_block": 7},
        {"decay_steps": 2},
    ):
        with pytest.raises(ConfigurationError, match="config"):
            VectorizedCompeteEngine(
                graph, config=ExecutionConfig(), **kwargs
            )


def test_engine_from_config_matches_explicit_construction():
    graph = topology.grid_graph(4, 4)
    config = ExecutionConfig(engine="sparse")
    from_config = VectorizedCompeteEngine(graph, config=config)
    resolved = resolve_execution(graph, config)
    explicit = VectorizedCompeteEngine(
        graph,
        schedule=resolved.schedule,
        max_rounds=resolved.parameters.total_rounds,
        engine="sparse",
    )
    assert from_config.engine == explicit.engine == "sparse"
    import numpy as np

    ranks = np.zeros((2, graph.num_nodes), dtype=np.int64)
    ranks[:, 0] = 1
    a = from_config.run_batch(ranks.copy(), 1, [0, 1])
    b = explicit.run_batch(ranks.copy(), 1, [0, 1])
    assert np.array_equal(a.rounds, b.rounds)
    assert np.array_equal(a.final_ranks, b.final_ranks)


# ----------------------------------------------------------------------
# the algorithm registry
# ----------------------------------------------------------------------
def test_default_registry_contents_and_capabilities():
    assert set(DEFAULT_ALGORITHMS.names()) == {
        "broadcast", "leader-election", "decay-broadcast"
    }
    assert len(DEFAULT_ALGORITHMS) == 3
    broadcast_spec = get_algorithm("broadcast")
    assert broadcast_spec.spontaneous_default is True
    assert broadcast_spec.run_batch is not None
    election = get_algorithm("leader-election")
    assert election.extra_series == ("attempts",)
    assert election.run_batch is None
    decay = get_algorithm("decay-broadcast")
    assert decay.supports_spontaneous is False
    with pytest.raises(ConfigurationError, match="unknown algorithm"):
        get_algorithm("teleport")


def test_registry_enforces_capabilities():
    graph = topology.star_graph(6)
    with pytest.raises(ConfigurationError, match="spontaneous"):
        DEFAULT_ALGORITHMS.run(
            "decay-broadcast", graph, seed=0, spontaneous=True
        )
    narrow = Algorithm(
        name="detect-only",
        description="",
        run=lambda graph, **kwargs: None,
        collision_models=frozenset({CollisionModel.WITH_DETECTION}),
    )
    with pytest.raises(ConfigurationError, match="collision model"):
        narrow.check(
            collision_model=CollisionModel.NO_DETECTION, spontaneous=False
        )
    with pytest.raises(ConfigurationError, match="requires spontaneous"):
        Algorithm(
            name="needs-spont", description="",
            run=lambda graph, **kwargs: None, requires_spontaneous=True,
        ).check(
            collision_model=CollisionModel.NO_DETECTION, spontaneous=False
        )
    with pytest.raises(ConfigurationError):
        Algorithm(
            name="broken", description="",
            run=lambda graph, **kwargs: None,
            supports_spontaneous=False, requires_spontaneous=True,
        )


def test_registry_rejects_duplicates_and_dispatches():
    registry = AlgorithmRegistry()

    def constant_run(graph, *, config, seed, spontaneous):
        return {"n": graph.num_nodes, "backend": config.backend}

    registry.register(Algorithm(
        name="census", description="count nodes", run=constant_run
    ))
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.register(Algorithm(
            name="census", description="", run=constant_run
        ))
    assert "census" in registry and len(registry) == 1
    result = registry.run("census", topology.path_graph(5))
    assert result == {"n": 5, "backend": "reference"}
    # No run_batch hook -> the registry loops run() per seed.
    batch = registry.run_batch(
        "census", topology.path_graph(5), seeds=[0, 1, 2],
        config=ExecutionConfig(backend="vectorized"),
    )
    assert len(batch) == 3 and batch[0]["backend"] == "vectorized"


def test_registry_plugin_seam_end_to_end():
    # The ~50-line-plugin promise: a custom algorithm registered in a
    # private registry is immediately dispatchable with config handling,
    # spontaneous defaults and capability checks -- no core edits.
    registry = AlgorithmRegistry()

    def double_broadcast(graph, *, config, seed, spontaneous):
        first = broadcast(graph, graph.nodes()[0], seed=seed,
                          spontaneous=spontaneous, config=config)
        second = broadcast(graph, graph.nodes()[-1], seed=seed,
                           spontaneous=spontaneous, config=config)
        return {"rounds": first.rounds + second.rounds,
                "success": first.success and second.success}

    registry.register(Algorithm(
        name="double-broadcast",
        description="broadcast from both ends",
        run=double_broadcast,
        spontaneous_default=True,
    ))
    outcome = registry.run(
        "double-broadcast", topology.path_graph(12), seed=3,
        config=ExecutionConfig(backend="vectorized"),
    )
    assert outcome["success"] and outcome["rounds"] > 0


# ----------------------------------------------------------------------
# deprecation shims (the old kwarg web)
# ----------------------------------------------------------------------
def _collect_deprecations(call):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = call()
    return result, [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]


def test_legacy_broadcast_kwargs_warn_once_and_match_config():
    graph = topology.path_graph(20)
    explicit = broadcast(
        graph, source=0, seed=9,
        config=ExecutionConfig(backend="vectorized", engine="sparse"),
    )
    legacy, deprecations = _collect_deprecations(
        lambda: broadcast(graph, source=0, seed=9,
                          backend="vectorized", engine="sparse")
    )
    # Exactly ONE warning per call, even with two legacy kwargs...
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "backend=" in message and "engine=" in message
    assert "ExecutionConfig" in message
    # ...and seed-identical results through the shim.
    assert legacy.rounds == explicit.rounds
    assert dict(legacy.reception_rounds) == dict(explicit.reception_rounds)
    assert legacy.metrics.as_dict() == explicit.metrics.as_dict()


def test_coerce_builds_the_equivalent_config():
    coerced, deprecations = _collect_deprecations(
        lambda: coerce_execution_config(
            None, where="test", backend="vectorized", engine="sparse"
        )
    )
    assert len(deprecations) == 1
    assert coerced == ExecutionConfig(backend="vectorized", engine="sparse")
    # No legacy kwargs -> no warning, config (or default) passes through.
    untouched, deprecations = _collect_deprecations(
        lambda: coerce_execution_config(None, where="test")
    )
    assert untouched == ExecutionConfig() and not deprecations
    given = ExecutionConfig(strategy="clustered")
    passed, deprecations = _collect_deprecations(
        lambda: coerce_execution_config(given, where="test")
    )
    assert passed is given and not deprecations


def test_mixing_config_and_legacy_kwargs_is_an_error():
    graph = topology.path_graph(6)
    with pytest.raises(ConfigurationError, match="not both"):
        broadcast(graph, source=0,
                  config=ExecutionConfig(), backend="vectorized")
    with pytest.raises(ConfigurationError, match="not both"):
        Compete(graph, config=ExecutionConfig(), strategy="clustered")


def test_legacy_kwargs_warn_on_every_entry_point():
    graph = topology.star_graph(8)
    for call in (
        lambda: Compete(graph, backend="vectorized"),
        lambda: compete(graph, {0: 1}, seed=0, strategy="clustered"),
        lambda: elect_leader(graph, seed=1, engine="dense"),
        lambda: broadcast(graph, source=0, seed=0,
                          collision_model=CollisionModel.WITH_DETECTION),
        lambda: broadcast(graph, source=0, seed=0, margin=4.0),
        lambda: Compete(graph).run({0: 1}, seed=0, backend="vectorized"),
    ):
        _, deprecations = _collect_deprecations(call)
        assert len(deprecations) == 1, call


def test_legacy_elect_leader_is_seed_identical():
    graph = topology.complete_graph(12)
    explicit = elect_leader(
        graph, seed=5, config=ExecutionConfig(backend="vectorized")
    )
    legacy, deprecations = _collect_deprecations(
        lambda: elect_leader(graph, seed=5, backend="vectorized")
    )
    assert len(deprecations) == 1
    assert (legacy.leader, legacy.attempts, legacy.rounds) == (
        explicit.leader, explicit.attempts, explicit.rounds
    )


def test_run_benchmark_engine_shim_warns_and_matches():
    from repro.experiments import run_benchmark
    from repro.experiments.scenarios import Scenario

    scenario = Scenario(
        name="shim-check", description="", family="star",
        topology_args={"num_leaves": 7}, algorithm="broadcast",
        trials=2, seed=3,
    )
    explicit = run_benchmark(
        scenario, include_reference=False,
        config=scenario.execution_config(engine="sparse"),
    )
    legacy, deprecations = _collect_deprecations(
        lambda: run_benchmark(scenario, include_reference=False,
                              engine="sparse")
    )
    assert len(deprecations) == 1
    assert legacy["engine"] == explicit["engine"] == {
        "requested": "sparse", "selected": "sparse"
    }
    assert legacy["results"] == explicit["results"]
    with pytest.raises(ConfigurationError, match="not both"):
        run_benchmark(scenario, include_reference=False,
                      config=scenario.execution_config(), engine="dense")


def test_run_benchmark_honours_config_parameters():
    from repro.experiments import run_benchmark
    from repro.experiments.scenarios import Scenario

    scenario = Scenario(
        name="budget-check", description="", family="star",
        topology_args={"num_leaves": 7}, algorithm="broadcast",
        trials=2, seed=3,
    )
    custom = CompeteParameters(
        num_nodes=8, diameter=2, decay_steps=3, num_decay_rounds=11
    )
    payload = run_benchmark(
        scenario, include_reference=False,
        config=scenario.execution_config().replace(parameters=custom),
    )
    assert payload["schedule"] == {
        "decay_steps": 3, "num_decay_rounds": 11, "total_rounds": 33,
    }
    # A budget for the wrong graph size fails loudly, not silently.
    wrong = CompeteParameters(
        num_nodes=9, diameter=2, decay_steps=3, num_decay_rounds=11
    )
    with pytest.raises(ConfigurationError, match="n=9"):
        run_benchmark(
            scenario, include_reference=False,
            config=scenario.execution_config().replace(parameters=wrong),
        )


def test_scenarios_algorithms_constant_is_a_live_view():
    import repro.experiments as experiments
    import repro.experiments.scenarios as scenarios

    assert set(scenarios.ALGORITHMS) == set(DEFAULT_ALGORITHMS.names())
    assert experiments.ALGORITHMS == scenarios.ALGORITHMS
    registry_backup = dict(DEFAULT_ALGORITHMS._algorithms)
    try:
        DEFAULT_ALGORITHMS.register(Algorithm(
            name="late-plugin", description="",
            run=lambda graph, **kwargs: None,
        ))
        # A post-import registration is visible without re-importing.
        assert "late-plugin" in scenarios.ALGORITHMS
        assert "late-plugin" in experiments.ALGORITHMS
    finally:
        DEFAULT_ALGORITHMS._algorithms.clear()
        DEFAULT_ALGORITHMS._algorithms.update(registry_backup)
    assert "late-plugin" not in scenarios.ALGORITHMS
    with pytest.raises(AttributeError):
        scenarios.NO_SUCH_NAME
    with pytest.raises(AttributeError):
        experiments.NO_SUCH_NAME
