"""The CSR substrate: Graph.adjacency_csr, CSRAdjacency, engine selection.

Property-style: randomized graphs are converted both ways and the CSR
form must round-trip against the dense adjacency matrix exactly --
including the degenerate shapes (single node, isolated nodes, empty edge
set) the reduceat-based segment-sum kernel is most likely to mishandle.
"""

import numpy as np
import pytest

from repro import topology
from repro.errors import ConfigurationError, GraphError
from repro.network.graph import Graph
from repro.simulation.sparse import (
    DENSE_NODE_CUTOFF,
    SPARSE_DENSITY_CUTOFF,
    CSRAdjacency,
    edge_density,
    select_engine,
    sparse_crossover_edges,
)


# ----------------------------------------------------------------------
# Graph.adjacency_csr
# ----------------------------------------------------------------------
def csr_to_dense(indptr, indices, n):
    matrix = np.zeros((n, n), dtype=bool)
    for row in range(n):
        matrix[row, indices[indptr[row]:indptr[row + 1]]] = True
    return matrix


@pytest.mark.parametrize("seed", range(8))
def test_adjacency_csr_round_trips_against_dense(seed):
    rng = np.random.default_rng(seed)
    graph = topology.connected_gnp_graph(
        int(rng.integers(2, 40)), float(rng.uniform(0.05, 0.6)), seed=seed
    )
    dense, dense_nodes = graph.adjacency_matrix()
    indptr, indices, nodes = graph.adjacency_csr()
    assert nodes == dense_nodes
    assert indptr.dtype == np.int64 and indices.dtype == np.int64
    assert indptr[0] == 0 and indptr[-1] == 2 * graph.num_edges
    # Row contents are sorted (deterministic layout regardless of the
    # adjacency sets' iteration order).
    for row in range(len(nodes)):
        segment = indices[indptr[row]:indptr[row + 1]]
        assert (np.diff(segment) > 0).all()
    assert np.array_equal(csr_to_dense(indptr, indices, len(nodes)), dense)


def test_adjacency_csr_degenerate_graphs():
    single = Graph(nodes=["only"])
    indptr, indices, nodes = single.adjacency_csr()
    assert nodes == ["only"]
    assert list(indptr) == [0, 0] and indices.size == 0

    # Isolated nodes produce empty rows amid non-empty ones.
    graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 2)])
    indptr, indices, nodes = graph.adjacency_csr()
    assert list(indptr) == [0, 1, 1, 2, 2]
    assert list(indices) == [2, 0]

    empty_edges = Graph(nodes=range(5))
    indptr, indices, _ = empty_edges.adjacency_csr()
    assert list(indptr) == [0] * 6 and indices.size == 0


def test_adjacency_csr_respects_node_order_permutations():
    graph = topology.path_graph(6)
    rng = np.random.default_rng(3)
    for _ in range(5):
        order = list(rng.permutation(6))
        dense, _ = graph.adjacency_matrix(order=order)
        indptr, indices, nodes = graph.adjacency_csr(order=order)
        assert nodes == order
        assert np.array_equal(csr_to_dense(indptr, indices, 6), dense)
    with pytest.raises(GraphError, match="permutation"):
        graph.adjacency_csr(order=[0, 1])
    with pytest.raises(GraphError, match="permutation"):
        graph.adjacency_csr(order=[0, 0, 1, 2, 3, 4])


def test_adjacency_csr_cache_invalidated_by_mutation():
    # The default-order CSR form is memoized; every mutator must drop
    # the cache so later callers never compute over a stale topology.
    graph = topology.path_graph(5)
    first = graph.adjacency_csr()
    # Memoized while unchanged: the same arrays come back, not copies.
    assert graph.adjacency_csr()[0] is first[0]
    assert graph.adjacency_csr()[1] is first[1]
    graph.add_edge(0, 4)
    second = graph.adjacency_csr()
    assert second[1] is not first[1]
    dense, _ = graph.adjacency_matrix()
    assert np.array_equal(csr_to_dense(second[0], second[1], 5), dense)
    # Undoing the mutation rebuilds an equal -- but fresh -- layout.
    graph.remove_edge(0, 4)
    third = graph.adjacency_csr()
    assert third[1] is not second[1]
    assert np.array_equal(
        csr_to_dense(third[0], third[1], 5),
        csr_to_dense(first[0], first[1], 5),
    )
    graph.remove_node(4)
    indptr, indices, nodes = graph.adjacency_csr()
    assert 4 not in nodes and len(nodes) == 4
    dense, _ = graph.adjacency_matrix()
    assert np.array_equal(csr_to_dense(indptr, indices, 4), dense)
    graph.add_node("isolated")
    indptr, indices, nodes = graph.adjacency_csr()
    assert "isolated" in nodes
    assert indptr[-1] == 2 * graph.num_edges


def test_engine_over_mutated_graph_sees_fresh_csr():
    # Engines snapshot the CSR arrays at construction; a graph mutated
    # *between* runs must behave exactly like a from-scratch graph of
    # the final shape -- any divergence means a stale memoized CSR
    # leaked into the new engine.
    from repro.api import ExecutionConfig
    from repro.core.broadcast import broadcast

    mutated = topology.path_graph(9)
    config = ExecutionConfig(backend="vectorized", engine="sparse")
    before = broadcast(mutated, source=0, seed=3, config=config)
    mutated.add_edge(0, 8)
    after = broadcast(mutated, source=0, seed=3, config=config)
    fresh = Graph(nodes=mutated.nodes(), edges=mutated.edges())
    control = broadcast(fresh, source=0, seed=3, config=config)
    assert after.rounds == control.rounds
    assert dict(after.reception_rounds) == dict(control.reception_rounds)
    assert after.metrics.as_dict() == control.metrics.as_dict()
    # The chord genuinely changed the run (deterministic under replay).
    assert dict(after.reception_rounds) != dict(before.reception_rounds)


# ----------------------------------------------------------------------
# CSRAdjacency
# ----------------------------------------------------------------------
def test_csr_adjacency_from_graph_round_trips():
    graph = topology.grid_graph(4, 3)
    csr, nodes = CSRAdjacency.from_graph(graph)
    dense, dense_nodes = graph.adjacency_matrix()
    assert nodes == dense_nodes
    assert csr.num_nodes == graph.num_nodes
    assert csr.num_entries == 2 * graph.num_edges
    assert np.array_equal(csr.to_dense(), dense)


def test_csr_adjacency_validation():
    with pytest.raises(ConfigurationError, match="starting at 0"):
        CSRAdjacency(np.array([1, 2]), np.array([0]))
    with pytest.raises(ConfigurationError, match="non-decreasing"):
        CSRAdjacency(np.array([0, 2, 1]), np.array([0, 1]))
    with pytest.raises(ConfigurationError, match="entries"):
        CSRAdjacency(np.array([0, 2]), np.array([0]))
    with pytest.raises(ConfigurationError, match="lie in"):
        CSRAdjacency(np.array([0, 1]), np.array([5]))


@pytest.mark.parametrize("seed", range(6))
def test_counts_and_rank_sums_match_dense_matmul(seed):
    # The kernel behind the sparse engine, checked against the dense
    # formulation on random transmit patterns and ranks -- including a
    # graph with isolated nodes (empty CSR rows).
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 30))
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.2:
                graph.add_edge(u, v)
    csr, nodes = CSRAdjacency.from_graph(graph)
    dense, _ = graph.adjacency_matrix()
    dense_f = dense.astype(np.float64)

    trials = 4
    transmit = rng.random((trials, n)) < 0.4
    ranks = rng.integers(0, n, size=(trials, n)).astype(np.int64)
    counts, sums = csr.counts_and_rank_sums(transmit, ranks)
    expected_counts = (transmit.astype(np.float64) @ dense_f).astype(np.int64)
    expected_sums = (
        (transmit * ranks).astype(np.float64) @ dense_f
    ).astype(np.int64)
    assert counts.dtype == np.int64 and sums.dtype == np.int64
    assert np.array_equal(counts, expected_counts)
    assert np.array_equal(sums, expected_sums)


def test_counts_on_edgeless_graph_are_zero():
    csr, _ = CSRAdjacency.from_graph(Graph(nodes=range(4)))
    transmit = np.ones((2, 4), dtype=bool)
    ranks = np.arange(8, dtype=np.int64).reshape(2, 4)
    counts, sums = csr.counts_and_rank_sums(transmit, ranks)
    assert not counts.any() and not sums.any()


@pytest.mark.parametrize("seed", range(6))
def test_transmitter_kernel_is_identical_to_all_edges_kernel(seed):
    # The transmitter-driven kernel (the decoupled-rng hot path) must be
    # bit-identical to the all-edges gather on every input -- it is an
    # optimization, never an approximation.  Random graphs with isolated
    # nodes, random transmit patterns from empty to full.
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 40))
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.15:
                graph.add_edge(u, v)
    csr, _ = CSRAdjacency.from_graph(graph)
    trials = 3
    ranks = rng.integers(0, 10 * n, size=(trials, n)).astype(np.int64)
    for density in (0.0, 0.05, 0.5, 1.0):
        transmit = rng.random((trials, n)) < density
        expected = csr.counts_and_rank_sums(transmit, ranks)
        actual = csr.transmitter_counts_and_rank_sums(transmit, ranks)
        assert actual[0].dtype == np.int64 and actual[1].dtype == np.int64
        assert np.array_equal(actual[0], expected[0])
        assert np.array_equal(actual[1], expected[1])


def test_transmitter_kernel_empty_and_edgeless_cases():
    # No transmitters at all: the early-out path.
    csr, _ = CSRAdjacency.from_graph(topology.path_graph(5))
    silent = np.zeros((2, 5), dtype=bool)
    ranks = np.arange(10, dtype=np.int64).reshape(2, 5)
    counts, sums = csr.transmitter_counts_and_rank_sums(silent, ranks)
    assert not counts.any() and not sums.any()
    assert counts.shape == (2, 5)
    # Transmitters whose CSR rows are all empty: the total==0 path.
    edgeless, _ = CSRAdjacency.from_graph(Graph(nodes=range(5)))
    loud = np.ones((2, 5), dtype=bool)
    counts, sums = edgeless.transmitter_counts_and_rank_sums(loud, ranks)
    assert not counts.any() and not sums.any()


# ----------------------------------------------------------------------
# engine selection heuristic
# ----------------------------------------------------------------------
def test_edge_density():
    assert edge_density(4, 3) == 0.5
    assert edge_density(1, 0) == 1.0
    assert edge_density(0, 0) == 1.0
    with pytest.raises(ConfigurationError):
        edge_density(-1, 0)


def test_select_engine_heuristic():
    # Small graphs are always dense, whatever their shape.
    assert select_engine(8, 7) == "dense"
    assert select_engine(DENSE_NODE_CUTOFF, DENSE_NODE_CUTOFF - 1) == "dense"
    # Large sparse graphs go sparse; large dense graphs stay dense.
    # sparse_crossover_edges is the canonical boundary: one edge below
    # it is the last sparse count, at it the heuristic flips to dense.
    n = DENSE_NODE_CUTOFF + 1
    assert select_engine(n, n) == "sparse"  # density ~ 2/n
    crossover = sparse_crossover_edges(n)
    assert select_engine(n, crossover - 1) == "sparse"
    assert select_engine(n, crossover) == "dense"
    assert select_engine(16384, 16383) == "sparse"  # the ROADMAP regime
    with pytest.raises(ConfigurationError):
        sparse_crossover_edges(1)
