"""Edge cases of the Decay step rule (`repro.schedules.decay`).

The Compete suites exercise Decay only through full protocol runs; these
tests pin the primitive directly: the degenerate ``n = 1`` network, step
indices past the nominal ``⌈log2 n⌉`` round length (legal -- the
probability just keeps halving), and the behaviour of non-participant
nodes in the one-round simulator.
"""

import math

import numpy as np
import pytest

from repro import topology
from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.network.radio import RadioNetwork
from repro.schedules.decay import (
    DecayTransmitter,
    decay_round_length,
    decay_success_probability_lower_bound,
    decay_transmit_step,
    simulate_decay_round,
)


class StubRng:
    """Deterministic stand-in for ``numpy.random.Generator.random``."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0)


# ----------------------------------------------------------------------
# round length
# ----------------------------------------------------------------------
def test_round_length_single_node_is_one_step():
    # ceil(log2 1) = 0, but a round must have at least one step: the
    # n = 1 network still runs a well-defined (trivial) schedule.
    assert decay_round_length(1) == 1
    assert decay_round_length(2) == 1
    assert decay_round_length(3) == 2
    assert decay_round_length(1024) == 10


def test_round_length_rejects_non_positive():
    for bad in (0, -1):
        with pytest.raises(ConfigurationError):
            decay_round_length(bad)


# ----------------------------------------------------------------------
# the step rule
# ----------------------------------------------------------------------
def test_transmit_step_threshold_semantics():
    # Transmit iff the uniform draw is strictly below 2^-step.
    for step in (1, 2, 5):
        threshold = 2.0 ** (-step)
        assert decay_transmit_step(step, StubRng([threshold / 2]))
        assert not decay_transmit_step(step, StubRng([threshold]))


def test_transmit_step_past_round_length_keeps_halving():
    # Step indices past ceil(log2 n) are legal (a protocol may run a
    # longer cycle than the nominal round); the probability simply keeps
    # halving instead of clamping or wrapping.
    n = 16
    past = decay_round_length(n) + 3  # step 7 -> probability 1/128
    threshold = 2.0 ** (-past)
    assert decay_transmit_step(past, StubRng([threshold * 0.999]))
    assert not decay_transmit_step(past, StubRng([threshold * 1.001]))
    # Statistically: the empirical rate at a deep step stays near 2^-step.
    rng = np.random.default_rng(0)
    trials = 20_000
    hits = sum(decay_transmit_step(past, rng) for _ in range(trials))
    assert hits / trials == pytest.approx(threshold, rel=0.35)


def test_transmit_step_rejects_non_positive_index():
    rng = np.random.default_rng(0)
    for bad in (0, -2):
        with pytest.raises(ConfigurationError):
            decay_transmit_step(bad, rng)


def test_transmitter_cycles_and_resets():
    # round_length 2: steps go 1, 2, 1, 2, ... with thresholds 1/2, 1/4.
    draws = [0.4, 0.4, 0.1, 0.6, 0.3]
    transmitter = DecayTransmitter(round_length=2, rng=StubRng(draws))
    assert transmitter.decide() is True      # step 1: 0.4 < 0.5
    assert transmitter.decide() is False     # step 2: 0.4 >= 0.25
    assert transmitter.decide() is True      # step 1 again: 0.1 < 0.5
    assert transmitter.steps_elapsed == 3
    transmitter.reset()
    assert transmitter.steps_elapsed == 0
    assert transmitter.decide() is False     # step 1: 0.6 >= 0.5
    assert transmitter.decide() is False     # step 2: 0.3 >= 0.25


def test_transmitter_single_step_round():
    # round_length 1 (the n = 1 regime): every step is step 1 (p = 1/2).
    transmitter = DecayTransmitter(
        round_length=1, rng=StubRng([0.49, 0.51, 0.0])
    )
    assert [transmitter.decide() for _ in range(3)] == [True, False, True]


# ----------------------------------------------------------------------
# the one-round simulator and non-participants
# ----------------------------------------------------------------------
def test_simulate_decay_round_non_participants_stay_silent():
    star = topology.star_graph(6)  # hub 0, leaves 1..6
    network = RadioNetwork(star)
    message = Message(value=7, source=1)
    rng = np.random.default_rng(1)
    heard = simulate_decay_round(network, {1: message}, rng)
    # Only the participant may have transmitted: the metrics cannot
    # exceed one transmission per step, and nothing a non-participant
    # "said" can have been heard anywhere.
    steps = decay_round_length(star.num_nodes)
    assert network.metrics.rounds == steps
    assert network.metrics.transmissions <= steps
    assert set(heard) <= {0}  # only the hub neighbours the participant
    if 0 in heard:
        assert heard[0] == message
    # Collisions are impossible with a single participant.
    assert network.metrics.collisions == 0


def test_simulate_decay_round_listener_filter():
    path = topology.path_graph(4)
    network = RadioNetwork(path)
    message = Message(value=1, source=1)
    rng = np.random.default_rng(3)
    heard = simulate_decay_round(
        network, {1: message}, rng, listeners=[3]
    )
    # Node 3 is two hops from the only participant: it can never hear it.
    assert heard == {}


def test_simulate_decay_round_single_node_network():
    # n = 1: one step, no listeners, nothing heard -- but the round is
    # still charged to the network's clock.
    single = Graph(nodes=[0])
    network = RadioNetwork(single)
    rng = np.random.default_rng(0)
    heard = simulate_decay_round(network, {0: Message(value=1, source=0)}, rng)
    assert heard == {}
    assert network.metrics.rounds == decay_round_length(1) == 1


def test_lower_bound_monotone_and_constant():
    # The analytic Lemma 3.1 bound stays a genuine constant for every
    # contender count (the property the Monte-Carlo suite leans on).
    values = [
        decay_success_probability_lower_bound(k) for k in range(1, 65)
    ]
    assert values[0] == 0.5
    assert all(v >= 1.0 / (2.0 * math.e) - 1e-12 for v in values)
