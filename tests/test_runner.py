"""ProtocolRunner: stop conditions, budgets, accounting."""

import pytest

from repro import topology
from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.network.messages import Message
from repro.network.protocol import Action, NodeProtocol
from repro.network.radio import RadioNetwork
from repro.simulation import ProtocolRunner, StopReason, build_seeded_protocols


class OneShotBeacon(NodeProtocol):
    """Transmits once in ``fire_round`` (if it is the beacon), then idles;
    reports done once it has heard (or sent) a message."""

    def __init__(self, node_id, num_nodes, diameter, is_beacon, fire_round=0):
        super().__init__(node_id, num_nodes, diameter)
        self.is_beacon = is_beacon
        self.fire_round = fire_round
        self.heard = None

    def act(self, round_number):
        if self.is_beacon and round_number == self.fire_round:
            return Action.transmit(Message(value=1, source=self.node_id))
        return Action.listen()

    def receive(self, round_number, heard):
        if isinstance(heard, Message):
            self.heard = heard

    def is_done(self):
        return self.is_beacon or self.heard is not None

    def output(self):
        return self.heard


def _beacon_protocols(graph, beacon):
    return {
        node: OneShotBeacon(node, graph.num_nodes, graph.diameter(), node == beacon)
        for node in graph.nodes()
    }


def test_run_stops_when_all_done():
    graph = topology.star_graph(4)
    network = RadioNetwork(graph)
    runner = ProtocolRunner(
        network, _beacon_protocols(graph, beacon=0), max_rounds=10
    )
    result = runner.run()
    assert result.stop_reason is StopReason.ALL_DONE
    assert result.completed
    assert result.rounds == 1
    assert result.first_round == 0
    # Every leaf heard the centre's single transmission.
    assert all(result.outputs[leaf] == Message(value=1, source=0) for leaf in range(1, 5))
    assert result.metrics.rounds == 1
    assert result.metrics.transmissions == 1
    assert result.metrics.receptions == 4


def test_budget_exhaustion_is_reported_not_raised_by_default():
    graph = topology.path_graph(3)
    network = RadioNetwork(graph)
    # Beacon fires at round 5 but the budget ends earlier.
    protocols = {
        node: OneShotBeacon(node, 3, 2, node == 0, fire_round=5)
        for node in graph.nodes()
    }
    runner = ProtocolRunner(network, protocols, max_rounds=3)
    result = runner.run()
    assert result.stop_reason is StopReason.BUDGET_EXHAUSTED
    assert not result.completed
    assert result.rounds == 3


def test_strict_budget_exhaustion_raises():
    graph = topology.path_graph(3)
    network = RadioNetwork(graph)
    protocols = {
        node: OneShotBeacon(node, 3, 2, node == 0, fire_round=5)
        for node in graph.nodes()
    }
    runner = ProtocolRunner(network, protocols, max_rounds=2, strict=True)
    with pytest.raises(SimulationError, match="round budget of 2"):
        runner.run()


def test_stop_when_condition():
    graph = topology.star_graph(2)
    network = RadioNetwork(graph)
    protocols = {
        node: OneShotBeacon(node, 3, 2, False) for node in graph.nodes()
    }
    runner = ProtocolRunner(
        network,
        protocols,
        max_rounds=10,
        stop_when=lambda outcome, protos: outcome.round_number >= 4,
    )
    result = runner.run()
    assert result.stop_reason is StopReason.CONDITION
    assert result.rounds == 5


def test_zero_round_run_when_everyone_already_done():
    graph = topology.star_graph(2)
    network = RadioNetwork(graph)
    protocols = _beacon_protocols(graph, beacon=0)
    for protocol in protocols.values():
        protocol.heard = Message(value=0, source=None)
    runner = ProtocolRunner(network, protocols, max_rounds=10)
    result = runner.run()
    assert result.stop_reason is StopReason.ALL_DONE
    assert result.rounds == 0
    assert result.first_round is None


def test_record_outcomes():
    graph = topology.star_graph(2)
    network = RadioNetwork(graph)
    runner = ProtocolRunner(
        network,
        _beacon_protocols(graph, beacon=0),
        max_rounds=10,
        record_outcomes=True,
    )
    result = runner.run()
    assert result.outcomes is not None
    assert len(result.outcomes) == result.rounds
    assert result.outcomes[0].transmitters == {0: Message(value=1, source=0)}


def test_runner_validates_inputs():
    graph = topology.path_graph(2)
    network = RadioNetwork(graph)
    with pytest.raises(ConfigurationError):
        ProtocolRunner(network, {}, max_rounds=-1)
    with pytest.raises(ProtocolError):
        ProtocolRunner(
            network, {99: OneShotBeacon(99, 2, 1, False)}, max_rounds=1
        )


def test_build_seeded_protocols_is_deterministic():
    graph = topology.path_graph(5)
    network = RadioNetwork(graph)
    seen_rngs = {}

    def factory(node, num_nodes, diameter, rng):
        seen_rngs[node] = rng.random()
        assert num_nodes == 5
        assert diameter == 4
        return OneShotBeacon(node, num_nodes, diameter, node == 0)

    build_seeded_protocols(network, factory, seed=42)
    first = dict(seen_rngs)
    seen_rngs.clear()
    build_seeded_protocols(network, factory, seed=42)
    assert seen_rngs == first
    # Per-node streams are independent, not identical.
    assert len(set(first.values())) == len(first)
