"""Backend equivalence: the vectorized engine vs. the reference runner.

These are the tests behind the package's equivalence guarantee
(``repro.simulation`` docstring): for the same graph, candidates and
seed, the two backends must agree *round for round* -- same winner, same
success flag, same executed-round count, same per-node reception rounds
and final messages, and identical metric counters.  The suite sweeps
topology families x seeds x the spontaneous flag, property-style.
"""

import numpy as np
import pytest

from repro import topology
from repro.core.compete import Compete, compete
from repro.core.broadcast import broadcast
from repro.core.leader_election import elect_leader
from repro.core.parameters import CompeteParameters
from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.simulation.vectorized import (
    NO_MESSAGE,
    VectorizedCompeteEngine,
    rank_messages,
)


def assert_same_compete_result(reference, vectorized, context=""):
    """Field-by-field equality of two CompeteResults (metrics included)."""
    assert reference.winner == vectorized.winner, context
    assert reference.success == vectorized.success, context
    assert reference.rounds == vectorized.rounds, context
    assert reference.num_candidates == vectorized.num_candidates, context
    assert dict(reference.reception_rounds) == dict(
        vectorized.reception_rounds
    ), context
    assert dict(reference.final_messages) == dict(
        vectorized.final_messages
    ), context
    assert (
        reference.metrics.as_dict() == vectorized.metrics.as_dict()
    ), context


TOPOLOGIES = [
    ("path", lambda: topology.path_graph(17)),
    ("star", lambda: topology.star_graph(12)),
    ("grid", lambda: topology.grid_graph(5, 5)),
    ("random-gnp", lambda: topology.connected_gnp_graph(20, 0.15, seed=11)),
    ("random-tree", lambda: topology.random_tree_graph(18, seed=4)),
]


@pytest.mark.parametrize("name,factory", TOPOLOGIES)
@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("spontaneous", [False, True])
def test_compete_equivalence(name, factory, seed, spontaneous):
    graph = factory()
    nodes = graph.nodes()
    candidates = {nodes[0]: 10, nodes[-1]: 20, nodes[len(nodes) // 2]: 15}
    reference = compete(
        graph, candidates, seed=seed, spontaneous=spontaneous
    )
    vectorized = compete(
        graph, candidates, seed=seed, spontaneous=spontaneous,
        backend="vectorized",
    )
    assert_same_compete_result(
        reference, vectorized, f"{name} seed={seed} spontaneous={spontaneous}"
    )


@pytest.mark.parametrize("name,factory", TOPOLOGIES)
@pytest.mark.parametrize("seed", [0, 5])
def test_broadcast_equivalence(name, factory, seed):
    graph = factory()
    reference = broadcast(graph, source=graph.nodes()[0], seed=seed)
    vectorized = broadcast(
        graph, source=graph.nodes()[0], seed=seed, backend="vectorized"
    )
    assert reference.success == vectorized.success
    assert reference.rounds == vectorized.rounds
    assert reference.num_informed == vectorized.num_informed
    assert dict(reference.reception_rounds) == dict(
        vectorized.reception_rounds
    )
    assert reference.metrics.as_dict() == vectorized.metrics.as_dict()


@pytest.mark.parametrize("seed", [0, 3, 9])
def test_leader_election_equivalence(seed):
    graph = topology.grid_graph(4, 4)
    reference = elect_leader(graph, seed=seed)
    vectorized = elect_leader(graph, seed=seed, backend="vectorized")
    assert reference.success == vectorized.success
    assert reference.leader == vectorized.leader
    assert reference.attempts == vectorized.attempts
    assert reference.rounds == vectorized.rounds
    assert reference.metrics.as_dict() == vectorized.metrics.as_dict()


def test_run_batch_matches_individual_runs():
    graph = topology.grid_graph(4, 5)
    primitive = Compete(graph)
    candidates = {0: 5, 19: 9}
    seeds = [0, 1, 2, 3, 4]
    batch = primitive.run_batch(candidates, seeds=seeds, spontaneous=True)
    assert len(batch) == len(seeds)
    for seed, batched in zip(seeds, batch):
        single_vec = primitive.run(
            candidates, seed=seed, spontaneous=True, backend="vectorized"
        )
        single_ref = primitive.run(candidates, seed=seed, spontaneous=True)
        assert_same_compete_result(single_ref, batched, f"seed={seed}")
        assert_same_compete_result(single_vec, batched, f"seed={seed}")


def test_collision_detection_model_equivalence():
    from repro.network.radio import CollisionModel

    graph = topology.star_graph(10)
    candidates = {1: 3, 2: 8}
    for seed in (0, 1):
        reference = compete(
            graph, candidates, seed=seed, spontaneous=True,
            collision_model=CollisionModel.WITH_DETECTION,
        )
        vectorized = compete(
            graph, candidates, seed=seed, spontaneous=True,
            collision_model=CollisionModel.WITH_DETECTION,
            backend="vectorized",
        )
        assert_same_compete_result(reference, vectorized)


def test_budget_exhaustion_parity():
    # A schedule far too short to saturate must fail identically on both
    # backends (same partial progress, same charged rounds).
    graph = topology.path_graph(12)
    parameters = CompeteParameters(
        num_nodes=12, diameter=11, decay_steps=4, num_decay_rounds=2
    )
    primitive_ref = Compete(graph, parameters=parameters)
    primitive_vec = Compete(graph, parameters=parameters, backend="vectorized")
    for seed in range(4):
        reference = primitive_ref.run({0: 1}, seed=seed)
        vectorized = primitive_vec.run({0: 1}, seed=seed)
        assert reference.rounds == parameters.total_rounds
        assert_same_compete_result(reference, vectorized, f"seed={seed}")


def test_no_candidates_parity():
    graph = topology.star_graph(5)
    for spontaneous in (False, True):
        reference = compete(graph, {}, seed=2, spontaneous=spontaneous)
        vectorized = compete(
            graph, {}, seed=2, spontaneous=spontaneous, backend="vectorized"
        )
        assert not reference.success
        assert reference.winner is None
        assert_same_compete_result(reference, vectorized)


def test_single_node_and_presaturated_parity():
    single = Graph(nodes=[0])
    reference = compete(single, {0: 1}, seed=0)
    vectorized = compete(single, {0: 1}, seed=0, backend="vectorized")
    assert reference.rounds == vectorized.rounds == 0
    assert_same_compete_result(reference, vectorized)

    # Every node already holds the winning message: zero rounds, no metrics.
    clique = topology.complete_graph(4)
    winner = Message(value=9, source=0)
    candidates = {node: winner for node in clique.nodes()}
    reference = compete(clique, candidates, seed=1)
    vectorized = compete(clique, candidates, seed=1, backend="vectorized")
    assert reference.rounds == vectorized.rounds == 0
    assert_same_compete_result(reference, vectorized)


def test_engine_draw_block_size_is_invisible():
    # The pre-draw block size is an implementation detail; shrinking it to
    # force mid-run refills must not change any outcome array.
    graph = topology.grid_graph(4, 4)
    parameters = CompeteParameters.from_graph(graph)
    ranks = np.zeros((3, graph.num_nodes), dtype=np.int64)
    ranks[:, 0] = 1
    seeds = [0, 1, 2]
    outcomes = []
    for block in (2, 64, 4096):
        engine = VectorizedCompeteEngine(
            graph,
            decay_steps=parameters.decay_steps,
            max_rounds=parameters.total_rounds,
            draw_block=block,
        )
        outcomes.append(engine.run_batch(ranks.copy(), 1, seeds))
    first = outcomes[0]
    for other in outcomes[1:]:
        assert np.array_equal(first.rounds, other.rounds)
        assert np.array_equal(first.final_ranks, other.final_ranks)
        assert np.array_equal(first.adopted_rounds, other.adopted_rounds)
        assert np.array_equal(first.transmissions, other.transmissions)


def test_engine_input_validation():
    graph = topology.path_graph(4)
    engine = VectorizedCompeteEngine(graph, decay_steps=2, max_rounds=10)
    with pytest.raises(ConfigurationError):
        engine.run_batch(np.zeros((2, 3), dtype=int), None, [0, 1])
    with pytest.raises(ConfigurationError):
        engine.run_batch(np.zeros((2, 4), dtype=int), None, [0])
    with pytest.raises(ConfigurationError):
        engine.run_batch(np.full((1, 4), -1), None, [0])
    with pytest.raises(ConfigurationError):
        VectorizedCompeteEngine(graph, decay_steps=0, max_rounds=1)
    with pytest.raises(ConfigurationError):
        Compete(graph, backend="warp-drive")
    with pytest.raises(ConfigurationError):
        Compete(graph).run({0: 1}, backend="warp-drive")


def test_engine_cache_tracks_graph_mutation():
    # The cached engine densifies the adjacency matrix; mutating the
    # graph between runs must rebuild it so both backends keep seeing
    # the same (live) topology.
    graph = topology.path_graph(8)
    primitive = Compete(graph, backend="vectorized")
    before = primitive.run({0: 1}, seed=3, spontaneous=True)
    graph.add_edge(0, 7)  # diameter collapses; propagation changes
    after = primitive.run({0: 1}, seed=3, spontaneous=True)
    reference = primitive.run({0: 1}, seed=3, spontaneous=True,
                              backend="reference")
    assert_same_compete_result(reference, after, "post-mutation")
    assert dict(before.reception_rounds) != dict(after.reception_rounds)


def test_rank_messages_matches_beats_order():
    rng = np.random.default_rng(0)
    messages = [
        Message(value=int(rng.integers(-5, 6)), source=int(rng.integers(20)))
        for _ in range(40)
    ]
    ranks = rank_messages(messages)
    assert set(ranks.values()) == set(range(1, len(ranks) + 1))
    items = list(ranks.items())
    for a, rank_a in items:
        for b, rank_b in items:
            assert (rank_a > rank_b) == a.beats(b)
    assert NO_MESSAGE not in ranks.values()


def test_adjacency_matrix():
    graph = topology.path_graph(4)
    matrix, nodes = graph.adjacency_matrix()
    assert nodes == [0, 1, 2, 3]
    expected = np.zeros((4, 4), dtype=bool)
    for u, v in [(0, 1), (1, 2), (2, 3)]:
        expected[u, v] = expected[v, u] = True
    assert np.array_equal(matrix, expected)

    reordered, order = graph.adjacency_matrix(order=[3, 2, 1, 0])
    assert order == [3, 2, 1, 0]
    assert np.array_equal(reordered, expected[::-1, ::-1])

    from repro.errors import GraphError

    with pytest.raises(GraphError):
        graph.adjacency_matrix(order=[0, 1])
