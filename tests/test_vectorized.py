"""Internals of the vectorized engine (both kernels).

The *equivalence* guarantee -- reference runner vs dense vs sparse,
round for round, across the family x strategy x collision x algorithm
table -- is pinned by ``tests/test_engine_equivalence.py``.  This file
covers what is not visible from the outside: batch/single consistency,
draw-stream buffering, input validation, cache invalidation on graph
mutation, and the message-ranking reduction.
"""

import numpy as np
import pytest

from repro import topology
from repro.api import ExecutionConfig
from repro.core.compete import Compete
from repro.core.parameters import CompeteParameters
from repro.errors import ConfigurationError
from repro.network.messages import Message
from repro.simulation.vectorized import (
    NO_MESSAGE,
    VectorizedCompeteEngine,
    rank_messages,
)


def assert_same_compete_result(reference, vectorized, context=""):
    """Field-by-field equality of two CompeteResults (metrics included)."""
    assert reference.winner == vectorized.winner, context
    assert reference.success == vectorized.success, context
    assert reference.rounds == vectorized.rounds, context
    assert reference.num_candidates == vectorized.num_candidates, context
    assert dict(reference.reception_rounds) == dict(
        vectorized.reception_rounds
    ), context
    assert dict(reference.final_messages) == dict(
        vectorized.final_messages
    ), context
    assert (
        reference.metrics.as_dict() == vectorized.metrics.as_dict()
    ), context


@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_run_batch_matches_individual_runs(engine):
    graph = topology.grid_graph(4, 5)
    primitive = Compete(graph, config=ExecutionConfig(engine=engine))
    fast = Compete(
        graph, config=ExecutionConfig(backend="vectorized", engine=engine)
    )
    candidates = {0: 5, 19: 9}
    seeds = [0, 1, 2, 3, 4]
    batch = primitive.run_batch(candidates, seeds=seeds, spontaneous=True)
    assert len(batch) == len(seeds)
    for seed, batched in zip(seeds, batch):
        single_vec = fast.run(candidates, seed=seed, spontaneous=True)
        single_ref = primitive.run(candidates, seed=seed, spontaneous=True)
        assert_same_compete_result(single_ref, batched, f"seed={seed}")
        assert_same_compete_result(single_vec, batched, f"seed={seed}")


@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_engine_draw_block_size_is_invisible(engine):
    # The pre-draw block size is an implementation detail; shrinking it to
    # force mid-run refills must not change any outcome array.
    graph = topology.grid_graph(4, 4)
    parameters = CompeteParameters.from_graph(graph)
    ranks = np.zeros((3, graph.num_nodes), dtype=np.int64)
    ranks[:, 0] = 1
    seeds = [0, 1, 2]
    outcomes = []
    for block in (2, 64, 4096):
        engine_obj = VectorizedCompeteEngine(
            graph,
            decay_steps=parameters.decay_steps,
            max_rounds=parameters.total_rounds,
            draw_block=block,
            engine=engine,
        )
        outcomes.append(engine_obj.run_batch(ranks.copy(), 1, seeds))
    first = outcomes[0]
    for other in outcomes[1:]:
        assert np.array_equal(first.rounds, other.rounds)
        assert np.array_equal(first.final_ranks, other.final_ranks)
        assert np.array_equal(first.adopted_rounds, other.adopted_rounds)
        assert np.array_equal(first.transmissions, other.transmissions)


def test_engine_input_validation():
    graph = topology.path_graph(4)
    engine = VectorizedCompeteEngine(graph, decay_steps=2, max_rounds=10)
    with pytest.raises(ConfigurationError):
        engine.run_batch(np.zeros((2, 3), dtype=int), None, [0, 1])
    with pytest.raises(ConfigurationError):
        engine.run_batch(np.zeros((2, 4), dtype=int), None, [0])
    with pytest.raises(ConfigurationError):
        engine.run_batch(np.full((1, 4), -1), None, [0])
    with pytest.raises(ConfigurationError):
        VectorizedCompeteEngine(graph, decay_steps=0, max_rounds=1)
    with pytest.raises(ConfigurationError, match="engine"):
        VectorizedCompeteEngine(graph, decay_steps=2, max_rounds=1,
                                engine="quantum")
    with pytest.raises(ConfigurationError):
        Compete(graph, config=ExecutionConfig(backend="warp-drive"))
    with pytest.raises(ConfigurationError, match="engine"):
        Compete(graph, config=ExecutionConfig(engine="warp-core"))
    with pytest.raises(ConfigurationError, match="config"):
        # config= and a legacy kwarg cannot be mixed.
        Compete(graph, config=ExecutionConfig(), backend="vectorized")


def test_engine_selection_is_visible():
    graph = topology.path_graph(6)
    assert VectorizedCompeteEngine(
        graph, decay_steps=2, max_rounds=4
    ).engine == "dense"  # auto on a small graph
    assert VectorizedCompeteEngine(
        graph, decay_steps=2, max_rounds=4, engine="sparse"
    ).engine == "sparse"
    primitive = Compete(graph, config=ExecutionConfig(engine="sparse"))
    assert primitive.engine == "sparse"
    assert primitive.selected_engine() == "sparse"
    assert Compete(graph).selected_engine() == "dense"
    assert VectorizedCompeteEngine(
        graph, config=ExecutionConfig(engine="sparse")
    ).engine == "sparse"
    with pytest.raises(ConfigurationError, match="config"):
        VectorizedCompeteEngine(
            graph, config=ExecutionConfig(), max_rounds=4
        )


@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_engine_cache_tracks_graph_mutation(engine):
    # The cached engine snapshots the adjacency structure; mutating the
    # graph between runs must rebuild it so both backends keep seeing
    # the same (live) topology.
    graph = topology.path_graph(8)
    primitive = Compete(
        graph, config=ExecutionConfig(backend="vectorized", engine=engine)
    )
    before = primitive.run({0: 1}, seed=3, spontaneous=True)
    graph.add_edge(0, 7)  # diameter collapses; propagation changes
    after = primitive.run({0: 1}, seed=3, spontaneous=True)
    reference = Compete(
        graph, config=ExecutionConfig(engine=engine)
    ).run({0: 1}, seed=3, spontaneous=True)
    assert_same_compete_result(reference, after, "post-mutation")
    assert dict(before.reception_rounds) != dict(after.reception_rounds)


def test_rank_messages_matches_beats_order():
    rng = np.random.default_rng(0)
    messages = [
        Message(value=int(rng.integers(-5, 6)), source=int(rng.integers(20)))
        for _ in range(40)
    ]
    ranks = rank_messages(messages)
    assert set(ranks.values()) == set(range(1, len(ranks) + 1))
    items = list(ranks.items())
    for a, rank_a in items:
        for b, rank_b in items:
            assert (rank_a > rank_b) == a.beats(b)
    assert NO_MESSAGE not in ranks.values()


def test_adjacency_matrix():
    graph = topology.path_graph(4)
    matrix, nodes = graph.adjacency_matrix()
    assert nodes == [0, 1, 2, 3]
    expected = np.zeros((4, 4), dtype=bool)
    for u, v in [(0, 1), (1, 2), (2, 3)]:
        expected[u, v] = expected[v, u] = True
    assert np.array_equal(matrix, expected)

    reordered, order = graph.adjacency_matrix(order=[3, 2, 1, 0])
    assert order == [3, 2, 1, 0]
    assert np.array_equal(reordered, expected[::-1, ::-1])

    from repro.errors import GraphError

    with pytest.raises(GraphError):
        graph.adjacency_matrix(order=[0, 1])
