"""The golden-artifact test layer: every committed ``BENCH_*.json``.

The committed benchmark baselines are load-bearing twice over -- they
are the perf-regression gate's comparison set *and* the historical
record of every headline number the README/CHANGES cite -- so this
module treats each one as a golden file:

* it must validate against the **current** ``repro-bench/1`` schema
  (pre-PR-4 / pre-PR-6 artifacts included: their migration notes promise
  optional fields, and this is where that promise is enforced against
  real data rather than synthetic fixtures);
* its summary statistics must be re-derivable from the recorded
  per-trial series and internally consistent (timing arithmetic,
  filename, scenario identity) -- every artifact under ``benchmarks/``
  carries the series; only the committed legacy fixture under
  ``tests/data/legacy/`` (kept to pin the schema's pre-PR-7 tolerance)
  may omit it;
* its scenario block must rebuild through the current code paths --
  :meth:`Scenario.from_dict`, :meth:`Scenario.execution_config`, the
  config identity digest -- and agree with the registry's current
  definition, so a registry edit cannot silently orphan a baseline;
* its topology block must reproduce from the persisted generator
  arguments (the scenario block is documented as rebuilding the
  topology *exactly*; large-``n`` rebuilds carry the ``slow`` marker).
"""

import json
import math
import pathlib

import pytest

from repro.experiments import (
    DEFAULT_REGISTRY,
    artifact_identity,
    bench_filename,
    get_scenario,
    load_bench,
    validate_bench,
)
from repro.experiments.scenarios import Scenario
from repro.topology.validation import summarize_topology

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"
#: Pre-PR-7 artifacts (no ``results.per_trial``) kept as fixtures: they
#: pin the schema's documented legacy tolerance without grandfathering
#: incomplete data into the live baseline set.
LEGACY_DIR = REPO_ROOT / "tests" / "data" / "legacy"
ARTIFACT_PATHS = sorted(BENCHMARKS.glob("BENCH_*.json"))
LEGACY_PATHS = sorted(LEGACY_DIR.glob("BENCH_*.json"))
ALL_PATHS = ARTIFACT_PATHS + LEGACY_PATHS

#: Above this node count the topology rebuild moves to the slow tier
#: (exact-diameter verification is O(n*m); CI runs it once per push).
_FAST_REBUILD_NODES = 2000

#: The scenario-block fields that define what an artifact *measures*;
#: they must agree with the current registry definition.  Presentation
#: fields (description, tags) may drift without orphaning a baseline.
_IDENTITY_FIELDS = (
    "family", "topology_args", "algorithm", "collision_model",
    "spontaneous", "strategy", "engine", "rng", "margin", "seed",
    "dynamics",
)


def _param_id(path):
    stem = path.stem.replace("BENCH_", "")
    return f"legacy-{stem}" if path.parent == LEGACY_DIR else stem


def _artifact_params():
    assert ARTIFACT_PATHS, "no committed benchmark artifacts found"
    assert LEGACY_PATHS, "the documented legacy fixture is missing"
    for path in ALL_PATHS:
        yield pytest.param(path, id=_param_id(path))


def _rebuild_params():
    for path in ALL_PATHS:
        payload = json.loads(path.read_text())
        marks = (
            (pytest.mark.slow,)
            if payload["topology"]["num_nodes"] > _FAST_REBUILD_NODES
            else ()
        )
        yield pytest.param(path, id=_param_id(path), marks=marks)


@pytest.fixture(scope="module")
def payloads():
    # One validated load per artifact for the whole module.
    return {path: load_bench(path) for path in ALL_PATHS}


@pytest.mark.parametrize("path", _artifact_params())
def test_validates_against_current_schema(path, payloads):
    # load_bench already ran validate_bench; pin it explicitly so the
    # intent survives refactors of the fixture.
    validate_bench(payloads[path])


@pytest.mark.parametrize("path", _artifact_params())
def test_filename_matches_scenario_name(path, payloads):
    assert path.name == bench_filename(payloads[path]["scenario"]["name"])


@pytest.mark.parametrize("path", _artifact_params())
def test_scenario_block_rebuilds_through_current_code(path, payloads):
    payload = payloads[path]
    scenario = Scenario.from_dict(payload["scenario"])
    assert scenario.name == payload["scenario"]["name"]
    config = scenario.execution_config()
    assert config.backend == "vectorized"
    identity = artifact_identity(payload)
    assert identity == config.identity()
    assert len(identity) == 12 and int(identity, 16) >= 0


@pytest.mark.parametrize("path", _artifact_params())
def test_scenario_block_agrees_with_registry(path, payloads):
    scenario_block = payloads[path]["scenario"]
    name = scenario_block["name"]
    assert name in DEFAULT_REGISTRY, (
        f"{path.name} refers to scenario {name!r} which is no longer "
        "registered; delete the stale baseline or restore the scenario"
    )
    registered = get_scenario(name).to_dict()
    for field in _IDENTITY_FIELDS:
        if field not in scenario_block:
            continue  # optional pre-migration fields
        assert scenario_block[field] == registered[field], (
            f"{path.name}: scenario.{field} drifted from the registry "
            "definition; the baseline no longer measures the registered "
            "configuration -- re-run and re-commit it"
        )


@pytest.mark.parametrize("path", _artifact_params())
def test_timing_block_is_internally_consistent(path, payloads):
    payload = payloads[path]
    timing = payload["timing"]
    trials = payload["trials"]
    assert math.isclose(
        timing["vectorized_seconds_per_trial"],
        timing["vectorized_seconds"] / trials["vectorized"],
        rel_tol=1e-9,
    )
    if trials["reference"] > 0:
        assert math.isclose(
            timing["reference_seconds_per_trial"],
            timing["reference_seconds"] / trials["reference"],
            rel_tol=1e-9,
        )
        assert math.isclose(
            timing["speedup"],
            timing["reference_seconds_per_trial"]
            / timing["vectorized_seconds_per_trial"],
            rel_tol=1e-9,
        )


@pytest.mark.parametrize("path", _artifact_params())
def test_summary_statistics_rederive_from_per_trial_series(path, payloads):
    payload = payloads[path]
    results = payload["results"]
    per_trial = results.get("per_trial")
    if per_trial is None:
        if path.parent == LEGACY_DIR:
            # The one place the pre-PR-7 summaries-only form remains
            # acceptable: the committed fixture that pins the schema's
            # legacy tolerance.  validate_bench already enforced the
            # min <= mean <= max invariant, all that can be re-checked.
            pytest.skip("documented legacy fixture predates per_trial")
        pytest.fail(
            f"{path.name} lacks results.per_trial; live baselines must "
            "carry the series -- regenerate with "
            f"`python -m repro.experiments run {payload['scenario']['name']}`"
        )
    num_trials = payload["trials"]["vectorized"]
    assert len(per_trial["success"]) == num_trials
    derived_rate = sum(per_trial["success"]) / num_trials
    assert results["success_rate"] == derived_rate
    for key, block in results.items():
        if key in ("success_rate", "per_trial"):
            continue
        series = per_trial[key]
        assert len(series) == num_trials
        assert block["mean"] == sum(series) / num_trials
        assert block["min"] == min(series)
        assert block["max"] == max(series)


@pytest.mark.parametrize("path", _rebuild_params())
def test_topology_block_reproduces_from_scenario(path, payloads):
    payload = payloads[path]
    scenario = Scenario.from_dict(payload["scenario"])
    graph = scenario.build_graph()
    recorded = payload["topology"]
    assert graph.num_nodes == recorded["num_nodes"]
    assert graph.num_edges == recorded["num_edges"]
    assert graph.max_degree() == recorded["max_degree"]
    summary = summarize_topology(graph)
    assert summary.diameter == recorded["diameter"]
