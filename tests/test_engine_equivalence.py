"""The backend/engine equivalence harness: reference vs dense vs sparse.

This is the single home of the package's equivalence guarantee
(``repro.simulation`` docstring).  One table of cases -- topology family
x strategy x collision model x algorithm -- runs every seeded instance
through all three execution paths:

* the pure-Python reference ``ProtocolRunner`` (``backend="reference"``),
* the vectorized backend on the dense matmul kernel (``engine="dense"``),
* the vectorized backend on the sparse CSR kernel (``engine="sparse"``),

and asserts *round-exact* agreement field by field: same winner/leader,
same success flag, same executed-round count, same per-node reception
rounds and final messages, identical metric counters.  Cases marked
``slow`` cover the large-``n`` regime (up to 1024 nodes with the
reference runner in the loop, beyond it dense-vs-sparse only) and are
excluded in CI via ``-m "not slow"``.

Engine *internals* (draw streams, input validation, caching) live in
``tests/test_vectorized.py``; CSR structure in ``tests/test_sparse.py``;
decomposition/schedule structure in ``tests/test_clustering.py``.
"""

import dataclasses
from typing import Callable, Optional, Tuple

import pytest

from repro import topology
from repro.api import ExecutionConfig
from repro.dynamics import (
    DynamicsSpec,
    EdgeChurn,
    JammingWindows,
    NodeCrash,
)
from repro.core.broadcast import broadcast
from repro.core.compete import Compete, compete
from repro.core.leader_election import elect_leader
from repro.core.parameters import CompeteParameters
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.network.radio import CollisionModel

#: The three execution paths compared pairwise: (label, backend, engine).
EXECUTIONS = (
    ("reference", "reference", "auto"),
    ("dense", "vectorized", "dense"),
    ("sparse", "vectorized", "sparse"),
)

NO_DETECT = CollisionModel.NO_DETECTION
DETECT = CollisionModel.WITH_DETECTION


@dataclasses.dataclass(frozen=True)
class Case:
    """One row of the equivalence table."""

    name: str
    factory: Callable[[], Graph]
    algorithm: str = "compete"  # compete | broadcast | election
    strategy: str = "skeleton"
    collision_model: CollisionModel = NO_DETECT
    spontaneous: bool = True
    seeds: Tuple[int, ...] = (0, 7)
    dynamics: Optional[DynamicsSpec] = None
    slow: bool = False


CASES = [
    # --- Compete: candidate races across the family x strategy grid ----
    Case("compete-path-skeleton", lambda: topology.path_graph(17)),
    Case("compete-path-clustered", lambda: topology.path_graph(30),
         strategy="clustered"),
    Case("compete-path-classical", lambda: topology.path_graph(17),
         spontaneous=False),
    Case("compete-star-skeleton-detect", lambda: topology.star_graph(12),
         collision_model=DETECT),
    Case("compete-star-clustered", lambda: topology.star_graph(12),
         strategy="clustered"),
    Case("compete-grid-skeleton", lambda: topology.grid_graph(5, 5)),
    Case("compete-grid-clustered-detect", lambda: topology.grid_graph(6, 5),
         strategy="clustered", collision_model=DETECT),
    Case("compete-grid-classical-clustered",
         lambda: topology.grid_graph(5, 5), strategy="clustered",
         spontaneous=False),
    Case("compete-gnp-skeleton",
         lambda: topology.connected_gnp_graph(20, 0.15, seed=11)),
    Case("compete-gnp-clustered",
         lambda: topology.connected_gnp_graph(24, 0.15, seed=9),
         strategy="clustered"),
    Case("compete-randomtree-skeleton",
         lambda: topology.random_tree_graph(18, seed=4)),
    Case("compete-cliquepath-clustered",
         lambda: topology.path_of_cliques_graph(5, 5), strategy="clustered"),
    # --- broadcast: the one-candidate instance -------------------------
    Case("broadcast-path-skeleton", lambda: topology.path_graph(16),
         algorithm="broadcast"),
    Case("broadcast-path-classical", lambda: topology.path_graph(16),
         algorithm="broadcast", spontaneous=False),
    Case("broadcast-grid-clustered", lambda: topology.grid_graph(4, 5),
         algorithm="broadcast", strategy="clustered"),
    Case("broadcast-star-detect", lambda: topology.star_graph(10),
         algorithm="broadcast", collision_model=DETECT),
    Case("broadcast-tree-skeleton", lambda: topology.binary_tree_graph(4),
         algorithm="broadcast"),
    Case("broadcast-rgg-skeleton",
         lambda: topology.random_geometric_graph(24, seed=5),
         algorithm="broadcast"),
    # --- leader election: retries + candidate randomness ---------------
    Case("election-grid-skeleton", lambda: topology.grid_graph(4, 4),
         algorithm="election", spontaneous=False, seeds=(0, 3, 9)),
    Case("election-grid-clustered", lambda: topology.grid_graph(4, 4),
         algorithm="election", strategy="clustered", spontaneous=False,
         seeds=(0, 4)),
    Case("election-complete-skeleton", lambda: topology.complete_graph(16),
         algorithm="election", spontaneous=False),
    Case("election-gnp-clustered",
         lambda: topology.connected_gnp_graph(16, 0.2, seed=3),
         algorithm="election", strategy="clustered", spontaneous=False),
    Case("election-star-spontaneous", lambda: topology.star_graph(8),
         algorithm="election", spontaneous=True),
    # --- fault injection: every path sees the same fault stream --------
    # The repro.dynamics contract (keyed on (fault_seed, round, entity),
    # never on the trial) means the reference runner and both kernels
    # must make bit-identical fault decisions -- these rows enforce it
    # for each fault kind alone and for all three stacked.
    Case("broadcast-grid-churn", lambda: topology.grid_graph(6, 6),
         algorithm="broadcast",
         dynamics=DynamicsSpec(
             fault_seed=11,
             models=(EdgeChurn(p_down=0.08, p_up=0.4),))),
    Case("compete-gnp-crash",
         lambda: topology.connected_gnp_graph(20, 0.2, seed=6),
         dynamics=DynamicsSpec(
             fault_seed=5,
             models=(NodeCrash(p_crash=0.03, p_recover=0.3),))),
    Case("election-grid-jam-detect", lambda: topology.grid_graph(4, 4),
         algorithm="election", spontaneous=False,
         collision_model=DETECT,
         dynamics=DynamicsSpec(
             fault_seed=3,
             models=(JammingWindows(period=6, duration=2, offset=2,
                                    fraction=0.3),))),
    Case("broadcast-tree-churn-crash-jam",
         lambda: topology.binary_tree_graph(5),
         algorithm="broadcast",
         dynamics=DynamicsSpec(
             fault_seed=2017,
             models=(EdgeChurn(p_down=0.05, p_up=0.35),
                     NodeCrash(p_crash=0.02, p_recover=0.25),
                     JammingWindows(period=8, duration=2, offset=4)))),
    Case("compete-path-churn-classical", lambda: topology.path_graph(14),
         spontaneous=False,
         dynamics=DynamicsSpec(
             fault_seed=8,
             models=(EdgeChurn(p_down=0.04, p_up=0.5),))),
    # --- the large-n regime (excluded in CI via -m "not slow") ---------
    Case("compete-grid-n1024", lambda: topology.grid_graph(32, 32),
         seeds=(0,), slow=True),
    Case("compete-tree-n1023-clustered",
         lambda: topology.binary_tree_graph(9), strategy="clustered",
         seeds=(0,), slow=True),
    Case("broadcast-gnp-n1024",
         lambda: topology.connected_gnp_graph(1024, 0.008, seed=1024),
         algorithm="broadcast", seeds=(0,), slow=True),
    Case("broadcast-path-n257-clustered", lambda: topology.path_graph(257),
         algorithm="broadcast", strategy="clustered", seeds=(0,),
         slow=True),
    # The shapes behind the sparse-regime sweep additions
    # (broadcast-rgg-n4096 / election-grid-n4096), pinned at the largest
    # size the reference runner can still join: the benchmark scenarios
    # themselves run --skip-reference, so these rows are where their
    # round-exactness is actually enforced.
    Case("broadcast-rgg-n1024",
         lambda: topology.random_geometric_graph(1024, seed=1024),
         algorithm="broadcast", seeds=(0,), slow=True),
    Case("election-grid-n100", lambda: topology.grid_graph(10, 10),
         algorithm="election", spontaneous=False, seeds=(0,), slow=True),
]


def case_params():
    for case in CASES:
        marks = (pytest.mark.slow,) if case.slow else ()
        yield pytest.param(case, id=case.name, marks=marks)


def run_case(
    case: Case, seed: int, backend: str, engine: str, rng: str = "replay"
):
    """Execute one case on one execution path (via ExecutionConfig)."""
    graph = case.factory()
    common = dict(
        seed=seed,
        spontaneous=case.spontaneous,
        config=ExecutionConfig(
            backend=backend,
            engine=engine,
            strategy=case.strategy,
            collision_model=case.collision_model,
            rng=rng,
            dynamics=case.dynamics,
        ),
    )
    if case.algorithm == "compete":
        nodes = graph.nodes()
        candidates = {
            nodes[0]: 10, nodes[-1]: 20, nodes[len(nodes) // 2]: 15
        }
        return compete(graph, candidates, **common)
    if case.algorithm == "broadcast":
        return broadcast(graph, source=graph.nodes()[0], **common)
    assert case.algorithm == "election"
    return elect_leader(graph, **common)


def assert_round_exact(case: Case, seed: int, reference, other, label: str):
    """Field-by-field agreement of two results of the same algorithm."""
    context = f"{case.name} seed={seed}: reference vs {label}"
    if case.algorithm == "election":
        fields = ("success", "leader", "attempts", "rounds", "num_candidates")
    elif case.algorithm == "broadcast":
        fields = ("success", "source", "message", "rounds", "num_informed")
    else:
        fields = ("success", "winner", "rounds", "num_candidates")
    for field in fields:
        assert getattr(reference, field) == getattr(other, field), (
            f"{context}: {field} diverged"
        )
    assert dict(reference.reception_rounds) == dict(
        other.reception_rounds
    ), context
    if case.algorithm == "compete":
        assert dict(reference.final_messages) == dict(
            other.final_messages
        ), context
    assert reference.metrics.as_dict() == other.metrics.as_dict(), context


@pytest.mark.parametrize("case", case_params())
def test_three_way_round_exact_agreement(case):
    for seed in case.seeds:
        results = {
            label: run_case(case, seed, backend, engine)
            for label, backend, engine in EXECUTIONS
        }
        assert_round_exact(case, seed, results["reference"],
                           results["dense"], "dense")
        assert_round_exact(case, seed, results["reference"],
                           results["sparse"], "sparse")


@pytest.mark.parametrize("case", case_params())
def test_dense_sparse_exact_under_decoupled_rng(case):
    # The decoupled counter rng intentionally breaks parity with the
    # *reference* runner (that contract is distributional, owned by
    # tests/test_rng_decoupled.py) -- but the two vectorized kernels
    # must still agree bit for bit with each other: they evaluate the
    # same hash at the same (trial, round, node) coordinates, so any
    # divergence is a kernel bug, not a randomness question.
    for seed in case.seeds:
        dense = run_case(case, seed, "vectorized", "dense", rng="decoupled")
        sparse = run_case(case, seed, "vectorized", "sparse", rng="decoupled")
        assert_round_exact(case, seed, dense, sparse, "sparse-decoupled")


# ----------------------------------------------------------------------
# Degenerate and boundary dynamics, across all three paths
# ----------------------------------------------------------------------
def _three_way_compete(graph, candidates, *, parameters=None,
                       spontaneous=False, seed=0):
    return {
        label: Compete(
            graph,
            parameters=parameters,
            config=ExecutionConfig(backend=backend, engine=engine),
        ).run(candidates, seed=seed, spontaneous=spontaneous)
        for label, backend, engine in EXECUTIONS
    }


def _assert_all_equal(results):
    reference = results["reference"]
    for label in ("dense", "sparse"):
        other = results[label]
        assert reference.success == other.success, label
        assert reference.winner == other.winner, label
        assert reference.rounds == other.rounds, label
        assert dict(reference.reception_rounds) == dict(
            other.reception_rounds
        ), label
        assert dict(reference.final_messages) == dict(
            other.final_messages
        ), label
        assert reference.metrics.as_dict() == other.metrics.as_dict(), label
    return reference


def test_budget_exhaustion_agreement():
    # A schedule far too short to saturate must fail identically on all
    # three paths (same partial progress, same charged rounds).
    graph = topology.path_graph(12)
    parameters = CompeteParameters(
        num_nodes=12, diameter=11, decay_steps=4, num_decay_rounds=2
    )
    for seed in range(4):
        results = _three_way_compete(
            graph, {0: 1}, parameters=parameters, seed=seed
        )
        reference = _assert_all_equal(results)
        assert reference.rounds == parameters.total_rounds


def test_no_candidates_agreement():
    # The empty race charges the full (silent or dummy-only) schedule and
    # fails -- identically everywhere.
    graph = topology.star_graph(5)
    for spontaneous in (False, True):
        results = _three_way_compete(
            graph, {}, spontaneous=spontaneous, seed=2
        )
        reference = _assert_all_equal(results)
        assert not reference.success
        assert reference.winner is None


def test_degenerate_saturation_agreement():
    # Single node, and every node already holding the winner: zero rounds
    # and zero traffic on all three paths.
    single = Graph(nodes=[0])
    results = _three_way_compete(single, {0: 1}, seed=0)
    assert _assert_all_equal(results).rounds == 0

    clique = topology.complete_graph(4)
    winner = Message(value=9, source=0)
    results = _three_way_compete(
        clique, {node: winner for node in clique.nodes()}, seed=1
    )
    assert _assert_all_equal(results).rounds == 0


@pytest.mark.slow
def test_dense_sparse_agree_beyond_reference_scale():
    # Past n = 1024 the reference runner drops out of the loop; the two
    # vectorized kernels must still agree batch-for-batch.  n = 2047 is
    # above DENSE_NODE_CUTOFF, so this also exercises a forced dense
    # engine on a graph the auto heuristic would route to sparse.
    graph = topology.binary_tree_graph(10)  # n = 2047, D = 20
    seeds = [0, 1, 2]
    outcomes = {}
    for engine in ("dense", "sparse"):
        primitive = Compete(
            graph, config=ExecutionConfig(backend="vectorized", engine=engine)
        )
        outcomes[engine] = primitive.run_batch(
            {0: 1}, seeds=seeds, spontaneous=True
        )
    for fast, slow in zip(outcomes["sparse"], outcomes["dense"]):
        assert fast.success and slow.success
        assert fast.rounds == slow.rounds
        assert dict(fast.reception_rounds) == dict(slow.reception_rounds)
        assert fast.metrics.as_dict() == slow.metrics.as_dict()
