"""The cluster decomposition subsystem and the strategy axis on Compete.

Three layers are pinned here:

1. structural invariants of :func:`repro.core.clustering.decompose`
   (partition, radius bound, deterministic leaders, contention bounds);
2. the Lemma 2.3 cost-charged schedule built from a decomposition
   (power-of-two cycle lengths, contention coverage at every listener);
3. the strategy axis on Compete: the headline property that the
   clustered strategy beats the skeleton's round count on low-contention
   topologies, and the custom-strategy plug-in API.

Round-exact reference/dense/sparse agreement -- per strategy -- is
covered by the case table in ``tests/test_engine_equivalence.py``.
"""

import math

import pytest

from repro import topology
from repro.api import ExecutionConfig
from repro.core.broadcast import broadcast
from repro.core.clustering import Cluster, ClusterDecomposition, decompose
from repro.core.compete import (
    STRATEGIES,
    ClusteredStrategy,
    Compete,
    CompeteStrategy,
    SkeletonStrategy,
    compete,
    resolve_strategy,
)
from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.schedules.cluster import charged_cycle_steps, cluster_schedule
from repro.schedules.transmission import (
    TransmissionSchedule,
    decay_probabilities,
    next_power_of_two,
    uniform_decay_schedule,
)

TOPOLOGIES = [
    ("path", lambda: topology.path_graph(30)),
    ("star", lambda: topology.star_graph(12)),
    ("grid", lambda: topology.grid_graph(6, 5)),
    ("random-gnp", lambda: topology.connected_gnp_graph(24, 0.15, seed=9)),
    ("clique-path", lambda: topology.path_of_cliques_graph(5, 5)),
]


# ----------------------------------------------------------------------
# decomposition structure
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,factory", TOPOLOGIES)
@pytest.mark.parametrize("radius", [0, 1, 2, 4])
def test_decompose_partitions_with_bounded_radius(name, factory, radius):
    graph = factory()
    decomposition = decompose(graph, radius=radius)
    seen = set()
    for cluster in decomposition.clusters:
        assert not (cluster.members & seen), "clusters must be disjoint"
        seen |= cluster.members
        assert cluster.radius <= radius
        assert cluster.layers[0] == (cluster.leader,)
        assert cluster.leader in cluster
        # Layers tile the member set and respect leader distance within
        # the cluster's own subgraph (growth never crosses other clusters).
        assert set().union(*map(set, cluster.layers)) == cluster.members
        sub = graph.subgraph(cluster.members)
        distances = sub.bfs_distances(cluster.leader)
        for depth, layer in enumerate(cluster.layers):
            for node in layer:
                assert distances[node] <= depth
    assert seen == set(graph.nodes()), "clusters must cover every node"


def test_decompose_radius_zero_is_singletons():
    graph = topology.grid_graph(3, 3)
    decomposition = decompose(graph, radius=0)
    assert decomposition.num_clusters == graph.num_nodes
    assert all(cluster.size == 1 for cluster in decomposition.clusters)


def test_decompose_is_deterministic_and_seedable():
    graph = topology.connected_gnp_graph(30, 0.12, seed=3)
    first = decompose(graph, radius=2)
    second = decompose(graph, radius=2)
    assert first.leaders() == second.leaders()
    assert [c.members for c in first.clusters] == [
        c.members for c in second.clusters
    ]
    # Explicit seeds become the first leaders, in the given order
    # (unless an earlier cluster's growth already swallowed them).
    path = topology.path_graph(30)
    seeded = decompose(path, radius=2, seeds=[29, 3])
    assert seeded.leaders()[:2] == (29, 3)
    swallowed = decompose(path, radius=2, seeds=[4, 3])  # 3 in 4's cluster
    assert 3 not in swallowed.leaders()
    with pytest.raises(ConfigurationError, match="not in the graph"):
        decompose(graph, seeds=["ghost"])


def test_decompose_validation():
    with pytest.raises(ConfigurationError, match="empty graph"):
        decompose(Graph())
    with pytest.raises(ConfigurationError, match="radius"):
        decompose(topology.path_graph(4), radius=-1)
    # ClusterDecomposition itself rejects overlapping / partial covers.
    graph = topology.path_graph(3)
    half = Cluster(index=0, leader=0, members=frozenset({0, 1}),
                   layers=((0,), (1,)))
    with pytest.raises(ConfigurationError, match="do not cover"):
        ClusterDecomposition(graph, [half])
    overlap = Cluster(index=1, leader=1, members=frozenset({1, 2}),
                      layers=((1,), (2,)))
    with pytest.raises(ConfigurationError, match="belongs to clusters"):
        ClusterDecomposition(graph, [half, overlap])


def test_decomposition_queries():
    graph = topology.path_graph(9)
    decomposition = decompose(graph, radius=1)
    # Path of 9 with radius 1: clusters {0,1}, {2,3}, ..., trailing {8}.
    assert decomposition.cluster_of(0) is decomposition.clusters[0]
    for index in range(decomposition.num_clusters):
        adjacent = decomposition.adjacent_clusters(index)
        assert index not in adjacent
        for other in adjacent:
            # Adjacency is symmetric and witnessed by a crossing edge.
            assert index in decomposition.adjacent_clusters(other)
        assert decomposition.contention(index) == max(
            graph.degree(node)
            for node in decomposition.clusters[index].members
        )
        boundary = decomposition.boundary_nodes(index)
        assert boundary <= decomposition.clusters[index].members
    # Every node's charge covers the degree of each of its neighbours --
    # the inequality the Lemma 3.1 argument needs at every listener.
    for node in graph.nodes():
        for listener in graph.neighbors(node):
            assert decomposition.charged_contention(node) >= graph.degree(
                listener
            )


# ----------------------------------------------------------------------
# transmission schedules
# ----------------------------------------------------------------------
def test_transmission_schedule_basics():
    schedule = TransmissionSchedule({0: (0.5, 0.25), 1: (0.5,)}, name="t")
    assert schedule.cycle_length == 2
    assert schedule.period(0) == 2 and schedule.period(1) == 1
    assert schedule.probability(0, 3) == 0.25
    assert schedule.probability(1, 3) == 0.5
    matrix = schedule.probability_matrix([0, 1])
    assert matrix.shape == (2, 2)
    assert matrix[1, 0] == 0.25 and matrix[1, 1] == 0.5
    with pytest.raises(ConfigurationError, match="not covered"):
        schedule.probability(9, 0)
    with pytest.raises(ConfigurationError):
        TransmissionSchedule({})
    with pytest.raises(ConfigurationError, match="empty probability"):
        TransmissionSchedule({0: ()})
    with pytest.raises(ConfigurationError, match="outside"):
        TransmissionSchedule({0: (0.0,)})
    with pytest.raises(ConfigurationError, match="outside"):
        TransmissionSchedule({0: (1.5,)})


def test_uniform_decay_schedule_matches_decay_rule():
    schedule = uniform_decay_schedule([0, 1, 2], 4)
    assert schedule.cycle_length == 4
    for node in (0, 1, 2):
        assert schedule.probabilities(node) == decay_probabilities(4)
    for round_number in range(8):
        step = (round_number % 4) + 1
        assert schedule.probability(0, round_number) == 2.0 ** (-step)


@pytest.mark.parametrize("name,factory", TOPOLOGIES)
def test_cluster_schedule_is_cost_charged_and_nested(name, factory):
    graph = factory()
    decomposition = decompose(graph, radius=2)
    schedule = cluster_schedule(decomposition)
    log_n = max(1, math.ceil(math.log2(graph.num_nodes)))
    periods = set()
    for node in graph.nodes():
        period = schedule.period(node)
        periods.add(period)
        # Power-of-two cycles nest (the alignment requirement)...
        assert period == next_power_of_two(period)
        # ...and cover the contention at every listener the node reaches.
        for listener in graph.neighbors(node):
            contenders = graph.degree(listener)
            assert period >= math.ceil(math.log2(contenders + 1))
        # The charge never exceeds the global worst case by more than
        # the power-of-two rounding.
        assert period <= next_power_of_two(
            charged_cycle_steps(graph.num_nodes - 1)
        )
    # The whole point: on bounded-degree topologies the cycles are far
    # shorter than the skeleton's ceil(log2 n).
    if graph.max_degree() <= 4:
        assert max(periods) <= 4 < log_n + 1


def test_cluster_schedule_path_vs_star():
    # Path: contention 2 everywhere -> 2-step cycles.
    path_schedule = cluster_schedule(decompose(topology.path_graph(64)))
    assert path_schedule.max_period() == 2
    # Star: the hub really does face n-1 contenders -> the schedule must
    # not undershoot the skeleton.
    star = topology.star_graph(17)
    star_schedule = cluster_schedule(decompose(star))
    assert star_schedule.max_period() >= math.ceil(math.log2(17))


def test_charged_cycle_steps_values():
    assert [charged_cycle_steps(k) for k in (0, 1, 2, 3, 4, 255)] == [
        1, 1, 2, 2, 3, 8,
    ]
    assert [next_power_of_two(k) for k in (1, 2, 3, 5, 9)] == [1, 2, 4, 8, 16]


# ----------------------------------------------------------------------
# the strategy axis on Compete
# ----------------------------------------------------------------------
def test_resolve_strategy():
    assert isinstance(resolve_strategy("skeleton"), SkeletonStrategy)
    assert isinstance(resolve_strategy("clustered"), ClusteredStrategy)
    custom = ClusteredStrategy(radius=3)
    assert resolve_strategy(custom) is custom
    assert custom.radius == 3
    with pytest.raises(ConfigurationError, match="strategy"):
        resolve_strategy("quantum")
    with pytest.raises(ConfigurationError, match="radius"):
        ClusteredStrategy(radius=-1)
    assert set(STRATEGIES) == {"skeleton", "clustered"}


def test_clustered_broadcast_succeeds_and_beats_skeleton_on_path():
    # The acceptance headline in miniature: on the n = D + 1 extreme the
    # cost-charged schedule must beat the skeleton's round count.  Means
    # over several seeds keep the comparison robust (the per-seed gap is
    # large: 2-step cycles vs ceil(log2 n) = 7 steps).
    graph = topology.path_graph(128)
    seeds = [0, 1, 2, 3]
    skeleton = Compete(graph, config=ExecutionConfig(backend="vectorized"))
    clustered = Compete(graph, config=ExecutionConfig(
        backend="vectorized", strategy="clustered"))
    candidates = {0: 1}
    slow = skeleton.run_batch(candidates, seeds=seeds, spontaneous=True)
    fast = clustered.run_batch(candidates, seeds=seeds, spontaneous=True)
    assert all(result.success for result in slow)
    assert all(result.success for result in fast)
    mean_slow = sum(r.rounds for r in slow) / len(slow)
    mean_fast = sum(r.rounds for r in fast) / len(fast)
    assert mean_fast < mean_slow, (mean_fast, mean_slow)


def test_clustered_broadcast_succeeds_on_grid_and_star():
    for graph in (topology.grid_graph(8, 8), topology.star_graph(32)):
        result = broadcast(
            graph, source=graph.nodes()[0], seed=5,
            config=ExecutionConfig(backend="vectorized",
                                   strategy="clustered"),
        )
        assert result.success


def test_custom_strategy_plugs_in():
    class HalfStrategy(CompeteStrategy):
        """Every informed node transmits with probability 1/2."""

        name = "half"

        def build_schedule(self, graph, parameters):
            return TransmissionSchedule(
                {node: (0.5,) for node in graph.nodes()}, name=self.name
            )

    graph = topology.path_graph(10)
    reference = compete(
        graph, {0: 1}, seed=2, spontaneous=True,
        config=ExecutionConfig(strategy=HalfStrategy()),
    )
    vectorized = compete(
        graph, {0: 1}, seed=2, spontaneous=True,
        config=ExecutionConfig(strategy=HalfStrategy(),
                               backend="vectorized"),
    )
    assert reference.strategy == "half"
    assert reference.rounds == vectorized.rounds
    assert reference.metrics.as_dict() == vectorized.metrics.as_dict()


def test_strategy_schedule_tracks_graph_mutation():
    # The schedule cache is keyed on an adjacency snapshot: mutating the
    # graph between runs must rebuild the decomposition-backed schedule
    # (same contract as the vectorized-engine cache).
    graph = topology.path_graph(8)
    primitive = Compete(graph, config=ExecutionConfig(
        backend="vectorized", strategy="clustered"))
    before = primitive.run({0: 1}, seed=3, spontaneous=True)
    graph.add_edge(0, 7)
    after = primitive.run({0: 1}, seed=3, spontaneous=True)
    reference = Compete(graph, config=ExecutionConfig(
        strategy="clustered")).run({0: 1}, seed=3, spontaneous=True)
    assert after.rounds == reference.rounds
    assert dict(after.reception_rounds) == dict(reference.reception_rounds)
    assert after.metrics.as_dict() == reference.metrics.as_dict()
    assert dict(before.reception_rounds) != dict(after.reception_rounds)
