"""The repro.dynamics subsystem: models, streams, schedules, identity.

Cross-backend *agreement* under faults is enforced by the equivalence
harness (``tests/test_engine_equivalence.py``); this module owns the
subsystem's local contracts: spec validation and serialisation, the
counter-hash fault streams' determinism, the Markov schedule's rewind
semantics, how the fault axis enters (and stays out of)
``ExecutionConfig`` identities, and the new robustness counters.
"""

import json

import numpy as np
import pytest

from repro import topology
from repro.api import ExecutionConfig
from repro.dynamics import (
    CHURN,
    CRASH,
    JAM,
    MODEL_KINDS,
    DynamicsSpec,
    EdgeChurn,
    FaultModel,
    FaultSchedule,
    FaultStreams,
    JammingWindows,
    NodeCrash,
    coerce_dynamics,
)
from repro.errors import ConfigurationError
from repro.network.metrics import NetworkMetrics


CHURN_SPEC = DynamicsSpec(
    fault_seed=7, models=(EdgeChurn(p_down=0.1, p_up=0.4),)
)
FULL_SPEC = DynamicsSpec(
    fault_seed=2017,
    models=(
        EdgeChurn(p_down=0.05, p_up=0.35),
        NodeCrash(p_crash=0.02, p_recover=0.25),
        JammingWindows(period=8, duration=2, offset=4, fraction=0.25),
    ),
)


# ----------------------------------------------------------------------
# fault models
# ----------------------------------------------------------------------
def test_model_parameter_validation():
    with pytest.raises(ConfigurationError, match="p_down"):
        EdgeChurn(p_down=1.5, p_up=0.5)
    with pytest.raises(ConfigurationError, match="p_crash"):
        NodeCrash(p_crash=-0.1, p_recover=0.5)
    # Permanent faults (a nonzero down-rate with no recovery) would
    # monotonically disconnect the network; both Markov models reject it.
    with pytest.raises(ConfigurationError, match="p_up"):
        EdgeChurn(p_down=0.2, p_up=0.0)
    with pytest.raises(ConfigurationError, match="p_recover"):
        NodeCrash(p_crash=0.2, p_recover=0.0)
    with pytest.raises(ConfigurationError):
        JammingWindows(period=0, duration=1)
    with pytest.raises(ConfigurationError):
        JammingWindows(period=4, duration=5)
    with pytest.raises(ConfigurationError):
        JammingWindows(period=4, duration=2, offset=-1)
    with pytest.raises(ConfigurationError):
        JammingWindows(period=4, duration=2, fraction=2.0)


def test_jamming_window_phase():
    jam = JammingWindows(period=6, duration=2, offset=3)
    active = [round_ for round_ in range(15) if jam.active(round_)]
    assert active == [3, 4, 9, 10]
    # Zero duration is a valid no-op jammer configuration? No: duration
    # must be >= 1, so the narrowest window is one round wide.
    always = JammingWindows(period=1, duration=1)
    assert all(always.active(round_) for round_ in range(5))


def test_model_describe_round_trip_and_kind_dispatch():
    for model in FULL_SPEC.models:
        assert FaultModel.from_dict(model.describe()) == model
        assert model.describe()["kind"] in MODEL_KINDS
    with pytest.raises(ConfigurationError, match="kind"):
        FaultModel.from_dict({"p_down": 0.1})
    with pytest.raises(ConfigurationError, match="unknown fault model"):
        FaultModel.from_dict({"kind": "meteor-strike"})
    with pytest.raises(ConfigurationError):
        FaultModel.from_dict({"kind": "edge-churn", "p_down": 0.1})


# ----------------------------------------------------------------------
# DynamicsSpec
# ----------------------------------------------------------------------
def test_spec_round_trips_and_sorts_models_by_lane():
    rebuilt = DynamicsSpec.from_dict(FULL_SPEC.describe())
    assert rebuilt == FULL_SPEC
    assert json.loads(json.dumps(FULL_SPEC.describe())) == FULL_SPEC.describe()
    # Construction order never matters: models are stored in stream-lane
    # order, so shuffled inputs compare and serialise identically.
    shuffled = DynamicsSpec(
        fault_seed=2017, models=tuple(reversed(FULL_SPEC.models))
    )
    assert shuffled == FULL_SPEC
    assert [m.kind for m in shuffled.models] == list(MODEL_KINDS)
    assert shuffled.churn == FULL_SPEC.models[CHURN]
    assert shuffled.crash == FULL_SPEC.models[CRASH]
    assert shuffled.jamming == FULL_SPEC.models[JAM]


def test_spec_validation():
    with pytest.raises(ConfigurationError, match="fault_seed"):
        DynamicsSpec(fault_seed=-1, models=(EdgeChurn(0.1, 0.4),))
    with pytest.raises(ConfigurationError, match="at least one"):
        DynamicsSpec(fault_seed=0, models=())
    with pytest.raises(ConfigurationError, match="per kind"):
        DynamicsSpec(
            fault_seed=0,
            models=(EdgeChurn(0.1, 0.4), EdgeChurn(0.2, 0.4)),
        )
    with pytest.raises(ConfigurationError, match="models"):
        DynamicsSpec(fault_seed=0, models=(42,))


def test_coerce_dynamics():
    assert coerce_dynamics(None) is None
    assert coerce_dynamics(CHURN_SPEC) is CHURN_SPEC
    assert coerce_dynamics(CHURN_SPEC.describe()) == CHURN_SPEC
    with pytest.raises(ConfigurationError, match="dynamics"):
        coerce_dynamics("churn")


# ----------------------------------------------------------------------
# FaultStreams: the counter-hash lanes
# ----------------------------------------------------------------------
def test_streams_are_deterministic_pure_functions():
    a = FaultStreams(fault_seed=99)
    b = FaultStreams(fault_seed=99)
    for round_ in (0, 1, 17):
        for kind in (CHURN, CRASH, JAM):
            np.testing.assert_array_equal(
                a.bits(round_, kind, 32), b.bits(round_, kind, 32)
            )
    # Query order is irrelevant -- streams hold no cursor state.
    late = a.bits(5, CHURN, 8).copy()
    a.bits(0, CRASH, 8)
    np.testing.assert_array_equal(a.bits(5, CHURN, 8), late)


def test_streams_decorrelate_across_seed_round_kind():
    base = FaultStreams(fault_seed=1).bits(3, CHURN, 64)
    assert not np.array_equal(base, FaultStreams(2).bits(3, CHURN, 64))
    assert not np.array_equal(base, FaultStreams(1).bits(4, CHURN, 64))
    assert not np.array_equal(base, FaultStreams(1).bits(3, CRASH, 64))
    uniforms = FaultStreams(1).uniforms(3, CHURN, 4096)
    assert uniforms.shape == (4096,)
    assert np.all((uniforms >= 0.0) & (uniforms < 1.0))
    # Coarse uniformity sanity: the mean of 4096 U(0,1) draws.
    assert abs(float(uniforms.mean()) - 0.5) < 0.05


def test_streams_validate_arguments():
    with pytest.raises(ConfigurationError):
        FaultStreams(fault_seed=-1)
    streams = FaultStreams(fault_seed=0)
    with pytest.raises(ConfigurationError):
        streams.bits(-1, CHURN, 4)
    with pytest.raises(ConfigurationError):
        streams.bits(0, 99, 4)
    with pytest.raises(ConfigurationError):
        streams.bits(0, CHURN, -1)
    # Zero entities is a valid (empty) query, not an error.
    assert streams.bits(0, CHURN, 0).shape == (0,)


# ----------------------------------------------------------------------
# FaultSchedule: Markov evolution + rewind
# ----------------------------------------------------------------------
def test_schedule_canonical_enumeration():
    graph = topology.grid_graph(4, 4)
    schedule = FaultSchedule(FULL_SPEC, graph)
    assert schedule.num_nodes == graph.num_nodes
    assert schedule.num_edges == graph.num_edges
    assert tuple(schedule.nodes) == tuple(graph.adjacency_csr()[2])
    lo, hi = schedule.edge_endpoints
    assert np.all(lo < hi)
    # Every directed CSR entry maps back onto a canonical edge id.
    assert schedule.entry_edge_ids.shape == (2 * graph.num_edges,)
    assert int(schedule.entry_edge_ids.max()) == graph.num_edges - 1


def test_schedule_rewind_replays_identically():
    graph = topology.grid_graph(5, 5)
    schedule = FaultSchedule(FULL_SPEC, graph)
    forward = [schedule.round_faults(r) for r in range(12)]
    # Rewinding to an earlier round resets the chains and replays from
    # round 0 -- exactly what a fresh run or the engines' silent-trial
    # prepass does -- so the trajectory must be reproduced bit for bit.
    for r in (0, 4, 11):
        again = schedule.round_faults(r)
        np.testing.assert_array_equal(again.alive, forward[r].alive)
        np.testing.assert_array_equal(again.jammed, forward[r].jammed)
        np.testing.assert_array_equal(again.edge_up, forward[r].edge_up)
        assert again.suppressed == forward[r].suppressed
        assert again.crashed_count == forward[r].crashed_count
    # A second schedule over the same (spec, graph) sees the identical
    # environment: faults are a function of (fault_seed, graph) only.
    twin = FaultSchedule(FULL_SPEC, graph)
    for r in (0, 3, 7):
        np.testing.assert_array_equal(
            twin.round_faults(r).edge_up, forward[r].edge_up
        )


def test_schedule_returns_fresh_arrays_and_set_helpers():
    graph = topology.grid_graph(4, 4)
    schedule = FaultSchedule(FULL_SPEC, graph)
    faults = schedule.round_faults(5)
    faults.alive[:] = False
    faults.edge_up[:] = False
    clean = schedule.round_faults(5)
    assert clean.crashed_count < schedule.num_nodes
    crashed = schedule.crashed_nodes(clean)
    jammed = schedule.jammed_nodes(clean)
    assert len(crashed) == clean.crashed_count
    assert all(node in graph for node in crashed | jammed)
    # jammed_nodes intersects the victim set with the living.
    assert not (jammed & crashed)
    # edge_is_up answers for both orientations of an undirected edge.
    lo, hi = schedule.edge_endpoints
    nodes = schedule.nodes
    u, v = nodes[int(lo[0])], nodes[int(hi[0])]
    assert schedule.edge_is_up(clean, u, v) == schedule.edge_is_up(
        clean, v, u
    )


def test_schedule_without_churn_keeps_links_up():
    graph = topology.star_graph(6)
    crash_only = DynamicsSpec(
        fault_seed=3, models=(NodeCrash(p_crash=0.1, p_recover=0.5),)
    )
    schedule = FaultSchedule(crash_only, graph)
    for r in range(6):
        faults = schedule.round_faults(r)
        assert faults.edge_up is None
        assert faults.suppressed == 0
        assert not faults.jammed.any()


# ----------------------------------------------------------------------
# identity: the fault axis must (only) matter when present
# ----------------------------------------------------------------------
def test_identity_excludes_dynamics_when_static():
    static = ExecutionConfig()
    assert "dynamics" not in static.describe()
    faulty = ExecutionConfig(dynamics=CHURN_SPEC)
    assert faulty.describe()["dynamics"] == CHURN_SPEC.describe()
    assert static.identity() != faulty.identity()
    assert static.cache_key("topo") != faulty.cache_key("topo")
    # Mapping and spec spellings coerce to the same identity; different
    # fault seeds diverge (the service cache must never conflate them).
    assert (
        ExecutionConfig(dynamics=CHURN_SPEC.describe()).identity()
        == faulty.identity()
    )
    reseeded = ExecutionConfig(
        dynamics=DynamicsSpec(fault_seed=8, models=CHURN_SPEC.models)
    )
    assert reseeded.identity() != faulty.identity()


def test_resolved_execution_binds_one_fault_schedule():
    graph = topology.grid_graph(4, 4)
    from repro.api.config import resolve_execution

    static = resolve_execution(graph, ExecutionConfig())
    assert static.fault_schedule is None
    resolved = resolve_execution(graph, ExecutionConfig(dynamics=FULL_SPEC))
    schedule = resolved.fault_schedule
    assert isinstance(schedule, FaultSchedule)
    assert resolved.fault_schedule is schedule
    assert schedule.spec == FULL_SPEC


# ----------------------------------------------------------------------
# robustness counters
# ----------------------------------------------------------------------
def test_metrics_carry_fault_counters():
    a = NetworkMetrics(
        rounds=2, transmissions=3, receptions=1, collisions=1,
        idle_listens=2, suppressed_links=4, crashed_nodes=1,
        jammed_listens=2,
    )
    b = a.copy()
    merged = a.merge(b)
    assert merged.suppressed_links == 8
    assert merged.crashed_nodes == 2
    assert merged.jammed_listens == 4
    assert merged.diff(a).jammed_listens == 2
    # Crashed and jammed listener slots count toward the delivery
    # denominator: a faulty run cannot report a better ratio than the
    # same traffic on a healthy network.
    healthy = NetworkMetrics(
        rounds=2, transmissions=3, receptions=1, collisions=1,
        idle_listens=2,
    )
    assert a.delivery_ratio < healthy.delivery_ratio
    assert a.as_dict()["suppressed_links"] == 4
