"""Statistical replay-vs-decoupled equivalence (the rng contract).

The ``rng="decoupled"`` counter mode does not replay the reference
runner's draw streams, so its correctness claim is distributional: on
every scenario, replay and decoupled runs must induce the same
completion-round distribution.  This module pins that claim with
pre-registered two-sample tests.

Methodology (fixed before looking at any data):

- **Samples.**  Each cell draws ``TRIALS`` completion-round values per
  policy from *disjoint* seed ranges (replay seeds ``0..``, decoupled
  seeds ``10_000..``) so the two samples are independent; identical
  seeds would not help (the policies map seeds to different draws) and
  could mask a bug through incidental coupling.
- **Tests.**  Two-sample Kolmogorov-Smirnov (sensitive to any CDF
  difference) and Mann-Whitney U (sensitive to the location shift a
  biased draw stream would actually cause), both from ``tests/stats.py``.
- **Alpha.**  ``ALPHA = 1e-3`` per test.  With ~7 cells x 2 tests the
  family-wise false-alarm rate under the null stays below ~1.4%, and
  because every seed is fixed the tests are deterministic: a failure is
  a real regression (or a genuinely unlucky pinned sample -- in which
  case re-pinning seed ranges is a reviewed change, not a flake).
- **Power.**  ``test_power_self_check`` verifies the same machinery
  *rejects* a deliberately shifted sample, so a vacuously-passing test
  suite (e.g. a stats helper returning ``p = 1.0``) cannot hide.

The default lane keeps ``TRIALS`` small; the ``stats`` marker re-runs
the layer with a larger sample (see ``pyproject.toml`` and CI's stats
job) for tighter power at the same alpha.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Callable

import numpy as np
import pytest

from stats import ks_2samp, mann_whitney_u
from repro import topology
from repro.api import DEFAULT_ALGORITHMS, ExecutionConfig
from repro.experiments.persistence import validate_bench
from repro.network.graph import Graph

#: Pre-registered per-test significance level (see module docstring).
ALPHA = 1e-3

#: Default-lane sample size per policy per cell.
TRIALS = 40

#: Deep-lane (``-m stats``) sample size.
STATS_TRIALS = 120

#: Disjoint seed bases for the two independent samples.
REPLAY_SEED_BASE = 0
DECOUPLED_SEED_BASE = 10_000

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


@dataclasses.dataclass(frozen=True)
class Cell:
    """One (topology x strategy x engine) distributional-agreement cell."""

    name: str
    factory: Callable[[], Graph]
    strategy: str = "skeleton"
    engine: str = "dense"
    algorithm: str = "broadcast"


#: The pinned cell table: both strategies and both vectorized kernels
#: appear, over paths (n = D + 1), grids (n = Theta(D^2)), a star
#: (maximal contention), a tree and a seeded gnp sample.
CELLS = [
    Cell("grid-skeleton-dense", lambda: topology.grid_graph(8, 8)),
    Cell("grid-clustered-sparse", lambda: topology.grid_graph(8, 8),
         strategy="clustered", engine="sparse"),
    Cell("path-skeleton-dense", lambda: topology.path_graph(48)),
    Cell("path-clustered-sparse", lambda: topology.path_graph(48),
         strategy="clustered", engine="sparse"),
    Cell("star-skeleton-sparse", lambda: topology.star_graph(48),
         engine="sparse"),
    Cell("tree-clustered-dense", lambda: topology.binary_tree_graph(5),
         strategy="clustered"),
    Cell("gnp-skeleton-dense",
         lambda: topology.connected_gnp_graph(64, 0.08, seed=64)),
]


def completion_rounds(cell: Cell, rng: str, seed_base: int, trials: int):
    """Completion rounds of ``trials`` independent runs of one cell."""
    graph = cell.factory()
    config = ExecutionConfig(
        backend="vectorized",
        engine=cell.engine,
        strategy=cell.strategy,
        rng=rng,
    )
    results = DEFAULT_ALGORITHMS.run_batch(
        cell.algorithm,
        graph,
        seeds=[seed_base + index for index in range(trials)],
        config=config,
    )
    assert all(result.success for result in results), (
        f"{cell.name} rng={rng}: a trial failed to complete -- the "
        "distributional comparison below would be meaningless"
    )
    return np.array([result.rounds for result in results], dtype=np.float64)


def assert_same_distribution(cell: Cell, trials: int) -> None:
    replay = completion_rounds(cell, "replay", REPLAY_SEED_BASE, trials)
    decoupled = completion_rounds(
        cell, "decoupled", DECOUPLED_SEED_BASE, trials
    )
    _, ks_p = ks_2samp(replay, decoupled)
    _, mw_p = mann_whitney_u(replay, decoupled)
    assert ks_p > ALPHA and mw_p > ALPHA, (
        f"{cell.name}: replay and decoupled completion-round "
        f"distributions diverge (KS p={ks_p:.2e}, MW p={mw_p:.2e}, "
        f"alpha={ALPHA}; replay mean={replay.mean():.1f}, "
        f"decoupled mean={decoupled.mean():.1f})"
    )


def cell_params():
    return [pytest.param(cell, id=cell.name) for cell in CELLS]


@pytest.mark.parametrize("cell", cell_params())
def test_replay_decoupled_distributional_agreement(cell):
    assert_same_distribution(cell, TRIALS)


@pytest.mark.stats
@pytest.mark.parametrize("cell", cell_params())
def test_replay_decoupled_distributional_agreement_deep(cell):
    # Same pre-registered cells and alpha, three times the sample: the
    # CI stats lane trades minutes for power the default lane skips.
    assert_same_distribution(cell, STATS_TRIALS)


def test_power_self_check():
    # The machinery must reject a real difference, or the agreement
    # tests above prove nothing.  Shift one sample by 1.5 standard
    # deviations (the scale of effect these sample sizes are powered
    # for): both tests must flag it at the same alpha they pass
    # unshifted.
    cell = CELLS[0]
    replay = completion_rounds(cell, "replay", REPLAY_SEED_BASE, TRIALS)
    shifted = completion_rounds(
        cell, "decoupled", DECOUPLED_SEED_BASE, TRIALS
    ) + max(2.0, 1.5 * replay.std())
    _, ks_p = ks_2samp(replay, shifted)
    _, mw_p = mann_whitney_u(replay, shifted)
    assert ks_p < ALPHA, f"KS failed to detect an injected shift (p={ks_p})"
    assert mw_p < ALPHA, f"MW failed to detect an injected shift (p={mw_p})"


def test_election_cell_distributional_agreement():
    # Leader election exercises the retry loop and candidate draws on
    # top of Compete; one cell checks the decoupled mode end to end.
    cell = Cell(
        "election-grid-skeleton-dense",
        lambda: topology.grid_graph(6, 6),
        algorithm="leader-election",
    )
    graph = cell.factory()
    samples = {}
    for rng, base in (
        ("replay", REPLAY_SEED_BASE), ("decoupled", DECOUPLED_SEED_BASE)
    ):
        config = ExecutionConfig(
            backend="vectorized", engine=cell.engine,
            strategy=cell.strategy, rng=rng,
        )
        results = DEFAULT_ALGORITHMS.run_batch(
            "leader-election", graph,
            seeds=[base + i for i in range(TRIALS)],
            config=config, spontaneous=False,
        )
        assert all(result.success for result in results)
        samples[rng] = np.array(
            [result.rounds for result in results], dtype=np.float64
        )
    _, ks_p = ks_2samp(samples["replay"], samples["decoupled"])
    _, mw_p = mann_whitney_u(samples["replay"], samples["decoupled"])
    assert ks_p > ALPHA and mw_p > ALPHA, (ks_p, mw_p)


# ----------------------------------------------------------------------
# Committed decoupled artifacts
# ----------------------------------------------------------------------
def _load(name: str) -> dict:
    path = BENCHMARKS / name
    assert path.exists(), f"committed artifact {name} is missing"
    payload = json.loads(path.read_text())
    validate_bench(payload)
    return payload


def test_committed_n1e5_artifacts_record_decoupled_rng():
    for name in ("BENCH_broadcast-grid-n1e5.json",
                 "BENCH_broadcast-gnp-n1e5.json"):
        payload = _load(name)
        assert payload["rng"] == "decoupled"
        assert payload["workers"] >= 1
        assert payload["scenario"]["rng"] == "decoupled"
        assert payload["topology"]["num_nodes"] >= 99_000
        assert payload["agreement"]["checked_trials"] == 0
        assert payload["engine"]["selected"] == "sparse"


def test_committed_n16384_decoupled_speedup():
    # The headline claim of the decoupled mode: >= 5x wall clock over
    # replay on the same 128x128 grid scenario, same machine, recorded
    # in the two committed twins.
    replay = _load("BENCH_broadcast-grid-n16384.json")
    decoupled = _load("BENCH_broadcast-grid-n16384-decoupled.json")
    assert replay.get("rng", "replay") == "replay"
    assert decoupled["rng"] == "decoupled"
    assert replay["scenario"]["topology_args"] == \
        decoupled["scenario"]["topology_args"]
    assert replay["environment"]["platform"] == \
        decoupled["environment"]["platform"], (
            "the twins must come from the same machine for the ratio "
            "to mean anything"
        )
    ratio = (
        replay["timing"]["vectorized_seconds_per_trial"]
        / decoupled["timing"]["vectorized_seconds_per_trial"]
    )
    assert ratio >= 5.0, f"decoupled speedup regressed: {ratio:.2f}x < 5x"
