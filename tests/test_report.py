"""The trend-report / perf-regression-gate layer (``experiments.report``).

Covers the pre-registered noise-band policy end to end: ok and
regression verdicts, the replay-only round gate, machine-normalized
timing ratios, the non-gating row statuses (baseline-only /
candidate-only / config-changed), byte-identical markdown rendering,
the machine-readable verdict document, and the CLI's exit-code and
one-line-error contract -- including a seeded end-to-end
``run`` -> ``report`` -> verdict smoke.
"""

import copy
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    DEFAULT_TIMING_TOLERANCE,
    NoiseBands,
    Scenario,
    artifact_identity,
    build_report,
    compare_artifact_sets,
    load_artifact_set,
    render_markdown,
    run_benchmark,
    verdict_payload,
    write_bench,
)
from repro.experiments.report import dump_verdict
from repro.experiments.cli import main


def _tiny(name, family, topology_args, seed):
    return Scenario(
        name=name, description="report-test scenario", family=family,
        topology_args=topology_args, algorithm="broadcast",
        trials=3, seed=seed,
    )


@pytest.fixture(scope="module")
def baseline():
    """Three real (tiny) artifacts: enough rows to machine-normalize."""
    scenarios = [
        _tiny("tiny-a-star", "star", {"num_leaves": 7}, 5),
        _tiny("tiny-b-path", "path", {"num_nodes": 8}, 6),
        _tiny("tiny-c-grid", "grid", {"rows": 3, "cols": 3}, 7),
    ]
    return {
        scenario.name: run_benchmark(scenario, include_reference=False)
        for scenario in scenarios
    }


def _slow_down(payload, factor):
    payload["timing"]["vectorized_seconds"] *= factor
    payload["timing"]["vectorized_seconds_per_trial"] *= factor


# ----------------------------------------------------------------------
# verdicts under the noise bands
# ----------------------------------------------------------------------
def test_identical_sets_are_ok(baseline):
    report = compare_artifact_sets(baseline, copy.deepcopy(baseline))
    assert report.verdict == "ok"
    assert all(row.status == "ok" for row in report.rows)
    assert report.counts == {
        "compared": 3, "ok": 3, "regressions": 0,
        "baseline_only": 0, "candidate_only": 0, "config_changed": 0,
    }
    # Identical timings normalize to exactly 1.0 via a median of 1.0.
    assert report.machine_factor == 1.0
    for row in report.rows:
        assert row.timing_ratio == 1.0
        assert row.identity == artifact_identity(baseline[row.name])
        outcomes = {check.name: check.outcome for check in row.checks}
        assert outcomes == {"replay-rounds": "pass", "wall-clock": "pass"}


def test_replay_round_drift_is_a_regression(baseline):
    candidate = copy.deepcopy(baseline)
    candidate["tiny-b-path"]["results"]["rounds"]["mean"] += 1.0
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "regression"
    by_name = {row.name: row for row in report.rows}
    assert by_name["tiny-b-path"].status == "regression"
    assert by_name["tiny-a-star"].status == "ok"
    failed = [c for c in by_name["tiny-b-path"].checks if c.outcome == "fail"]
    assert len(failed) == 1
    assert "replay drift" in failed[0].detail
    assert "results.rounds.mean" in failed[0].detail


def test_success_rate_drift_is_a_regression(baseline):
    candidate = copy.deepcopy(baseline)
    candidate["tiny-a-star"]["results"]["success_rate"] = 0.5
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "regression"


def test_single_scenario_slowdown_trips_the_gate(baseline):
    # The acceptance bar: an injected 2x wall-clock slowdown must flip
    # the verdict (tolerance 1.75 < 2, and the median of [2, 1, 1]
    # normalizes by 1.0, leaving the full 2x visible).
    candidate = copy.deepcopy(baseline)
    _slow_down(candidate["tiny-c-grid"], 2.0)
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "regression"
    row = {r.name: r for r in report.rows}["tiny-c-grid"]
    assert row.timing_ratio == pytest.approx(2.0)
    assert row.normalized_timing_ratio == pytest.approx(2.0)
    failed = [c for c in row.checks if c.outcome == "fail"]
    assert [c.name for c in failed] == ["wall-clock"]
    assert "tolerance 1.75x" in failed[0].detail


def test_whole_set_slowdown_reads_as_machine_speed(baseline):
    # Every scenario 2x slower: the median absorbs it (a slower
    # machine, not a regression) under the default policy...
    candidate = copy.deepcopy(baseline)
    for payload in candidate.values():
        _slow_down(payload, 2.0)
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "ok"
    assert report.machine_factor == pytest.approx(2.0)
    # ...but --no-normalize-timing (same-machine mode) gates raw ratios.
    strict = compare_artifact_sets(
        baseline, candidate, NoiseBands(normalize_timing=False)
    )
    assert strict.verdict == "regression"
    assert strict.machine_factor is None
    assert all(row.status == "regression" for row in strict.rows)


def test_too_few_rows_fall_back_to_raw_ratios(baseline):
    # With < MIN_RATIOS_FOR_NORMALIZATION compared scenarios the median
    # is dominated by the row under test, so normalization would hide a
    # real slowdown; raw ratios must gate instead.
    small_base = {"tiny-a-star": baseline["tiny-a-star"]}
    candidate = copy.deepcopy(small_base)
    _slow_down(candidate["tiny-a-star"], 2.0)
    report = compare_artifact_sets(small_base, candidate)
    assert report.machine_factor is None
    assert report.verdict == "regression"


def test_slowdown_inside_tolerance_is_ok(baseline):
    candidate = copy.deepcopy(baseline)
    _slow_down(candidate["tiny-a-star"], 1.5)  # < 1.75 tolerance
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "ok"


def test_one_sided_scenarios_never_gate(baseline):
    candidate = copy.deepcopy(baseline)
    extra = _tiny("tiny-z-new", "complete", {"num_nodes": 6}, 8)
    candidate["tiny-z-new"] = run_benchmark(extra, include_reference=False)
    del candidate["tiny-b-path"]
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "ok"
    counts = report.counts
    assert counts["baseline_only"] == 1
    assert counts["candidate_only"] == 1
    assert counts["compared"] == 2
    by_name = {row.name: row for row in report.rows}
    assert by_name["tiny-b-path"].status == "baseline-only"
    assert by_name["tiny-z-new"].status == "candidate-only"
    # One-sided rows still carry an identity (for the verdict document).
    assert by_name["tiny-z-new"].identity == artifact_identity(
        candidate["tiny-z-new"]
    )


def test_config_change_is_reported_but_not_gated(baseline):
    candidate = copy.deepcopy(baseline)
    candidate["tiny-a-star"]["scenario"]["strategy"] = "clustered"
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "ok"
    row = {r.name: r for r in report.rows}["tiny-a-star"]
    assert row.status == "config-changed"
    assert report.counts["config_changed"] == 1
    assert report.counts["compared"] == 2
    assert "identity changed" in row.checks[0].detail


def test_decoupled_rows_skip_the_round_gate(baseline):
    # Decoupled-rng artifacts have a distributional (not round-exact)
    # cross-version contract; drifted rounds must not gate.
    base = copy.deepcopy(baseline)
    candidate = copy.deepcopy(baseline)
    for payloads in (base, candidate):
        payloads["tiny-a-star"]["rng"] = "decoupled"
    candidate["tiny-a-star"]["results"]["rounds"]["mean"] += 5.0
    report = compare_artifact_sets(base, candidate)
    assert report.verdict == "ok"
    row = {r.name: r for r in report.rows}["tiny-a-star"]
    rounds_check = {c.name: c for c in row.checks}["replay-rounds"]
    assert rounds_check.outcome == "skipped"
    assert "rng=decoupled" in rounds_check.detail


def test_seed_or_trial_mismatch_skips_the_round_gate(baseline):
    candidate = copy.deepcopy(baseline)
    candidate["tiny-a-star"]["trials"]["base_seed"] = 99
    candidate["tiny-a-star"]["results"]["rounds"]["mean"] += 5.0
    report = compare_artifact_sets(baseline, candidate)
    assert report.verdict == "ok"
    row = {r.name: r for r in report.rows}["tiny-a-star"]
    rounds_check = {c.name: c for c in row.checks}["replay-rounds"]
    assert rounds_check.outcome == "skipped"
    assert "seed/trial mismatch" in rounds_check.detail


def test_noise_bands_validate():
    with pytest.raises(ConfigurationError, match="timing_tolerance"):
        NoiseBands(timing_tolerance=1.0)
    with pytest.raises(ConfigurationError, match="timing_tolerance"):
        NoiseBands(timing_tolerance=0.5)
    assert NoiseBands().timing_tolerance == DEFAULT_TIMING_TOLERANCE


# ----------------------------------------------------------------------
# artifact-set loading
# ----------------------------------------------------------------------
def test_load_artifact_set_from_directory_and_file(tmp_path, baseline):
    for payload in baseline.values():
        write_bench(payload, tmp_path)
    loaded = load_artifact_set(tmp_path)
    assert set(loaded) == set(baseline)
    single = load_artifact_set(tmp_path / "BENCH_tiny-a-star.json")
    assert set(single) == {"tiny-a-star"}


def test_load_artifact_set_rejects_bad_paths(tmp_path, baseline):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ConfigurationError, match="no BENCH_"):
        load_artifact_set(empty)
    with pytest.raises(ConfigurationError, match="neither a file nor"):
        load_artifact_set(tmp_path / "missing")
    # Duplicate scenario names across files are ambiguous.
    dup = tmp_path / "dup"
    dup.mkdir()
    write_bench(baseline["tiny-a-star"], dup)
    renamed = copy.deepcopy(baseline["tiny-a-star"])
    (dup / "BENCH_tiny-a-star-again.json").write_text(json.dumps(renamed))
    with pytest.raises(ConfigurationError, match="duplicate artifact"):
        load_artifact_set(dup)


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def test_markdown_is_deterministic(tmp_path, baseline):
    base_dir = tmp_path / "base"
    cand_dir = tmp_path / "cand"
    for directory in (base_dir, cand_dir):
        directory.mkdir()
        for payload in baseline.values():
            write_bench(payload, directory)
    first = render_markdown(build_report(base_dir, cand_dir))
    second = render_markdown(build_report(base_dir, cand_dir))
    assert first == second  # byte-identical across runs
    # ...and no volatile content that could break that promise.
    assert "seconds_total" not in first
    assert str(tmp_path) in first  # labels come from the inputs only


def test_markdown_contents(baseline):
    candidate = copy.deepcopy(baseline)
    _slow_down(candidate["tiny-c-grid"], 2.0)
    del candidate["tiny-b-path"]
    report = compare_artifact_sets(baseline, candidate)
    markdown = render_markdown(report)
    assert markdown.startswith("# Benchmark trend report")
    assert "**Verdict: REGRESSION**" in markdown
    assert "| scenario | axes |" in markdown
    assert "**REGRESSION**" in markdown
    assert "baseline-only" in markdown
    # Per-trial series are present, so details carry percentiles and
    # polyline sparklines.
    assert "p50" in markdown and "p90" in markdown
    assert "<svg xmlns=" in markdown and "<polyline" in markdown
    assert "baseline gray, candidate blue" in markdown
    ok_report = compare_artifact_sets(baseline, copy.deepcopy(baseline))
    assert "**Verdict: OK**" in render_markdown(ok_report)


def test_markdown_for_legacy_artifacts_without_per_trial(baseline):
    # Pre-PR-7 artifacts carry summary stats only; the trend plot falls
    # back to min/mean/max range bars instead of sparklines.
    legacy = copy.deepcopy(baseline)
    for payload in legacy.values():
        del payload["results"]["per_trial"]
    report = compare_artifact_sets(legacy, copy.deepcopy(legacy))
    markdown = render_markdown(report)
    assert report.verdict == "ok"
    assert "<circle" in markdown and "<polyline" not in markdown
    assert "p50" not in markdown


def test_markdown_config_changed_section(baseline):
    candidate = copy.deepcopy(baseline)
    candidate["tiny-a-star"]["scenario"]["strategy"] = "clustered"
    markdown = render_markdown(compare_artifact_sets(baseline, candidate))
    assert "## Config-changed (stale baselines, not gated)" in markdown
    assert "re-commit the baseline" in markdown


# ----------------------------------------------------------------------
# the verdict document
# ----------------------------------------------------------------------
def test_verdict_payload_and_dump(tmp_path, baseline):
    candidate = copy.deepcopy(baseline)
    _slow_down(candidate["tiny-c-grid"], 2.0)
    report = compare_artifact_sets(baseline, candidate)
    payload = verdict_payload(report)
    assert payload["schema"] == "repro-report/1"
    assert payload["verdict"] == "regression"
    assert payload["policy"]["rounds"] == "exact-under-replay"
    assert payload["policy"]["timing_tolerance"] == DEFAULT_TIMING_TOLERANCE
    assert payload["counts"]["regressions"] == 1
    by_name = {entry["name"]: entry for entry in payload["scenarios"]}
    grid = by_name["tiny-c-grid"]
    assert grid["status"] == "regression"
    assert grid["timing_ratio"] == pytest.approx(2.0)
    outcomes = {c["check"]: c["outcome"] for c in grid["checks"]}
    assert outcomes == {"replay-rounds": "pass", "wall-clock": "fail"}
    path = dump_verdict(report, tmp_path / "verdict.json")
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(payload)
    )


# ----------------------------------------------------------------------
# CLI: exit codes, error lines, end-to-end
# ----------------------------------------------------------------------
def _write_set(payloads, directory):
    directory.mkdir(parents=True, exist_ok=True)
    for payload in payloads.values():
        write_bench(payload, directory)
    return directory


def test_cli_report_ok_writes_outputs(tmp_path, capsys, baseline):
    base_dir = _write_set(baseline, tmp_path / "base")
    cand_dir = _write_set(copy.deepcopy(baseline), tmp_path / "cand")
    out = tmp_path / "nested" / "trend.md"
    verdict = tmp_path / "verdict.json"
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(out), "--verdict-json", str(verdict),
        "--fail-on-regression",
    ]) == 0
    captured = capsys.readouterr()
    assert "verdict: ok (3 compared, 0 regression(s)" in captured.err
    assert out.read_text().startswith("# Benchmark trend report")
    assert json.loads(verdict.read_text())["verdict"] == "ok"


def test_cli_report_prints_to_stdout_by_default(tmp_path, capsys, baseline):
    base_dir = _write_set(baseline, tmp_path / "base")
    assert main(["report", str(base_dir), "--against", str(base_dir)]) == 0
    assert "# Benchmark trend report" in capsys.readouterr().out


def test_cli_report_regression_exit_codes(tmp_path, capsys, baseline):
    base_dir = _write_set(baseline, tmp_path / "base")
    candidate = copy.deepcopy(baseline)
    _slow_down(candidate["tiny-c-grid"], 2.0)
    cand_dir = _write_set(candidate, tmp_path / "cand")
    verdict = tmp_path / "verdict.json"
    # Without --fail-on-regression the report is informational (exit 0).
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(tmp_path / "trend.md"),
    ]) == 0
    assert "verdict: regression" in capsys.readouterr().err
    # With it, exit 2 -- and the evidence files are still written first.
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(tmp_path / "trend2.md"), "--verdict-json", str(verdict),
        "--fail-on-regression",
    ]) == 2
    assert (tmp_path / "trend2.md").exists()
    assert json.loads(verdict.read_text())["verdict"] == "regression"


def test_cli_report_custom_tolerance_and_no_normalize(
    tmp_path, capsys, baseline
):
    base_dir = _write_set(baseline, tmp_path / "base")
    candidate = copy.deepcopy(baseline)
    for payload in candidate.values():
        _slow_down(payload, 2.0)
    cand_dir = _write_set(candidate, tmp_path / "cand")
    # Normalized (default): whole-set slowdown reads as machine speed.
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(tmp_path / "a.md"), "--fail-on-regression",
    ]) == 0
    # Raw ratios: the same candidate fails.
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(tmp_path / "b.md"), "--no-normalize-timing",
        "--fail-on-regression",
    ]) == 2
    # A generous tolerance waves it through again.
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(tmp_path / "c.md"), "--no-normalize-timing",
        "--timing-tolerance", "3.0", "--fail-on-regression",
    ]) == 0
    capsys.readouterr()


def test_cli_report_errors_are_one_line(tmp_path, capsys, baseline):
    base_dir = _write_set(baseline, tmp_path / "base")
    # Malformed candidate JSON: exit 1, one-line error, no traceback.
    bad_dir = tmp_path / "bad"
    bad_dir.mkdir()
    (bad_dir / "BENCH_broken.json").write_text("{not json")
    assert main(["report", str(bad_dir), "--against", str(base_dir)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "BENCH_broken.json" in err
    assert "Traceback" not in err
    # Missing candidate directory.
    assert main([
        "report", str(tmp_path / "nope"), "--against", str(base_dir)
    ]) == 1
    assert capsys.readouterr().err.startswith("error:")
    # Bad tolerance value (policy validation surfaces the same way).
    assert main([
        "report", str(base_dir), "--against", str(base_dir),
        "--timing-tolerance", "0.5",
    ]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_cli_validate_errors_are_one_line(tmp_path, capsys):
    # A file that is not UTF-8 at all (UnicodeDecodeError path).
    binary = tmp_path / "BENCH_binary.json"
    binary.write_bytes(b"\xff\xfe\x00broken")
    assert main(["validate", str(binary)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err
    # A directory where a file is expected (OSError path).
    assert main(["validate", str(tmp_path)]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_cli_end_to_end_run_report_verdict(tmp_path, capsys):
    # The seeded e2e smoke: run a real scenario twice (same seeds),
    # then gate the re-run against the first -- replay determinism must
    # yield an ok verdict with the round gate passing, not skipping.
    base_dir = tmp_path / "base"
    cand_dir = tmp_path / "cand"
    for out in (base_dir, cand_dir):
        assert main([
            "run", "broadcast-star-n32", "--trials", "2",
            "--skip-reference", "--out", str(out),
        ]) == 0
    verdict_path = tmp_path / "verdict.json"
    assert main([
        "report", str(cand_dir), "--against", str(base_dir),
        "--out", str(tmp_path / "trend.md"),
        "--verdict-json", str(verdict_path), "--fail-on-regression",
    ]) == 0
    capsys.readouterr()
    verdict = json.loads(verdict_path.read_text())
    assert verdict["verdict"] == "ok"
    (scenario,) = verdict["scenarios"]
    checks = {c["check"]: c["outcome"] for c in scenario["checks"]}
    assert checks["replay-rounds"] == "pass"
