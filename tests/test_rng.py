"""Property tests and golden pins for the decoupled counter rng.

``repro.simulation.rng`` is load-bearing in a way ordinary library code
is not: every decoupled benchmark artifact's numbers are a pure function
of these hashes, so *any* change to the mixing constants or key
derivation silently invalidates every committed ``BENCH_*-decoupled``
artifact.  The golden-value tests below pin the draw function bit-for-
bit; the property tests pin the contracts the engine relies on
(statelessness, cross-process determinism, stream independence,
uniformity).
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from stats import chi_squared_uniform, ks_2samp
from repro.errors import ConfigurationError
from repro.simulation.rng import (
    GOLDEN_GAMMA,
    RNG_MODES,
    DecoupledStreams,
    _mix64_int,
    bits_to_unit,
    mix64,
)


class TestMix64:
    def test_golden_values(self):
        # Pinned outputs of the splitmix64 finalizer.  If these change,
        # every committed decoupled benchmark artifact is invalidated.
        assert _mix64_int(0) == 0x0
        assert _mix64_int(1) == 0x5692161D100B05E5
        assert _mix64_int(GOLDEN_GAMMA) == 0xE220A8397B1DCDAF

    def test_vectorized_matches_scalar(self):
        words = np.array(
            [0, 1, 2, 12345, 2**63, 2**64 - 1, GOLDEN_GAMMA],
            dtype=np.uint64,
        )
        mixed = mix64(words)
        for word, out in zip(words.tolist(), mixed.tolist()):
            assert out == _mix64_int(int(word))

    def test_bijection_no_collisions_on_sample(self):
        words = np.arange(100_000, dtype=np.uint64)
        assert np.unique(mix64(words)).size == words.size

    def test_avalanche_single_bit_flip(self):
        # Flipping one input bit should flip ~32 output bits.
        base = mix64(np.array([1234567], dtype=np.uint64))[0]
        flipped_bits = []
        for bit in range(64):
            other = mix64(
                np.array([1234567 ^ (1 << bit)], dtype=np.uint64)
            )[0]
            flipped_bits.append(bin(int(base) ^ int(other)).count("1"))
        mean = sum(flipped_bits) / len(flipped_bits)
        assert 24.0 < mean < 40.0


class TestBitsToUnit:
    def test_range_and_endpoints(self):
        bits = np.array([0, 2**64 - 1, 1 << 11], dtype=np.uint64)
        units = bits_to_unit(bits)
        assert units[0] == 0.0
        assert units[1] == (2**53 - 1) * 2.0**-53 < 1.0
        assert units[2] == 2.0**-53


class TestDecoupledStreams:
    def test_golden_uniforms(self):
        # The full (trials=2, n=4) draw matrices of three rounds, pinned
        # to the last ulp.  These values define the decoupled mode.
        streams = DecoupledStreams([0, 1], num_nodes=4)
        expected_round0 = np.array([
            [0.15815688545757012, 0.6191525895482561,
             0.564147401538553, 0.5232343667711707],
            [0.8312489656618005, 0.3348275514550224,
             0.19883222234584297, 0.14804321792011044],
        ])
        expected_round5 = np.array([
            [0.0049330649056927856, 0.7357380814785017,
             0.36763275053956457, 0.7962038423965269],
            [0.54646272661866, 0.717181904998084,
             0.9367422019502148, 0.814740466913291],
        ])
        np.testing.assert_array_equal(streams.uniforms(0), expected_round0)
        np.testing.assert_array_equal(streams.uniforms(5), expected_round5)

    def test_stateless_any_order(self):
        streams = DecoupledStreams([7, 8, 9], num_nodes=32)
        forward = [streams.uniforms(r).copy() for r in range(6)]
        # Re-reading in reverse, with repeats, changes nothing.
        for r in (5, 2, 2, 0, 4, 1, 3, 0):
            np.testing.assert_array_equal(streams.uniforms(r), forward[r])

    def test_same_seed_same_draws(self):
        a = DecoupledStreams([42], num_nodes=100)
        b = DecoupledStreams([42], num_nodes=100)
        for r in (0, 3, 1000):
            np.testing.assert_array_equal(a.uniforms(r), b.uniforms(r))

    def test_trial_rows_are_independent_of_batch(self):
        # Trial draws depend only on the trial's own seed: slicing a
        # batch differently cannot change any row.  This is what makes
        # process-sharding of seed batches sound.
        batch = DecoupledStreams([10, 11, 12, 13], num_nodes=16)
        solo = DecoupledStreams([12], num_nodes=16)
        np.testing.assert_array_equal(
            batch.uniforms(9)[2], solo.uniforms(9)[0]
        )

    def test_cross_process_determinism(self):
        code = (
            "import numpy as np;"
            "from repro.simulation.rng import DecoupledStreams;"
            "s = DecoupledStreams([123, 456], num_nodes=8);"
            "print(repr(s.uniforms(17).tolist()))"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(hash_seed)},
            ).stdout
            for hash_seed in ("0", "1")
        }
        assert len(outputs) == 1
        local = DecoupledStreams([123, 456], num_nodes=8)
        assert eval(outputs.pop()) == local.uniforms(17).tolist()

    def test_bits_buffer_is_reused(self):
        # Documented sharp edge: bits() returns an internal buffer.
        streams = DecoupledStreams([5], num_nodes=8)
        first = streams.bits(0)
        kept = first.copy()
        second = streams.bits(1)
        assert second is first  # same buffer object
        assert not np.array_equal(kept, second)

    def test_mantissas_match_uniforms(self):
        streams = DecoupledStreams([3], num_nodes=64)
        mantissas = streams.mantissas(4).copy()
        np.testing.assert_array_equal(
            mantissas.astype(np.float64) * 2.0**-53, streams.uniforms(4)
        )

    def test_none_seed_draws_fresh_entropy(self):
        a = DecoupledStreams([None], num_nodes=4)
        b = DecoupledStreams([None], num_nodes=4)
        assert not np.array_equal(a.uniforms(0), b.uniforms(0))

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="num_nodes"):
            DecoupledStreams([1], num_nodes=0)
        with pytest.raises(ConfigurationError, match="round_number"):
            DecoupledStreams([1], num_nodes=4).bits(-1)

    def test_rng_modes_constant(self):
        assert RNG_MODES == ("replay", "decoupled")


class TestDrawQuality:
    """Statistical smoke checks on the counter hash (fixed seeds)."""

    def test_marginal_uniformity(self):
        streams = DecoupledStreams(list(range(4)), num_nodes=4096)
        draws = np.concatenate(
            [streams.uniforms(r).ravel() for r in range(4)]
        )
        _, p_value = chi_squared_uniform(draws, bins=64)
        assert p_value > 0.001

    def test_round_streams_independent(self):
        # Draws of adjacent rounds must be uncorrelated: a counter rng
        # whose round keys alias would show up here immediately.
        streams = DecoupledStreams([99], num_nodes=50_000)
        a = streams.uniforms(7).ravel().copy()
        b = streams.uniforms(8).ravel()
        correlation = float(np.corrcoef(a, b)[0, 1])
        assert abs(correlation) < 0.02

    def test_node_streams_independent(self):
        # Adjacent node columns across many rounds.
        streams = DecoupledStreams([1234], num_nodes=2)
        a = np.array([streams.uniforms(r)[0, 0] for r in range(4000)])
        b = np.array([streams.uniforms(r)[0, 1] for r in range(4000)])
        correlation = float(np.corrcoef(a, b)[0, 1])
        assert abs(correlation) < 0.05

    def test_trial_streams_distributionally_identical(self):
        # Different seeds, same distribution (KS on two trials' draws).
        streams = DecoupledStreams([555, 777], num_nodes=5000)
        draws = streams.uniforms(0)
        _, p_value = ks_2samp(draws[0], draws[1])
        assert p_value > 0.001
