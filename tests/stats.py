"""Pure-NumPy two-sample and goodness-of-fit tests for the rng layer.

The decoupled counter rng (``repro.simulation.rng``) does not reproduce
the reference runner's draws, so replay-vs-decoupled agreement cannot be
asserted round-exactly -- it is a *distributional* claim: both policies
must induce the same completion-round distribution on every scenario.
This module supplies the machinery that ``tests/test_rng_decoupled.py``
uses to pin that claim: a two-sample Kolmogorov-Smirnov test (sensitive
to any CDF difference), a Mann-Whitney U test (sensitive to location
shifts, the failure mode a biased draw stream would actually produce),
and a chi-squared uniformity test for the raw draws themselves.

Everything here is deterministic, dependency-free (no SciPy in the
image) and uses standard asymptotic approximations:

- KS p-values via the Kolmogorov distribution's series
  ``Q(λ) = 2 Σ (-1)^{k-1} exp(-2 k² λ²)`` with the Stephens small-sample
  correction ``λ = (√m + 0.12 + 0.11/√m) d`` (m the effective sample
  size) -- accurate to ~1e-3 for the sample sizes used here.
- Mann-Whitney p-values via the normal approximation with tie
  correction and a 0.5 continuity correction, two-sided.
- Chi-squared p-values via the Wilson-Hilferty cube-root normal
  approximation.

The test layer pre-registers its alpha (see ``tests/test_rng_decoupled.py``)
and uses fixed seeds, so a failure is a real regression, not noise.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "ks_2samp",
    "mann_whitney_u",
    "chi_squared_uniform",
    "normal_sf",
]


def _as_float_array(values: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size < 1:
        raise ValueError(f"{name} must be non-empty")
    return array


def normal_sf(z: float) -> float:
    """Standard-normal survival function ``P(Z > z)`` via ``erfc``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _kolmogorov_sf(statistic: float, size_x: int, size_y: int) -> float:
    """Two-sided KS p-value: Kolmogorov SF with Stephens' correction."""
    effective = size_x * size_y / (size_x + size_y)
    root = math.sqrt(effective)
    lam = (root + 0.12 + 0.11 / root) * statistic
    if lam <= 0.0:
        return 1.0
    # The alternating series converges in a handful of terms for any
    # lambda that matters; 100 is a safe hard cap.
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-10:
            break
    return min(1.0, max(0.0, total))


def ks_2samp(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Two-sample Kolmogorov-Smirnov test.

    Returns ``(statistic, p_value)``: the max absolute difference
    between the two empirical CDFs and the (approximate, two-sided)
    probability of a difference at least that large under the null that
    both samples share one distribution.
    """
    x = np.sort(_as_float_array(x, "x"))
    y = np.sort(_as_float_array(y, "y"))
    # Evaluate both empirical CDFs on the pooled support.
    pooled = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, pooled, side="right") / x.size
    cdf_y = np.searchsorted(y, pooled, side="right") / y.size
    statistic = float(np.max(np.abs(cdf_x - cdf_y)))
    return statistic, _kolmogorov_sf(statistic, x.size, y.size)


def _average_ranks(pooled: np.ndarray) -> np.ndarray:
    """Ranks 1..N with ties sharing their average rank (midranks)."""
    order = np.argsort(pooled, kind="mergesort")
    ranks = np.empty(pooled.size, dtype=np.float64)
    sorted_values = pooled[order]
    index = 0
    while index < pooled.size:
        stop = index
        while (
            stop + 1 < pooled.size
            and sorted_values[stop + 1] == sorted_values[index]
        ):
            stop += 1
        # Positions index..stop (0-based) hold one tie group; their
        # 1-based ranks average to (index + stop) / 2 + 1.
        ranks[order[index : stop + 1]] = (index + stop) / 2.0 + 1.0
        index = stop + 1
    return ranks


def mann_whitney_u(
    x: Sequence[float], y: Sequence[float]
) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test (normal approximation).

    Returns ``(U, p_value)`` where ``U`` is the statistic of the first
    sample.  Uses midranks, the tie-corrected variance, and a 0.5
    continuity correction -- the standard large-sample recipe, fine for
    the dozens-to-hundreds of trials the rng tests draw.
    """
    x = _as_float_array(x, "x")
    y = _as_float_array(y, "y")
    size_x, size_y = x.size, y.size
    pooled = np.concatenate([x, y])
    ranks = _average_ranks(pooled)
    rank_sum_x = float(ranks[:size_x].sum())
    u_x = rank_sum_x - size_x * (size_x + 1) / 2.0
    mean = size_x * size_y / 2.0
    total = size_x + size_y
    # Tie correction: subtract sum(t³ - t) over tie groups.
    _, counts = np.unique(pooled, return_counts=True)
    tie_term = float(((counts.astype(np.float64) ** 3) - counts).sum())
    variance = (
        size_x * size_y / 12.0
    ) * ((total + 1) - tie_term / (total * (total - 1)))
    if variance <= 0.0:
        # Every pooled value identical: the samples agree trivially.
        return u_x, 1.0
    z = (abs(u_x - mean) - 0.5) / math.sqrt(variance)
    return u_x, min(1.0, 2.0 * normal_sf(max(0.0, z)))


def chi_squared_uniform(
    values: Sequence[float], bins: int = 16
) -> tuple[float, float]:
    """Chi-squared goodness-of-fit of ``values`` against U[0, 1).

    Returns ``(statistic, p_value)`` with the p-value from the
    Wilson-Hilferty approximation.  Used to smoke-check the counter
    rng's marginal uniformity with a pre-registered bin count.
    """
    values = _as_float_array(values, "values")
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    if values.min() < 0.0 or values.max() >= 1.0:
        raise ValueError("values must lie in [0, 1)")
    observed = np.bincount(
        np.minimum((values * bins).astype(np.int64), bins - 1),
        minlength=bins,
    )
    expected = values.size / bins
    statistic = float(((observed - expected) ** 2 / expected).sum())
    dof = bins - 1
    # Wilson-Hilferty: (X/k)^(1/3) is ~ normal with mean 1 - 2/(9k) and
    # variance 2/(9k).
    scale = 2.0 / (9.0 * dof)
    z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - scale)) / math.sqrt(scale)
    return statistic, normal_sf(z)
