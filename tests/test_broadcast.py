"""Broadcasting via Compete on paths, stars, grids and random graphs."""

import pytest

from repro import broadcast, topology
from repro.errors import ConfigurationError, GraphError
from repro.network.graph import Graph


def test_acceptance_path_64_fixed_seed():
    """The acceptance-criterion run: a 64-node path with a fixed seed."""
    graph = topology.path_graph(64)
    result = broadcast(graph, source=0, seed=7)
    assert result.success
    assert result.num_informed == 64
    assert result.rounds > 0
    assert result.rounds <= result.parameters.total_rounds
    assert result.metrics.rounds == result.rounds
    assert result.metrics.transmissions > 0


def test_reception_times_are_plausible_on_the_path():
    graph = topology.path_graph(64)
    result = broadcast(graph, source=0, seed=7)
    times = result.reception_rounds
    assert times[0] == -1  # the source knew its own message
    # Every node needs at least distance(source, v) rounds to hear it.
    for node in graph.nodes():
        if node == 0:
            continue
        assert times[node] is not None
        assert times[node] + 1 >= node  # distance from source on the path


def test_star_and_grid():
    assert broadcast(topology.star_graph(16), source=0, seed=1).success
    assert broadcast(topology.grid_graph(6, 6), source=0, seed=2).success


def test_conservative_model_without_spontaneous_transmissions():
    graph = topology.path_graph(32)
    result = broadcast(graph, source=0, seed=3, spontaneous=False)
    assert result.success
    # Only informed nodes ever transmit in the conservative model: a node
    # that adopted the message in round t can transmit in rounds t+1
    # onward only, so the transmission count is bounded by the exact
    # number of informed-(node, round) pairs.  Spontaneous mode, where
    # every node transmits dummies from round 0, violates this bound.
    times = result.reception_rounds
    assert all(t is not None for t in times.values())
    informed_node_rounds = sum(result.rounds - t - 1 for t in times.values())
    assert result.metrics.transmissions <= informed_node_rounds


def test_broadcast_is_deterministic_given_seed():
    graph = topology.path_graph(40)
    first = broadcast(graph, source=0, seed=9)
    second = broadcast(graph, source=0, seed=9)
    assert first.rounds == second.rounds
    assert dict(first.reception_rounds) == dict(second.reception_rounds)


def test_monte_carlo_success_rate():
    """20/20 seeded runs succeed across two topology families."""
    path = topology.path_graph(48)
    gnp = topology.connected_gnp_graph(48, 0.12, seed=5)
    successes = sum(broadcast(path, source=0, seed=s).success for s in range(10))
    successes += sum(broadcast(gnp, source=0, seed=s).success for s in range(10))
    assert successes == 20


def test_single_node_broadcast():
    result = broadcast(topology.path_graph(1), source=0, seed=0)
    assert result.success
    assert result.rounds == 0
    assert result.num_informed == 1


def test_invalid_source_rejected():
    with pytest.raises(ConfigurationError):
        broadcast(topology.path_graph(4), source=99, seed=0)


def test_disconnected_graph_rejected():
    graph = Graph(nodes=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
    with pytest.raises(GraphError):
        broadcast(graph, source=0, seed=0)
