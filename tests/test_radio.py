"""Collision semantics of the radio model (Section 1.1)."""

import pytest

from repro import topology
from repro.errors import ProtocolError
from repro.network.messages import COLLISION, SILENCE, Message
from repro.network.protocol import Action
from repro.network.radio import CollisionModel, RadioNetwork


def _msg(value, source):
    return Message(value=value, source=source)


def test_single_transmitter_is_received():
    network = RadioNetwork(topology.star_graph(3))
    outcome = network.run_round({1: Action.transmit(_msg(7, 1))})
    assert outcome.received[0] == _msg(7, 1)
    assert outcome.received[2] is SILENCE
    assert outcome.received[3] is SILENCE


def test_two_transmitters_collide_silently_without_detection():
    network = RadioNetwork(topology.star_graph(3))
    outcome = network.run_round(
        {1: Action.transmit(_msg(1, 1)), 2: Action.transmit(_msg(2, 2))}
    )
    # The centre hears two neighbours: an undetected collision is SILENCE.
    assert outcome.received[0] is SILENCE
    # Leaf 3's only neighbour is the silent centre.
    assert outcome.received[3] is SILENCE


def test_collision_detection_variant_reports_collision():
    network = RadioNetwork(
        topology.star_graph(3), collision_model=CollisionModel.WITH_DETECTION
    )
    outcome = network.run_round(
        {1: Action.transmit(_msg(1, 1)), 2: Action.transmit(_msg(2, 2))}
    )
    assert outcome.received[0] is COLLISION
    assert outcome.received[3] is SILENCE


def test_transmitter_is_half_duplex():
    graph = topology.path_graph(2)
    network = RadioNetwork(graph)
    outcome = network.run_round(
        {0: Action.transmit(_msg(1, 0)), 1: Action.transmit(_msg(2, 1))}
    )
    # Both transmitted, so neither heard the other.
    assert outcome.received[0] is SILENCE
    assert outcome.received[1] is SILENCE


def test_unknown_node_rejected():
    network = RadioNetwork(topology.path_graph(2))
    with pytest.raises(ProtocolError):
        network.run_round({99: Action.listen()})


def test_metrics_count_the_true_collision_idle_split():
    network = RadioNetwork(topology.star_graph(3))
    network.run_round(
        {1: Action.transmit(_msg(1, 1)), 2: Action.transmit(_msg(2, 2))}
    )
    metrics = network.metrics
    assert metrics.rounds == 1
    assert metrics.transmissions == 2
    assert metrics.receptions == 0
    # Centre saw a (silent) collision; leaf 3 idled.
    assert metrics.collisions == 1
    assert metrics.idle_listens == 1


def test_metrics_copy_and_diff():
    network = RadioNetwork(topology.path_graph(3))
    network.run_round({0: Action.transmit(_msg(1, 0))})
    before = network.metrics.copy()
    network.run_round({0: Action.transmit(_msg(1, 0))})
    delta = network.metrics.diff(before)
    assert delta.rounds == 1
    assert delta.transmissions == 1
    assert before.rounds == 1  # snapshot unaffected
