"""The benchmark subsystem: registry, bench runs, persistence, CLI, docs."""

import copy
import doctest
import json
import pathlib

import pytest

from repro.dynamics import DynamicsSpec, EdgeChurn
from repro.errors import ConfigurationError
from repro.experiments import (
    DEFAULT_REGISTRY,
    SCHEMA_VERSION,
    Scenario,
    ScenarioRegistry,
    bench_filename,
    get_scenario,
    iter_scenarios,
    load_bench,
    run_benchmark,
    validate_bench,
    write_bench,
)
from repro.experiments.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

TINY = Scenario(
    name="tiny-broadcast",
    description="test-only broadcast on a small star",
    family="star",
    topology_args={"num_leaves": 7},
    algorithm="broadcast",
    trials=3,
    seed=5,
)


# ----------------------------------------------------------------------
# scenarios and registry
# ----------------------------------------------------------------------
def test_default_registry_is_populated_and_buildable():
    assert len(DEFAULT_REGISTRY) >= 15
    smoke = iter_scenarios(tag="smoke")
    assert smoke, "registry must carry smoke-tagged scenarios for CI"
    for scenario in smoke:
        graph = scenario.build_graph()
        assert graph.is_connected()
        assert graph.num_nodes <= 128, "smoke scenarios must stay small"
    # Every registered scenario must at least name a known family and
    # algorithm (enforced at construction, so iteration suffices).
    names = [scenario.name for scenario in DEFAULT_REGISTRY]
    assert len(names) == len(set(names))
    assert "broadcast-grid-n256" in DEFAULT_REGISTRY


def test_scenario_validation():
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", family="nope",
                 topology_args={}, algorithm="broadcast")
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", family="path",
                 topology_args={}, algorithm="teleport")
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", family="path",
                 topology_args={}, algorithm="broadcast",
                 collision_model="psychic")
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", family="path",
                 topology_args={}, algorithm="broadcast", trials=0)
    # Random families must pin the topology seed, or the persisted
    # scenario block could not rebuild the same graph.
    with pytest.raises(ConfigurationError, match="seed"):
        Scenario(name="x", description="", family="gnp",
                 topology_args={"num_nodes": 16, "edge_probability": 0.2},
                 algorithm="broadcast")
    # The strategy must be a registered Compete strategy name.
    with pytest.raises(ConfigurationError, match="strategy"):
        Scenario(name="x", description="", family="path",
                 topology_args={"num_nodes": 8}, algorithm="broadcast",
                 strategy="quantum")


def test_strategy_round_trips_and_comparison_pairs_exist():
    clustered = Scenario(
        name="x-clustered", description="", family="path",
        topology_args={"num_nodes": 8}, algorithm="broadcast",
        strategy="clustered",
    )
    rebuilt = Scenario.from_dict(clustered.to_dict())
    assert rebuilt.strategy == "clustered"
    # Dicts without a strategy key (pre-strategy artifacts) default to
    # the skeleton.
    legacy = clustered.to_dict()
    del legacy["strategy"]
    assert Scenario.from_dict(legacy).strategy == "skeleton"
    # The built-in sweep carries skeleton-vs-clustered twins.
    for name in ("broadcast-path-n256", "broadcast-grid-n256",
                 "broadcast-gnp-n256"):
        assert get_scenario(name).strategy == "skeleton"
        assert get_scenario(f"{name}-clustered").strategy == "clustered"
    smoke_clustered = [
        s for s in iter_scenarios(tag="smoke") if s.strategy == "clustered"
    ]
    assert smoke_clustered, "CI smoke sweep must cover the clustered strategy"
    # The registered-but-previously-unswept random families are swept.
    swept_families = {s.family for s in DEFAULT_REGISTRY}
    assert {"geometric", "clustered"} <= swept_families


def test_scenario_round_trips_through_dict():
    rebuilt = Scenario.from_dict(TINY.to_dict())
    assert rebuilt == TINY
    assert json.loads(json.dumps(TINY.to_dict())) == TINY.to_dict()


def test_engine_field_round_trips_and_validates():
    sparse = Scenario(
        name="x-sparse", description="", family="path",
        topology_args={"num_nodes": 8}, algorithm="broadcast",
        engine="sparse",
    )
    assert Scenario.from_dict(sparse.to_dict()).engine == "sparse"
    # Dicts without an engine key (pre-PR-4 artifacts) default to auto.
    legacy = sparse.to_dict()
    del legacy["engine"]
    assert Scenario.from_dict(legacy).engine == "auto"
    with pytest.raises(ConfigurationError, match="engine"):
        Scenario(name="x", description="", family="path",
                 topology_args={"num_nodes": 8}, algorithm="broadcast",
                 engine="gpu")


def test_rng_field_round_trips_and_validates():
    decoupled = Scenario(
        name="x-decoupled", description="", family="path",
        topology_args={"num_nodes": 8}, algorithm="broadcast",
        rng="decoupled",
    )
    assert Scenario.from_dict(decoupled.to_dict()).rng == "decoupled"
    assert decoupled.execution_config().rng == "decoupled"
    # The per-call override wins without mutating the scenario.
    assert decoupled.execution_config(rng="replay").rng == "replay"
    # Dicts without an rng key (pre-PR-6 artifacts) default to replay.
    legacy = decoupled.to_dict()
    del legacy["rng"]
    assert Scenario.from_dict(legacy).rng == "replay"
    with pytest.raises(ConfigurationError, match="rng"):
        Scenario(name="x", description="", family="path",
                 topology_args={"num_nodes": 8}, algorithm="broadcast",
                 rng="quantum")


def test_dynamics_field_round_trips_and_validates():
    churn = Scenario(
        name="x-churn", description="", family="path",
        topology_args={"num_nodes": 8}, algorithm="broadcast",
        dynamics={"fault_seed": 7,
                  "models": [{"kind": "edge-churn",
                              "p_down": 0.1, "p_up": 0.4}]},
    )
    # The mapping form coerces to a DynamicsSpec and threads into the
    # execution config, so the engines see the fault axis.
    assert churn.dynamics == DynamicsSpec(
        fault_seed=7, models=(EdgeChurn(p_down=0.1, p_up=0.4),)
    )
    assert churn.execution_config().dynamics == churn.dynamics
    rebuilt = Scenario.from_dict(churn.to_dict())
    assert rebuilt.dynamics == churn.dynamics
    # Static scenarios serialise without the key (pre-PR-10 artifacts
    # and their identities stay byte-identical).
    assert "dynamics" not in TINY.to_dict()
    assert Scenario.from_dict(TINY.to_dict()).dynamics is None
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", family="path",
                 topology_args={"num_nodes": 8}, algorithm="broadcast",
                 dynamics={"fault_seed": 7, "models": []})


def test_dynamics_scenarios_are_registered():
    # The robustness sweep: static/churn twins at two grid sizes, a
    # sparse-engine crash scenario, and a jammed election -- with one
    # fast churn row tagged smoke so CI's smoke-benchmark and perf-gate
    # steps exercise the fault path on every push.
    for name in ("broadcast-grid-n64-churn", "broadcast-grid-n256-churn",
                 "broadcast-gnp-n1024-crash", "election-grid-n256-jam"):
        scenario = get_scenario(name)
        assert scenario.dynamics is not None
        assert "dynamics" in scenario.tags
    smoke_dynamics = [
        s for s in iter_scenarios(tag="smoke") if s.dynamics is not None
    ]
    assert smoke_dynamics, "CI smoke sweep must cover fault injection"
    # Each churn scenario shares every axis but dynamics with its static
    # twin, so the pair isolates the degradation caused by churn.
    for faulty, static in (("broadcast-grid-n64-churn", "broadcast-grid-n64"),
                           ("broadcast-grid-n256-churn",
                            "broadcast-grid-n256")):
        twin = get_scenario(faulty)
        base = get_scenario(static)
        assert twin.topology_args == base.topology_args
        assert twin.seed == base.seed
        assert twin.algorithm == base.algorithm


def test_decoupled_regime_scenarios_are_registered():
    # The n ~ 10^5 sweep the decoupled rng opens, plus the n=16384
    # replay/decoupled twin used to pin the speedup headline.
    for name in ("broadcast-grid-n16384-decoupled",
                 "broadcast-grid-n1e5", "broadcast-gnp-n1e5"):
        scenario = get_scenario(name)
        assert scenario.rng == "decoupled"
        assert "decoupled" in scenario.tags
        assert "smoke" not in scenario.tags
    twin = get_scenario("broadcast-grid-n16384-decoupled")
    replay_twin = get_scenario("broadcast-grid-n16384")
    assert twin.topology_args == replay_twin.topology_args
    assert twin.trials == replay_twin.trials
    assert twin.seed == replay_twin.seed


def test_sparse_regime_scenarios_are_registered():
    # The n >= 4096 sweep the sparse engine opens: path/grid/tree/gnp at
    # both scales, auto engine (the density heuristic selects sparse),
    # never tagged smoke (CI runs them via the dedicated sparse step).
    names = [
        "broadcast-path-n4096", "broadcast-grid-n4096",
        "broadcast-tree-n4095", "broadcast-gnp-n4096",
        "broadcast-path-n16384", "broadcast-grid-n16384",
        "broadcast-tree-n16383", "broadcast-gnp-n16384",
    ]
    for name in names:
        scenario = get_scenario(name)
        assert scenario.engine == "auto"
        assert "sparse" in scenario.tags
        assert "smoke" not in scenario.tags
        assert ("xlarge" in scenario.tags) == ("n16384" in name
                                               or "n16383" in name)


def test_registry_rejects_duplicates_and_reports_unknown():
    registry = ScenarioRegistry()
    registry.register(TINY)
    with pytest.raises(ConfigurationError):
        registry.register(TINY)
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        registry.get("missing")
    assert registry.select(match="tiny") == [TINY]
    assert registry.select(tag="absent") == []


# ----------------------------------------------------------------------
# bench runs and persistence
# ----------------------------------------------------------------------
def test_run_benchmark_emits_schema_valid_payload(tmp_path):
    payload = run_benchmark(TINY, reference_trials=2)
    validate_bench(payload)  # must not raise
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["trials"] == {
        "vectorized": 3, "per_batch": 3, "seed_batches": 1,
        "reference": 2, "base_seed": 5,
    }
    assert payload["scenario"]["strategy"] == "skeleton"
    assert payload["scenario"]["engine"] == "auto"
    # n=8 resolves to the dense kernel; the payload records the fact.
    assert payload["engine"] == {"requested": "auto", "selected": "dense"}
    assert payload["topology"]["num_nodes"] == 8
    assert payload["agreement"]["round_exact"] is True
    assert payload["timing"]["speedup"] is not None
    path = write_bench(payload, tmp_path)
    assert path.name == "BENCH_tiny-broadcast.json"
    assert load_bench(path) == json.loads(path.read_text())


def test_run_benchmark_leader_election(tmp_path):
    scenario = Scenario(
        name="tiny-election",
        description="test-only election",
        family="complete",
        topology_args={"num_nodes": 8},
        algorithm="leader-election",
        spontaneous=False,
        trials=2,
        seed=3,
    )
    payload = run_benchmark(scenario, reference_trials=1)
    validate_bench(payload)
    assert "attempts" in payload["results"]
    write_bench(payload, tmp_path)


def test_run_benchmark_dynamics_payload(tmp_path):
    churn = Scenario(
        name="tiny-churn",
        description="test-only broadcast under edge churn",
        family="star",
        topology_args={"num_leaves": 7},
        algorithm="broadcast",
        trials=3,
        seed=5,
        dynamics=DynamicsSpec(
            fault_seed=7, models=(EdgeChurn(p_down=0.1, p_up=0.4),)
        ),
    )
    payload = run_benchmark(churn, reference_trials=1)
    validate_bench(payload)
    # The fault environment is persisted twice -- scenario block and
    # top-level mirror -- and the two must agree.
    assert payload["dynamics"] == churn.dynamics.describe()
    assert payload["scenario"]["dynamics"] == payload["dynamics"]
    # Faults are trial-independent environment randomness, so the
    # reference runner still agrees round-exact with the engine.
    assert payload["agreement"]["round_exact"] is True
    for key in ("delivery_rate", "suppressed_links", "crashed_nodes",
                "jammed_listens"):
        assert key in payload["results"]
        assert len(payload["results"]["per_trial"][key]) == 3
    assert payload["results"]["suppressed_links"]["mean"] > 0
    assert payload["results"]["crashed_nodes"]["max"] == 0  # churn only
    path = write_bench(payload, tmp_path)
    assert load_bench(path) == json.loads(path.read_text())

    # Corruptions the validator must reject.
    broken = copy.deepcopy(payload)
    broken["dynamics"]["fault_seed"] = 9
    with pytest.raises(ConfigurationError, match="dynamics"):
        validate_bench(broken)
    broken = copy.deepcopy(payload)
    del broken["dynamics"]
    with pytest.raises(ConfigurationError, match="dynamics"):
        validate_bench(broken)
    broken = copy.deepcopy(payload)
    broken["scenario"]["dynamics"]["models"][0]["kind"] = "meteor-strike"
    with pytest.raises(ConfigurationError, match="kind"):
        validate_bench(broken)
    broken = copy.deepcopy(payload)
    del broken["results"]["delivery_rate"]
    with pytest.raises(ConfigurationError, match="delivery_rate"):
        validate_bench(broken)


def test_vectorized_backend_is_faster_at_scale():
    # The acceptance bar for the artifact is >= 5x at n >= 256; the test
    # asserts a conservative 2x so CI jitter cannot flake it.
    payload = run_benchmark(
        get_scenario("broadcast-grid-n256"), trials=4, reference_trials=1
    )
    validate_bench(payload)
    assert payload["topology"]["num_nodes"] >= 256
    assert payload["timing"]["speedup"] > 2.0


def test_run_benchmark_seed_batches():
    payload = run_benchmark(TINY, seed_batches=3, include_reference=False)
    validate_bench(payload)
    assert payload["trials"]["vectorized"] == 9  # 3 trials x 3 batches
    assert payload["trials"]["per_batch"] == 3
    assert payload["trials"]["seed_batches"] == 3
    # The batches are consecutive seeds: the first batch alone must
    # reproduce the single-batch run exactly.
    single = run_benchmark(TINY, include_reference=False)
    assert single["results"]["rounds"]["min"] >= payload["results"]["rounds"]["min"]
    assert single["results"]["rounds"]["max"] <= payload["results"]["rounds"]["max"]
    with pytest.raises(ConfigurationError, match="seed_batches"):
        run_benchmark(TINY, seed_batches=0)


def test_run_benchmark_clustered_strategy_agrees_with_reference():
    scenario = Scenario(
        name="tiny-clustered",
        description="clustered strategy on a small grid",
        family="grid",
        topology_args={"rows": 4, "cols": 4},
        algorithm="broadcast",
        strategy="clustered",
        trials=3,
        seed=11,
    )
    # The reference pass re-verifies round-exact agreement on clustered
    # runs; a disagreement would raise SimulationError here.
    payload = run_benchmark(scenario, reference_trials=2)
    validate_bench(payload)
    assert payload["scenario"]["strategy"] == "clustered"
    assert payload["agreement"]["round_exact"] is True
    assert payload["results"]["success_rate"] == 1.0


def test_run_benchmark_forced_sparse_engine_agrees_with_reference():
    # Forcing the CSR kernel on a small scenario keeps the reference
    # agreement pass in the loop -- a sparse-engine drift would raise
    # SimulationError here -- and the payload records the override.
    payload = run_benchmark(
        TINY, reference_trials=2, config=TINY.execution_config(engine="sparse")
    )
    validate_bench(payload)
    assert payload["engine"] == {"requested": "sparse", "selected": "sparse"}
    assert payload["agreement"]["round_exact"] is True
    with pytest.raises(ConfigurationError, match="engine"):
        run_benchmark(TINY, config=TINY.execution_config(engine="gpu"))


def test_run_benchmark_without_reference():
    payload = run_benchmark(TINY, include_reference=False)
    validate_bench(payload)
    assert payload["trials"]["reference"] == 0
    assert payload["timing"]["speedup"] is None
    assert payload["agreement"] == {"checked_trials": 0, "round_exact": False}


def test_validate_bench_rejects_corrupted_payloads():
    payload = run_benchmark(TINY, include_reference=False)

    def corrupt(mutate):
        broken = copy.deepcopy(payload)
        mutate(broken)
        with pytest.raises(ConfigurationError, match="bench payload invalid"):
            validate_bench(broken)

    corrupt(lambda p: p.pop("schema"))
    corrupt(lambda p: p.update(schema="repro-bench/0"))
    corrupt(lambda p: p["topology"].update(num_nodes=0))
    corrupt(lambda p: p["results"].update(success_rate=1.5))
    corrupt(lambda p: p["results"]["rounds"].pop("mean"))
    corrupt(lambda p: p["results"]["rounds"].update(mean=-10_000))
    corrupt(lambda p: p["timing"].update(speedup=3.0))  # no reference trials
    corrupt(lambda p: p["agreement"].update(checked_trials=99))
    corrupt(lambda p: p["agreement"].update(round_exact=True))  # unchecked
    corrupt(lambda p: p["environment"].pop("numpy"))
    corrupt(lambda p: p["scenario"].update(strategy=7))  # not a string
    corrupt(lambda p: p["trials"].pop("seed_batches"))  # per_batch orphaned
    corrupt(lambda p: p["trials"].update(seed_batches=2))  # 2*3 != 3
    corrupt(lambda p: p["scenario"].update(engine="gpu"))
    corrupt(lambda p: p["engine"].pop("selected"))
    corrupt(lambda p: p["engine"].update(requested="gpu"))
    corrupt(lambda p: p["engine"].update(selected="auto"))  # never concrete
    # A non-auto request must match what ran.
    corrupt(lambda p: p["engine"].update(requested="sparse",
                                         selected="dense"))
    # The per-trial series block must stay derivable: every series one
    # entry per trial, summary stats recomputable from the raw values.
    corrupt(lambda p: p["results"]["per_trial"]["success"].pop())
    corrupt(lambda p: p["results"]["per_trial"]["success"].__setitem__(0, 1))
    corrupt(lambda p: p["results"]["per_trial"]["rounds"].pop())
    corrupt(lambda p: p["results"]["per_trial"].pop("rounds"))
    corrupt(lambda p: p["results"]["per_trial"]["rounds"].__setitem__(0, "3"))
    corrupt(lambda p: p["results"]["rounds"].update(
        mean=p["results"]["rounds"]["mean"] + 1))
    corrupt(lambda p: p["results"].update(
        success_rate=1.0 - p["results"]["success_rate"]))

    # Pre-PR-3 artifacts (no strategy, no batch fields) still validate.
    legacy = copy.deepcopy(payload)
    legacy["scenario"].pop("strategy")
    legacy["trials"].pop("per_batch")
    legacy["trials"].pop("seed_batches")
    validate_bench(legacy)

    # Pre-PR-4 artifacts additionally omit the engine block (they all
    # ran the dense engine, the only one that existed).
    legacy.pop("engine")
    legacy["scenario"].pop("engine")
    validate_bench(legacy)

    # Pre-PR-7 artifacts omit the raw per-trial series block.
    legacy["results"].pop("per_trial")
    validate_bench(legacy)


def test_run_benchmark_rejects_bad_trial_overrides():
    with pytest.raises(ConfigurationError, match="trials must be >= 1"):
        run_benchmark(TINY, trials=0)
    with pytest.raises(ConfigurationError, match="reference_trials"):
        run_benchmark(TINY, reference_trials=-1)
    with pytest.raises(ConfigurationError, match="workers"):
        run_benchmark(TINY, workers=0)


def test_run_benchmark_records_rng_and_workers():
    payload = run_benchmark(TINY, include_reference=False)
    validate_bench(payload)
    assert payload["rng"] == "replay"
    assert payload["workers"] == 1
    assert payload["scenario"]["rng"] == "replay"


def test_run_benchmark_workers_is_deterministic():
    # The sharded run must produce the identical payload body: results,
    # trial bookkeeping, everything except timing and the recorded
    # worker count.
    solo = run_benchmark(TINY, include_reference=False, workers=1)
    sharded = run_benchmark(TINY, include_reference=False, workers=2)
    validate_bench(sharded)
    assert sharded["workers"] == 2
    assert sharded["results"] == solo["results"]
    assert sharded["trials"] == solo["trials"]
    # More workers than trials: the extra processes are not spawned.
    overshard = run_benchmark(TINY, include_reference=False, workers=99)
    assert overshard["workers"] == TINY.trials
    assert overshard["results"] == solo["results"]


def test_run_benchmark_decoupled_rng():
    config = TINY.execution_config(rng="decoupled")
    payload = run_benchmark(TINY, config=config)
    validate_bench(payload)
    assert payload["rng"] == "decoupled"
    # The reference pass still ran (for the timing headline) but parity
    # was not checked: decoupled draws differ from replayed streams by
    # design, so the artifact must not claim round-exact agreement.
    assert payload["trials"]["reference"] > 0
    assert payload["timing"]["speedup"] is not None
    assert payload["agreement"] == {"checked_trials": 0, "round_exact": False}
    # Decoupled results are seed-stable: same config, same numbers.
    again = run_benchmark(TINY, config=config, include_reference=False)
    assert again["results"] == payload["results"]
    # ...and differ from replay's (different draw policy).
    replay = run_benchmark(TINY, include_reference=False)
    assert replay["results"] != payload["results"]


def test_validate_bench_rejects_bad_rng_and_workers_fields():
    payload = run_benchmark(TINY, include_reference=False)

    def corrupt(mutate):
        broken = copy.deepcopy(payload)
        mutate(broken)
        with pytest.raises(ConfigurationError, match="bench payload invalid"):
            validate_bench(broken)

    corrupt(lambda p: p.update(rng="quantum"))
    corrupt(lambda p: p.update(workers=0))
    corrupt(lambda p: p["scenario"].update(rng="quantum"))

    # A decoupled artifact claiming checked round-exact agreement lies.
    decoupled = run_benchmark(
        TINY, config=TINY.execution_config(rng="decoupled")
    )
    corrupted = copy.deepcopy(decoupled)
    corrupted["agreement"].update(checked_trials=1, round_exact=True)
    corrupted["trials"].update(reference=1)
    with pytest.raises(ConfigurationError, match="decoupled"):
        validate_bench(corrupted)

    # Pre-PR-6 artifacts (no rng/workers fields) still validate.
    legacy = copy.deepcopy(payload)
    legacy.pop("rng")
    legacy.pop("workers")
    legacy["scenario"].pop("rng")
    validate_bench(legacy)


def test_bench_filename_sanitises():
    assert bench_filename("a b/c") == "BENCH_a-b-c.json"
    with pytest.raises(ConfigurationError):
        bench_filename("///")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "broadcast-grid-n256" in out
    assert "scenarios)" in out

    assert main(["list", "--tag", "smoke", "--json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    assert listed and all("smoke" in item["tags"] for item in listed)

    # The plain-text listing honours --tag too: only the fault-injection
    # sweep, each row showing the tag, closed by the count line.
    assert main(["list", "--tag", "dynamics"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert lines[-1] == "(4 scenarios)"
    rows = lines[:-1]
    assert {row.split()[0] for row in rows} == {
        "broadcast-grid-n64-churn", "broadcast-grid-n256-churn",
        "broadcast-gnp-n1024-crash", "election-grid-n256-jam",
    }
    assert all("dynamics" in row for row in rows)
    assert "broadcast-grid-n256 " not in out  # static twins filtered out


def test_cli_run_and_validate(tmp_path, capsys):
    out_dir = str(tmp_path / "bench")
    assert main([
        "run", "broadcast-star-n32",
        "--trials", "2", "--reference-trials", "1", "--out", out_dir,
    ]) == 0
    artifact = tmp_path / "bench" / "BENCH_broadcast-star-n32.json"
    assert artifact.exists()
    capsys.readouterr()
    assert main(["validate", str(artifact)]) == 0
    assert "valid" in capsys.readouterr().out


def test_cli_seeds_flag(tmp_path, capsys):
    out_dir = str(tmp_path / "bench")
    assert main([
        "run", "broadcast-path-n32",
        "--trials", "2", "--seeds", "2", "--skip-reference", "--out", out_dir,
    ]) == 0
    artifact = tmp_path / "bench" / "BENCH_broadcast-path-n32.json"
    payload = json.loads(artifact.read_text())
    assert payload["trials"]["vectorized"] == 4
    assert payload["trials"]["seed_batches"] == 2


def test_cli_engine_flag(tmp_path, capsys):
    out_dir = str(tmp_path / "bench")
    assert main([
        "run", "broadcast-path-n32",
        "--trials", "2", "--engine", "sparse", "--reference-trials", "1",
        "--out", out_dir,
    ]) == 0
    assert "sparse engine" in capsys.readouterr().out
    payload = json.loads(
        (tmp_path / "bench" / "BENCH_broadcast-path-n32.json").read_text()
    )
    assert payload["engine"] == {"requested": "sparse", "selected": "sparse"}


def test_cli_rng_and_workers_flags(tmp_path, capsys):
    out_dir = str(tmp_path / "bench")
    assert main([
        "run", "broadcast-grid-n64",
        "--trials", "2", "--rng", "decoupled", "--workers", "2",
        "--skip-reference", "--out", out_dir,
    ]) == 0
    payload = json.loads(
        (tmp_path / "bench" / "BENCH_broadcast-grid-n64.json").read_text()
    )
    assert payload["rng"] == "decoupled"
    assert payload["workers"] == 2
    assert payload["agreement"]["checked_trials"] == 0


def test_cli_sweep_with_limit(tmp_path, capsys):
    out_dir = str(tmp_path / "sweep")
    assert main([
        "sweep", "--tag", "smoke", "--limit", "2",
        "--trials", "2", "--skip-reference", "--out", out_dir,
    ]) == 0
    artifacts = list((tmp_path / "sweep").glob("BENCH_*.json"))
    assert len(artifacts) == 2
    for artifact in artifacts:
        validate_bench(json.loads(artifact.read_text()))


def test_cli_errors_return_nonzero(tmp_path, capsys):
    assert main(["run", "no-such-scenario", "--out", str(tmp_path)]) == 1
    assert "unknown scenario" in capsys.readouterr().err
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{}")
    assert main(["validate", str(bad)]) == 1


def test_cli_report_against_missing_dir_is_one_line_error(tmp_path, capsys):
    # `report --against <missing>` must exit 1 with an `error:` line,
    # never a traceback (the audit contract for every CLI failure).
    assert main([
        "report", str(tmp_path / "candidate-missing"),
        "--against", str(tmp_path / "baseline-missing"),
    ]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_cli_report_verdict_json_creates_parent_dirs(tmp_path, capsys):
    out_dir = tmp_path / "bench"
    assert main([
        "run", "broadcast-path-n32",
        "--trials", "2", "--skip-reference", "--out", str(out_dir),
    ]) == 0
    capsys.readouterr()
    verdict = tmp_path / "deep" / "nested" / "verdict.json"
    # Self-comparison keeps the verdict deterministic; the point here is
    # that the nested --verdict-json parent directories get created.
    assert main([
        "report", str(out_dir), "--against", str(out_dir),
        "--verdict-json", str(verdict),
    ]) == 0
    assert verdict.exists()
    assert json.loads(verdict.read_text())["verdict"] == "ok"


# ----------------------------------------------------------------------
# prepared resolutions, batch merging, worker-pool failure handling
# ----------------------------------------------------------------------
def test_prepare_scenario_reuse_is_byte_identical():
    from repro.experiments import prepare_scenario

    prepared = prepare_scenario(TINY)
    fresh = run_benchmark(TINY, include_reference=False)
    reused = run_benchmark(TINY, include_reference=False, prepared=prepared)
    assert reused["results"] == fresh["results"]
    assert reused["trials"] == fresh["trials"]
    assert reused["scenario"] == fresh["scenario"]
    # And again: a prepared resolution is reusable, not consumed.
    assert run_benchmark(
        TINY, include_reference=False, prepared=prepared
    )["results"] == fresh["results"]


def test_prepare_scenario_rejects_mismatched_reuse():
    from repro.experiments import prepare_scenario

    other = Scenario(
        name="tiny-other", description="different topology",
        family="star", topology_args={"num_leaves": 9},
        algorithm="broadcast", trials=2, seed=5,
    )
    prepared = prepare_scenario(other)
    with pytest.raises(ConfigurationError, match="prepared resolution"):
        run_benchmark(TINY, prepared=prepared)


def test_merge_benchmark_batches_matches_one_shot():
    from repro.experiments import merge_benchmark_batches

    one_shot = run_benchmark(TINY, trials=4, include_reference=False)
    batches = [
        run_benchmark(
            TINY, trials=2, seed=TINY.seed + offset, include_reference=False
        )
        for offset in (0, 2)
    ]
    merged = merge_benchmark_batches(batches)
    validate_bench(merged)
    assert merged["results"] == one_shot["results"]
    assert merged["trials"]["vectorized"] == 4
    assert merged["trials"]["seed_batches"] == 2
    assert merged["trials"]["per_batch"] == 2


def test_merge_benchmark_batches_rejects_bad_input():
    from repro.experiments import merge_benchmark_batches

    with pytest.raises(ConfigurationError):
        merge_benchmark_batches([])
    a = run_benchmark(TINY, trials=2, include_reference=False)
    gap = run_benchmark(
        TINY, trials=2, seed=TINY.seed + 99, include_reference=False
    )
    with pytest.raises(ConfigurationError, match="contiguous"):
        merge_benchmark_batches([a, gap])


def _crashing_worker(scenario, parameters, chunk, config):
    import os

    os._exit(13)  # simulate an OOM-killed / segfaulted worker


def _interrupted_worker(scenario, parameters, chunk, config):
    raise KeyboardInterrupt


def test_sharded_worker_crash_names_seed_range(monkeypatch):
    from repro.errors import SimulationError
    from repro.experiments import bench

    monkeypatch.setattr(bench, "_worker_run_trials", _crashing_worker)
    with pytest.raises(SimulationError) as excinfo:
        run_benchmark(TINY, include_reference=False, workers=2)
    message = str(excinfo.value)
    assert TINY.name in message
    assert "seeds" in message
    assert excinfo.value.__cause__ is not None  # chained BrokenProcessPool


def test_sharded_keyboard_interrupt_shuts_pool_down(monkeypatch):
    from repro.experiments import bench

    monkeypatch.setattr(bench, "_worker_run_trials", _interrupted_worker)
    with pytest.raises(KeyboardInterrupt):
        run_benchmark(TINY, include_reference=False, workers=2)


# ----------------------------------------------------------------------
# documentation
# ----------------------------------------------------------------------
def test_experiments_guide_doctests():
    guide = REPO_ROOT / "docs" / "EXPERIMENTS.md"
    assert guide.exists(), "docs/EXPERIMENTS.md missing"
    results = doctest.testfile(str(guide), module_relative=False, verbose=False)
    assert results.attempted > 0, "the guide must contain doctest examples"
    assert results.failed == 0


def test_scenarios_module_doctests():
    import doctest as doctest_module

    import repro.experiments.scenarios as scenarios_module
    import repro.topology as topology_module

    for module in (scenarios_module, topology_module):
        results = doctest_module.testmod(module, verbose=False)
        assert results.failed == 0, f"doctest failure in {module.__name__}"
