"""The classical repeated-Decay broadcast baseline (registry plugin).

Pins the baseline's semantics (no spontaneous transmissions, uniform
Decay schedule only), its three-way backend/kernel equivalence, the
batch API, and its integration through the registry, scenarios, the
benchmark runner and the CLI.
"""

import json

import pytest

from repro import topology
from repro.api import DEFAULT_ALGORITHMS, ExecutionConfig
from repro.core.decay_broadcast import (
    DecayBroadcastResult,
    decay_broadcast,
    decay_broadcast_batch,
)
from repro.errors import ConfigurationError
from repro.experiments import get_scenario, run_benchmark, validate_bench
from repro.experiments.cli import main
from repro.experiments.scenarios import Scenario


def assert_same_result(a: DecayBroadcastResult, b: DecayBroadcastResult,
                       context=""):
    assert a.success == b.success, context
    assert a.source == b.source, context
    assert a.message == b.message, context
    assert a.rounds == b.rounds, context
    assert a.num_informed == b.num_informed, context
    assert dict(a.reception_rounds) == dict(b.reception_rounds), context
    assert a.metrics.as_dict() == b.metrics.as_dict(), context


@pytest.mark.parametrize("factory", [
    lambda: topology.path_graph(16),
    lambda: topology.star_graph(12),
    lambda: topology.grid_graph(5, 5),
], ids=["path", "star", "grid"])
def test_decay_broadcast_succeeds(factory):
    graph = factory()
    result = decay_broadcast(graph, source=graph.nodes()[0], seed=7)
    assert result.success
    assert result.num_informed == graph.num_nodes
    assert result.reception_rounds[graph.nodes()[0]] == -1
    assert 0 < result.rounds <= result.parameters.total_rounds
    others = [r for node, r in result.reception_rounds.items()
              if node != graph.nodes()[0]]
    assert all(r is not None and 0 <= r < result.rounds for r in others)


def test_decay_broadcast_rejects_unsupported_modes():
    graph = topology.path_graph(8)
    with pytest.raises(ConfigurationError, match="spontaneous"):
        decay_broadcast(graph, source=0, spontaneous=True)
    with pytest.raises(ConfigurationError, match="spontaneous"):
        decay_broadcast_batch(graph, source=0, seeds=[0], spontaneous=True)
    with pytest.raises(ConfigurationError, match="skeleton"):
        decay_broadcast(
            graph, source=0, config=ExecutionConfig(strategy="clustered")
        )
    with pytest.raises(ConfigurationError, match="source"):
        decay_broadcast(graph, source=99)


@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_decay_broadcast_backend_equivalence(engine):
    # Reference vs vectorized (both kernels), field by field: the
    # baseline inherits the package's round-exact guarantee.
    graph = topology.grid_graph(4, 5)
    for seed in (0, 3):
        reference = decay_broadcast(graph, source=0, seed=seed)
        fast = decay_broadcast(
            graph, source=0, seed=seed,
            config=ExecutionConfig(backend="vectorized", engine=engine),
        )
        assert_same_result(reference, fast, f"seed={seed} engine={engine}")


def test_decay_broadcast_collision_detection_model():
    graph = topology.star_graph(10)
    config = ExecutionConfig(collision_model="with-detection")
    reference = decay_broadcast(graph, source=0, seed=2, config=config)
    fast = decay_broadcast(
        graph, source=0, seed=2,
        config=config.replace(backend="vectorized"),
    )
    assert reference.success
    assert_same_result(reference, fast)


def test_decay_broadcast_batch_matches_singles():
    graph = topology.path_graph(12)
    seeds = [0, 1, 2]
    batch = decay_broadcast_batch(graph, source=0, seeds=seeds)
    assert len(batch) == len(seeds)
    for seed, batched in zip(seeds, batch):
        assert_same_result(
            decay_broadcast(graph, source=0, seed=seed), batched,
            f"seed={seed}",
        )
    assert decay_broadcast_batch(graph, source=0, seeds=[]) == []


def test_registry_dispatch_defaults_to_classical_mode():
    graph = topology.path_graph(10)
    via_registry = DEFAULT_ALGORITHMS.run("decay-broadcast", graph, seed=4)
    direct = decay_broadcast(graph, source=graph.nodes()[0], seed=4)
    assert_same_result(via_registry, direct)


def test_scenarios_and_capability_enforcement():
    scenario = get_scenario("decay-broadcast-path-n32")
    assert scenario.algorithm == "decay-broadcast"
    assert scenario.spontaneous is False
    assert "smoke" in scenario.tags and "baseline" in scenario.tags
    assert get_scenario("decay-broadcast-grid-n256").spontaneous is False
    # A decay-broadcast scenario cannot claim spontaneous transmissions:
    # the registry's capability check rejects it at construction.
    with pytest.raises(ConfigurationError, match="spontaneous"):
        Scenario(
            name="x", description="", family="path",
            topology_args={"num_nodes": 8}, algorithm="decay-broadcast",
            spontaneous=True,
        )


def test_run_benchmark_checks_agreement_for_the_baseline(tmp_path):
    scenario = Scenario(
        name="tiny-decay", description="test-only classical baseline",
        family="star", topology_args={"num_leaves": 7},
        algorithm="decay-broadcast", spontaneous=False, trials=3, seed=5,
    )
    payload = run_benchmark(scenario, reference_trials=2)
    validate_bench(payload)
    assert payload["scenario"]["algorithm"] == "decay-broadcast"
    assert payload["agreement"]["round_exact"] is True
    assert payload["results"]["success_rate"] == 1.0
    assert "attempts" not in payload["results"]


def test_cli_runs_the_baseline_and_lists_algorithms(tmp_path, capsys):
    out_dir = str(tmp_path / "bench")
    assert main([
        "run", "decay-broadcast-path-n32",
        "--trials", "2", "--reference-trials", "1", "--out", out_dir,
    ]) == 0
    artifact = tmp_path / "bench" / "BENCH_decay-broadcast-path-n32.json"
    assert artifact.exists()
    capsys.readouterr()

    assert main(["algorithms"]) == 0
    out = capsys.readouterr().out
    assert "decay-broadcast" in out and "spontaneous=unsupported" in out
    assert "(3 algorithms)" in out

    assert main(["algorithms", "--json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in listed}
    assert set(by_name) == {"broadcast", "leader-election", "decay-broadcast"}
    assert by_name["decay-broadcast"]["supports_spontaneous"] is False
    assert by_name["leader-election"]["batched"] is False
    assert by_name["broadcast"]["batched"] is True
