"""The serving layer: protocol, cache, jobs, transports.

Everything here drives the real pipeline on tiny scenarios -- the
service's core guarantee is that a served result is *byte-identical* to
an in-process :func:`run_benchmark` call, so the tests never mock the
benchmark path itself.  Async pieces run under ``asyncio.run`` inside
plain test functions (no pytest-asyncio in the dependency budget).
"""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_benchmark
from repro.experiments.scenarios import DEFAULT_REGISTRY, Scenario
from repro.service import (
    CachedResolver,
    JobManager,
    JobSpec,
    RequestError,
    ResolutionCache,
    RunOverrides,
    ServiceServer,
    error_response,
    ok_response,
    parse_request,
    resolution_key,
    serve_stdio,
)
from repro.service.loadgen import attach_service_block

TINY = Scenario(
    name="svc-tiny",
    description="test-only broadcast on a small star",
    family="star",
    topology_args={"num_leaves": 7},
    algorithm="broadcast",
    trials=3,
    seed=11,
)

#: Same execution axes as TINY, different topology: the identity digest
#: matches, so only the topology digest keeps their cache keys apart.
TINY_OTHER_TOPOLOGY = Scenario(
    name="svc-tiny-wide",
    description="same config, wider star",
    family="star",
    topology_args={"num_leaves": 15},
    algorithm="broadcast",
    trials=3,
    seed=11,
)


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
def test_parse_request_rejects_malformed():
    for payload, fragment in [
        (["not", "an", "object"], "JSON object"),
        ({"op": "frobnicate"}, "op must be one of"),
        ({"op": "status"}, "'job' id"),
        ({"op": "run"}, "scenario"),
        ({"op": "run", "scenario": "no-such"}, "not registered"),
        ({"op": "run", "scenario": "broadcast-path-n32", "trials": 0},
         "trials"),
        ({"op": "run", "scenario": "broadcast-path-n32", "trials": True},
         "boolean"),
        ({"op": "run", "scenario": "broadcast-path-n32",
          "timeout_seconds": 0}, "timeout_seconds"),
        ({"op": "sweep", "limit": 0}, "limit"),
        ({"op": "run", "scenario": "broadcast-path-n32", "id": 7},
         "id must be a string"),
    ]:
        with pytest.raises(RequestError, match=None) as excinfo:
            parse_request(payload, registry=DEFAULT_REGISTRY)
        assert fragment in str(excinfo.value)

    unknown = pytest.raises(
        RequestError, parse_request, {"op": "run", "scenario": "no-such"},
        registry=DEFAULT_REGISTRY,
    )
    assert unknown.value.code == "unknown-scenario"


def test_parse_request_accepts_registered_and_inline_scenarios():
    request = parse_request(
        {"op": "run", "scenario": "broadcast-path-n32", "trials": 2,
         "seed_batches": 2, "id": "abc"},
        registry=DEFAULT_REGISTRY,
    )
    assert request.scenario.name == "broadcast-path-n32"
    assert request.overrides == RunOverrides(trials=2, seed_batches=2)
    assert request.id == "abc"

    inline = parse_request(
        {"op": "run", "scenario": TINY.to_dict()},
        registry=DEFAULT_REGISTRY,
    )
    assert inline.scenario.name == TINY.name
    assert inline.scenario.topology_args == TINY.topology_args


def test_response_envelopes_echo_request_id():
    assert ok_response({"x": 1}, request_id="r1") == {
        "schema": "repro-service/1", "ok": True, "id": "r1", "x": 1,
    }
    failure = error_response("queue-full", "busy", request_id="r2")
    assert failure["ok"] is False
    assert failure["id"] == "r2"
    assert failure["error"]["code"] == "queue-full"
    # Unknown codes degrade to internal rather than leaking junk.
    assert error_response("nope", "x")["error"]["code"] == "internal"


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def test_resolution_key_separates_topologies_and_unifies_identities():
    key_a = resolution_key(TINY, TINY.execution_config())
    key_b = resolution_key(
        TINY_OTHER_TOPOLOGY, TINY_OTHER_TOPOLOGY.execution_config()
    )
    # Same execution identity (the prefix) -- different topology digest.
    assert key_a.split(":")[0] == key_b.split(":")[0]
    assert key_a != key_b

    # The registered cold/warm probe pair shares one key by design.
    cold = DEFAULT_REGISTRY.get("service-cold")
    warm = DEFAULT_REGISTRY.get("service-warm")
    assert resolution_key(cold, cold.execution_config()) == resolution_key(
        warm, warm.execution_config()
    )


def test_resolution_cache_lru_eviction_and_counters():
    with pytest.raises(ConfigurationError):
        ResolutionCache(0)
    cache = ResolutionCache(2)
    assert cache.get("a") is None  # miss
    cache.put("a", "A")
    cache.put("b", "B")
    assert cache.get("a") == "A"  # refreshes a as most-recent
    cache.put("c", "C")  # evicts b (the LRU entry)
    assert "b" not in cache
    assert cache.get("a") == "A" and cache.get("c") == "C"
    stats = cache.stats()
    assert stats == {
        "capacity": 2, "entries": 2, "hits": 3, "misses": 1, "evictions": 1,
    }


def test_cached_resolver_coalesces_concurrent_compiles():
    compiles = []

    def slow_compile(scenario, config):
        compiles.append(scenario.name)
        time.sleep(0.2)
        return f"prepared-{scenario.name}"

    async def scenario_pair():
        resolver = CachedResolver(compile=slow_compile)
        first, second = await asyncio.gather(
            resolver.resolve(TINY), resolver.resolve(TINY)
        )
        third = await resolver.resolve(TINY)
        return first, second, third, resolver.stats()

    first, second, third, stats = asyncio.run(scenario_pair())
    assert len(compiles) == 1, "duplicate requests must share one compile"
    assert first[0] == second[0] == third[0] == "prepared-svc-tiny"
    assert {first[1], second[1]} == {"miss", "coalesced"}
    assert third[1] == "hit"
    assert stats["compiles"] == 1 and stats["coalesced"] == 1
    assert stats["hits"] == 1


def test_cached_resolver_propagates_compile_failure_then_recovers():
    attempts = []

    def flaky_compile(scenario, config):
        attempts.append(1)
        if len(attempts) == 1:
            raise ConfigurationError("transient failure")
        return "ok"

    async def drive():
        resolver = CachedResolver(compile=flaky_compile)
        with pytest.raises(ConfigurationError, match="transient"):
            await resolver.resolve(TINY)
        prepared, outcome, _ = await resolver.resolve(TINY)
        return prepared, outcome

    prepared, outcome = asyncio.run(drive())
    assert prepared == "ok" and outcome == "miss"
    assert len(attempts) == 2, "a failed compile must not be cached"


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
def _wait_terminal(manager, job, deadline=60.0):
    async def poll():
        end = time.monotonic() + deadline
        while job.state not in ("done", "failed", "cancelled", "timeout"):
            assert time.monotonic() < end, f"job stuck in {job.state}"
            await asyncio.sleep(0.02)

    return poll()


def test_job_results_are_byte_identical_to_in_process_run():
    local = run_benchmark(TINY, include_reference=False)

    async def serve_one():
        manager = JobManager()
        manager.start()
        try:
            job = manager.submit(JobSpec(scenario=TINY))
            await _wait_terminal(manager, job)
            return job
        finally:
            await manager.close()

    job = asyncio.run(serve_one())
    assert job.state == "done"
    assert job.resolve_outcome == "miss"
    served = job.result
    assert served["results"] == local["results"]
    assert served["trials"] == local["trials"]
    assert served["scenario"] == local["scenario"]
    assert served["agreement"] == local["agreement"]


def test_job_seed_batches_stream_and_merge():
    local = run_benchmark(TINY, trials=4, include_reference=False)

    async def serve_batched():
        manager = JobManager()
        manager.start()
        try:
            job = manager.submit(JobSpec(
                scenario=TINY,
                overrides=RunOverrides(trials=2, seed_batches=2),
            ))
            await _wait_terminal(manager, job)
            return job
        finally:
            await manager.close()

    job = asyncio.run(serve_batched())
    assert job.state == "done"
    assert len(job.batches) == 2
    assert job.result["results"] == local["results"]
    assert job.result["trials"]["vectorized"] == 4


def test_job_timeout_and_cancel_paths():
    async def drive():
        manager = JobManager()
        manager.start()
        try:
            # Deadline in the past by the first batch check -> timeout
            # before any batch runs.
            timed_out = manager.submit(JobSpec(
                scenario=TINY,
                overrides=RunOverrides(
                    seed_batches=2, timeout_seconds=1e-6
                ),
            ))
            await _wait_terminal(manager, timed_out)

            # Cancel a job while its first batch is running: the flag is
            # honoured at the batch boundary.
            started = threading.Event()
            release = threading.Event()
            real_batch = manager._run_batch

            def gated_batch(spec, config, prepared, trials, seed):
                started.set()
                assert release.wait(30)
                return real_batch(spec, config, prepared, trials, seed)

            manager._run_batch = gated_batch
            running = manager.submit(JobSpec(
                scenario=TINY,
                overrides=RunOverrides(seed_batches=3),
            ))
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, started.wait, 30)
            manager.cancel(running.id)
            release.set()
            await _wait_terminal(manager, running)
            return timed_out, running
        finally:
            await manager.close()

    timed_out, cancelled = asyncio.run(drive())
    assert timed_out.state == "timeout"
    assert timed_out.batches == []
    assert "deadline" in timed_out.error
    assert cancelled.state == "cancelled"
    assert len(cancelled.batches) == 1, "running batch completes; no more start"
    assert cancelled.result is None


def test_queue_full_rejection_and_queued_cancel():
    async def drive():
        # Not started: nothing drains the queue, so capacity is exact.
        manager = JobManager(queue_size=2)
        first = manager.submit(JobSpec(scenario=TINY))
        manager.submit(JobSpec(scenario=TINY))
        with pytest.raises(RequestError) as excinfo:
            manager.submit(JobSpec(scenario=TINY))
        assert excinfo.value.code == "queue-full"

        cancelled = manager.cancel(first.id)
        assert cancelled.state == "cancelled"

        with pytest.raises(RequestError) as unknown:
            manager.get("job-999")
        assert unknown.value.code == "unknown-job"

        stats = manager.stats()
        assert stats["queue"] == {"depth": 2, "capacity": 2}
        assert stats["jobs"]["cancelled"] == 1
        await manager.close()

    asyncio.run(drive())


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
def _http(base_url, method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base_url + path, data=body, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_end_to_end_run_status_cancel_and_errors():
    local = run_benchmark(TINY, include_reference=False)

    async def drive():
        server = ServiceServer(JobManager())
        await server.start()
        url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()

        def call(method, path, payload=None):
            return _http(url, method, path, payload)

        try:
            status, health = await loop.run_in_executor(
                None, call, "GET", "/healthz"
            )
            assert (status, health["ok"]) == (200, True)

            # Inline scenario: served without registration.
            status, submitted = await loop.run_in_executor(
                None, call, "POST", "/v1/run",
                {"scenario": TINY.to_dict()},
            )
            assert status == 200
            job_id = submitted["job"]
            while True:
                status, job = await loop.run_in_executor(
                    None, call, "GET", f"/v1/jobs/{job_id}"
                )
                assert status == 200
                if job["state"] in ("done", "failed"):
                    break
                await asyncio.sleep(0.05)
            assert job["state"] == "done"
            assert job["result"]["results"] == local["results"]

            status, body = await loop.run_in_executor(
                None, call, "GET", "/v1/jobs/job-999"
            )
            assert status == 404
            assert body["error"]["code"] == "unknown-job"

            status, body = await loop.run_in_executor(
                None, call, "POST", "/v1/run", {"scenario": "no-such"}
            )
            assert status == 404
            assert body["error"]["code"] == "unknown-scenario"

            status, body = await loop.run_in_executor(
                None, call, "POST", "/v1/run", {"trials": 2}
            )
            assert status == 400
            assert body["error"]["code"] == "bad-request"

            status, stats = await loop.run_in_executor(
                None, call, "GET", "/v1/stats"
            )
            assert status == 200
            assert stats["stats"]["jobs"]["done"] >= 1
        finally:
            await server.close()

    asyncio.run(drive())


def test_http_queue_full_maps_to_429():
    async def drive():
        manager = JobManager(queue_size=1, job_workers=1)
        started = threading.Event()
        release = threading.Event()
        real_batch = manager._run_batch

        def gated_batch(spec, config, prepared, trials, seed):
            started.set()
            assert release.wait(30)
            return real_batch(spec, config, prepared, trials, seed)

        manager._run_batch = gated_batch
        server = ServiceServer(manager)
        await server.start()
        url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()

        def run_one():
            return _http(url, "POST", "/v1/run",
                         {"scenario": TINY.to_dict()})

        try:
            status, _ = await loop.run_in_executor(None, run_one)
            assert status == 200  # picked up by the (blocked) worker
            await loop.run_in_executor(None, started.wait, 30)
            status, _ = await loop.run_in_executor(None, run_one)
            assert status == 200  # sits in the queue (capacity 1)
            status, body = await loop.run_in_executor(None, run_one)
            assert status == 429
            assert body["error"]["code"] == "queue-full"
        finally:
            release.set()
            await server.close()

    asyncio.run(drive())


def test_http_stream_emits_batches_then_end():
    async def drive():
        server = ServiceServer(JobManager())
        await server.start()
        url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()

        def call(method, path, payload=None):
            return _http(url, method, path, payload)

        def read_stream(job_id):
            events = []
            with urllib.request.urlopen(
                f"{url}/v1/jobs/{job_id}/stream", timeout=60
            ) as response:
                for line in response:
                    events.append(json.loads(line))
            return events

        try:
            status, submitted = await loop.run_in_executor(
                None, call, "POST", "/v1/run",
                {"scenario": TINY.to_dict(), "trials": 1,
                 "seed_batches": 3},
            )
            assert status == 200
            events = await loop.run_in_executor(
                None, read_stream, submitted["job"]
            )
        finally:
            await server.close()
        assert [event["event"] for event in events] == [
            "batch", "batch", "batch", "end",
        ]
        assert [event.get("batch") for event in events[:3]] == [0, 1, 2]
        assert events[-1]["state"] == "done"
        assert events[-1]["result"]["trials"]["vectorized"] == 3

    asyncio.run(drive())


# ----------------------------------------------------------------------
# stdio transport
# ----------------------------------------------------------------------
def test_stdio_transport_round_trip():
    async def drive():
        server_sock, client_sock = socket.socketpair()
        server_reader, server_writer = await asyncio.open_connection(
            sock=server_sock
        )
        client_reader, client_writer = await asyncio.open_connection(
            sock=client_sock
        )
        manager = JobManager()
        session = asyncio.create_task(
            serve_stdio(manager, server_reader, server_writer)
        )

        async def call(payload):
            client_writer.write(json.dumps(payload).encode() + b"\n")
            await client_writer.drain()
            return json.loads(await client_reader.readline())

        try:
            pong = await call({"op": "ping", "id": "p1"})
            assert pong == {
                "schema": "repro-service/1", "ok": True, "id": "p1",
                "pong": True,
            }

            bad = await call({"op": "status", "id": "p2"})
            assert bad["ok"] is False and bad["id"] == "p2"
            assert bad["error"]["code"] == "bad-request"

            garbage_response = await call("not an object")
            assert garbage_response["error"]["code"] == "bad-request"

            submitted = await call({
                "op": "run", "scenario": TINY.to_dict(), "trials": 1,
                "id": "p3",
            })
            assert submitted["ok"] is True and submitted["id"] == "p3"
            while True:
                status = await call({
                    "op": "status", "job": submitted["job"],
                })
                if status["state"] in ("done", "failed"):
                    break
                await asyncio.sleep(0.05)
            assert status["state"] == "done"
            assert status["result"]["trials"]["vectorized"] == 1
        finally:
            client_writer.close()
            await asyncio.wait_for(session, timeout=10)
            await manager.close()

    asyncio.run(drive())


# ----------------------------------------------------------------------
# loadgen helpers
# ----------------------------------------------------------------------
def test_attach_service_block_keeps_payload_schema_valid():
    from repro.experiments import validate_bench

    payload = run_benchmark(TINY, include_reference=False)
    status = {
        "job": "job-1",
        "result": payload,
        "resolve": {"outcome": "hit", "seconds": 1e-5},
        "wall_seconds": 0.5,
    }
    stats = {
        "queue": {"depth": 0, "capacity": 64},
        "cache": {"hits": 1, "misses": 1, "evictions": 0, "entries": 1,
                  "compiles": 1},
    }
    extended = attach_service_block(status, stats)
    validate_bench(extended)
    assert extended["service"]["resolve"]["outcome"] == "hit"
    assert extended["service"]["cache"]["hits"] == 1
    # The original payload is not mutated.
    assert "service" not in payload
