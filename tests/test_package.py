"""Package-level contracts: imports, exports, and the documented quickstarts."""

import doctest
import importlib
import pathlib

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_public_imports():
    from repro import (  # noqa: F401
        broadcast,
        compete,
        elect_leader,
        Compete,
        CompeteParameters,
        CompeteResult,
        BroadcastResult,
        LeaderElectionResult,
        ProtocolRunner,
        RunResult,
        StopReason,
        RadioNetwork,
        CollisionModel,
        Graph,
    )


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ names missing symbol {name}"


def test_package_docstring_quickstart():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_core_module_doctests():
    # Note: attribute access like ``repro.core.compete`` resolves to the
    # convenience *function* re-exported by the package, so fetch the
    # actual modules via importlib.
    for name in (
        "repro.core.compete",
        "repro.core.broadcast",
        "repro.core.leader_election",
        "repro.dynamics",
        "repro.dynamics.spec",
    ):
        module = importlib.import_module(name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"doctest failure in {name}"


def test_readme_quickstart():
    readme = REPO_ROOT / "README.md"
    assert readme.exists(), "README.md missing"
    results = doctest.testfile(
        str(readme), module_relative=False, verbose=False
    )
    assert results.attempted > 0, "README.md contains no doctest examples"
    assert results.failed == 0
