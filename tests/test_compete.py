"""The Compete primitive: saturation, ordering, Decay's Lemma 3.1 bound."""

import numpy as np
import pytest

from repro import Compete, compete, topology
from repro.errors import ConfigurationError
from repro.network.messages import Message
from repro.network.radio import RadioNetwork
from repro.schedules.decay import (
    decay_success_probability_lower_bound,
    simulate_decay_round,
)


def test_highest_candidate_wins_on_star():
    result = compete(topology.star_graph(8), {1: 10, 2: 20, 3: 15}, seed=0)
    assert result.success
    assert result.winner == Message(value=20, source=2)
    assert result.num_candidates == 3
    assert all(best == result.winner for best in result.final_messages.values())


def test_saturation_on_path():
    graph = topology.path_graph(32)
    result = compete(graph, {0: 5, 31: 9}, seed=1)
    assert result.success
    assert result.winner.value == 9
    # Adoption times grow with distance from the winning candidate.
    times = result.reception_rounds
    assert times[31] == -1  # knew it from the start
    assert all(times[node] is not None for node in graph.nodes())
    assert times[0] > times[16] > times[30] >= 0


def test_equal_values_tie_broken_by_source():
    result = compete(topology.star_graph(4), {1: 7, 2: 7}, seed=2)
    assert result.success
    # Message ordering makes one of the two a strict winner.
    assert result.winner in (Message(value=7, source=1), Message(value=7, source=2))
    assert all(best == result.winner for best in result.final_messages.values())


def test_no_candidates_charges_full_schedule_and_fails():
    primitive = Compete(topology.star_graph(4))
    result = primitive.run({}, seed=0)
    assert not result.success
    assert result.winner is None
    assert result.num_candidates == 0
    assert result.rounds == primitive.parameters.total_rounds
    assert result.informed_fraction == 0.0


def test_spontaneous_dummies_cannot_win():
    graph = topology.path_graph(16)
    result = compete(graph, {0: 3}, seed=4, spontaneous=True)
    assert result.success
    assert result.winner == Message(value=3, source=0)
    # Dummy messages rank strictly below the real candidate.
    assert all(best == result.winner for best in result.final_messages.values())


def test_everyone_a_candidate_with_same_message_needs_no_rounds():
    graph = topology.star_graph(3)
    shared = Message(value=1, source="origin")
    result = compete(graph, {node: shared for node in graph.nodes()}, seed=0)
    assert result.success
    assert result.rounds == 0


def test_single_node_network_trivially_succeeds():
    graph = topology.path_graph(1)
    result = compete(graph, {0: 1}, seed=0)
    assert result.success
    assert result.rounds == 0


def test_candidate_validation():
    graph = topology.path_graph(4)
    with pytest.raises(ConfigurationError):
        compete(graph, {99: 1}, seed=0)
    with pytest.raises(ConfigurationError):
        compete(graph, {0: "not-a-message"}, seed=0)
    with pytest.raises(ConfigurationError):
        compete(graph, [0, 1], seed=0)


def test_parameter_graph_mismatch_rejected():
    from repro import CompeteParameters

    params = CompeteParameters.derive(8, 3)
    with pytest.raises(ConfigurationError):
        Compete(topology.path_graph(4), parameters=params)


def test_compete_is_deterministic_given_seed():
    graph = topology.connected_gnp_graph(24, 0.2, seed=11)
    first = compete(graph, {0: 1, 5: 2}, seed=33)
    second = compete(graph, {0: 1, 5: 2}, seed=33)
    assert first.rounds == second.rounds
    assert dict(first.reception_rounds) == dict(second.reception_rounds)


def test_monte_carlo_success_on_random_graphs():
    """Compete saturates on seeded random graphs: 30/30 across families."""
    successes = 0
    trials = 0
    for graph_seed in range(5):
        graph = topology.connected_gnp_graph(32, 0.15, seed=graph_seed)
        for run_seed in range(3):
            trials += 1
            result = compete(graph, {0: 1, 7: 2}, seed=run_seed)
            successes += result.success
    for graph_seed in range(5):
        graph = topology.random_tree_graph(32, seed=graph_seed)
        for run_seed in range(3):
            trials += 1
            result = compete(graph, {0: 1, 7: 2}, seed=run_seed)
            successes += result.success
    assert successes == trials == 30


def test_decay_empirical_rate_dominates_lemma_31_bound():
    """Monte-Carlo check of Lemma 3.1 on a star: the centre's reception
    rate over one Decay round dominates the analytic lower bound."""
    rng = np.random.default_rng(2017)
    trials = 300
    for contenders in (1, 2, 4, 8, 16):
        graph = topology.star_graph(contenders)
        hits = 0
        for _ in range(trials):
            network = RadioNetwork(graph)
            participants = {
                leaf: Message(value=leaf, source=leaf)
                for leaf in range(1, contenders + 1)
            }
            heard = simulate_decay_round(network, participants, rng, listeners=[0])
            hits += 0 in heard
        empirical = hits / trials
        bound = decay_success_probability_lower_bound(contenders)
        # Allow Monte-Carlo slack below the bound (3-sigma-ish).
        slack = 3.0 * (bound * (1 - bound) / trials) ** 0.5
        assert empirical >= bound - slack, (
            f"k={contenders}: empirical {empirical:.3f} < bound {bound:.3f}"
        )
