"""CompeteParameters validation and derivation."""

import math

import pytest

from repro import CompeteParameters, topology
from repro.core.parameters import DEFAULT_MARGIN
from repro.errors import ConfigurationError


def test_derive_matches_formula():
    params = CompeteParameters.derive(64, 63)
    assert params.decay_steps == 6  # ceil(log2 64)
    assert params.num_decay_rounds == math.ceil(DEFAULT_MARGIN * (63 + 6))
    assert params.total_rounds == params.decay_steps * params.num_decay_rounds


def test_from_graph_computes_diameter():
    params = CompeteParameters.from_graph(topology.path_graph(10))
    assert params.num_nodes == 10
    assert params.diameter == 9


def test_from_graph_accepts_precomputed_diameter():
    params = CompeteParameters.from_graph(topology.path_graph(10), diameter=9)
    assert params.diameter == 9


def test_single_node_network():
    params = CompeteParameters.derive(1, 0)
    assert params.decay_steps == 1
    assert params.total_rounds >= 1


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(num_nodes=0, diameter=0, decay_steps=1, num_decay_rounds=1),
        dict(num_nodes=4, diameter=-1, decay_steps=2, num_decay_rounds=1),
        dict(num_nodes=4, diameter=0, decay_steps=2, num_decay_rounds=1),
        dict(num_nodes=1, diameter=3, decay_steps=1, num_decay_rounds=1),
        dict(num_nodes=4, diameter=5, decay_steps=2, num_decay_rounds=1),
        dict(num_nodes=4, diameter=2, decay_steps=0, num_decay_rounds=1),
        dict(num_nodes=4, diameter=2, decay_steps=2, num_decay_rounds=0),
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        CompeteParameters(**kwargs)


def test_invalid_margin_rejected():
    with pytest.raises(ConfigurationError):
        CompeteParameters.derive(8, 3, margin=0.0)


def test_parameters_are_frozen():
    params = CompeteParameters.derive(8, 3)
    with pytest.raises(Exception):
        params.num_nodes = 99
