"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError``, ``KeyError`` from misuse, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for invalid graph construction or queries.

    Examples include adding a self-loop, querying a node that is not in
    the graph, or running an algorithm that requires connectivity on a
    disconnected graph.
    """


class ProtocolError(ReproError):
    """Raised when a protocol violates the radio-model contract.

    Typical causes: a node returning an action for a round it was not
    asked about, transmitting a non-message payload, or mutating state
    that belongs to the simulator.
    """


class SimulationError(ReproError):
    """Raised when a simulation cannot make progress.

    The most common cause is exhausting the round budget before the
    protocol reports completion; the error message records how many
    rounds were executed and which nodes had not terminated.
    """


class ConfigurationError(ReproError):
    """Raised for invalid algorithm or experiment parameters.

    Parameters are validated eagerly (at construction time) so that a
    long simulation never fails halfway through because of a bad value.
    """
