"""Persistence and validation of benchmark results (``BENCH_*.json``).

Every benchmark run emits one JSON document whose layout is pinned by
:data:`SCHEMA_VERSION` and enforced by :func:`validate_bench`.  The
schema is deliberately validated by hand (no external JSON-schema
dependency) with error messages that name the offending path, so a
malformed artifact fails loudly in CI rather than silently skewing a
trend line.  The full field-by-field description lives in
``docs/EXPERIMENTS.md``; the invariants encoded here and there must stay
in sync.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from typing import Any, Mapping, Optional, Union

from repro.dynamics import MODEL_KINDS
from repro.errors import ConfigurationError
from repro.simulation.rng import RNG_MODES
from repro.simulation.sparse import ENGINE_KINDS
from repro.simulation.vectorized import ENGINES

#: Identifies the layout of a ``BENCH_*.json`` document.  Bump only with
#: a migration note in ``docs/EXPERIMENTS.md``.
SCHEMA_VERSION = "repro-bench/1"

#: Statistic blocks summarising a per-trial series.
_SERIES_KEYS = ("mean", "min", "max")


def bench_filename(scenario_name: str) -> str:
    """The canonical artifact name for a scenario's benchmark result."""
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "-", scenario_name).strip("-")
    if not stem:
        raise ConfigurationError(
            f"scenario name {scenario_name!r} leaves no filename characters"
        )
    return f"BENCH_{stem}.json"


def write_bench(
    payload: Mapping[str, Any], directory: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Validate ``payload`` and write it to ``directory``.

    Returns the written path.  The directory is created if needed; the
    filename is derived from the payload's scenario name, so re-running a
    scenario overwrites its previous artifact.
    """
    validate_bench(payload)
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / bench_filename(payload["scenario"]["name"])
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Union[str, pathlib.Path]) -> dict[str, Any]:
    """Load and validate one ``BENCH_*.json`` document."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        # UnicodeDecodeError is a ValueError, not an OSError: a bench
        # file with broken encoding must produce the same one-line CLI
        # error as any other unreadable file, never a traceback.
        raise ConfigurationError(
            f"cannot read bench file {path}: {error}"
        ) from None
    validate_bench(payload)
    return payload


def validate_bench(payload: Mapping[str, Any]) -> None:
    """Check ``payload`` against the documented ``repro-bench/1`` schema.

    Raises
    ------
    ConfigurationError
        Naming the first violated field.
    """
    _expect(isinstance(payload, Mapping), "payload", "must be a JSON object")
    _field(payload, "schema", str)
    _expect(
        payload["schema"] == SCHEMA_VERSION,
        "schema",
        f"must be {SCHEMA_VERSION!r}, got {payload['schema']!r}",
    )
    _field(payload, "created_at", str)

    scenario = _field(payload, "scenario", Mapping)
    _field(scenario, "name", str, path="scenario.name")
    _field(scenario, "family", str, path="scenario.family")
    _field(scenario, "algorithm", str, path="scenario.algorithm")
    _field(scenario, "collision_model", str, path="scenario.collision_model")
    _field(scenario, "spontaneous", bool, path="scenario.spontaneous")
    # Added in PR 3; optional so pre-existing repro-bench/1 artifacts
    # (implicitly skeleton, single-batch) keep validating.
    if "strategy" in scenario:
        _field(scenario, "strategy", str, path="scenario.strategy")
    # Added in PR 4 alongside the top-level engine block.
    if "engine" in scenario:
        _field(scenario, "engine", str, path="scenario.engine")
        _expect(
            scenario["engine"] in ENGINES,
            "scenario.engine",
            f"must be one of {ENGINES}, got {scenario['engine']!r}",
        )
    # Added in PR 6 alongside the top-level rng field.
    if "rng" in scenario:
        _field(scenario, "rng", str, path="scenario.rng")
        _expect(
            scenario["rng"] in RNG_MODES,
            "scenario.rng",
            f"must be one of {RNG_MODES}, got {scenario['rng']!r}",
        )
    # Added in PR 10 (the repro.dynamics fault-injection subsystem);
    # optional so every static artifact keeps validating unchanged.
    if "dynamics" in scenario:
        _dynamics(scenario["dynamics"], path="scenario.dynamics")
    _field(scenario, "topology_args", Mapping, path="scenario.topology_args")

    topo = _field(payload, "topology", Mapping)
    for key in ("num_nodes", "num_edges", "diameter", "max_degree"):
        _int_field(topo, key, minimum=0, path=f"topology.{key}")
    _expect(topo["num_nodes"] >= 1, "topology.num_nodes", "must be >= 1")

    schedule = _field(payload, "schedule", Mapping)
    for key in ("decay_steps", "num_decay_rounds", "total_rounds"):
        _int_field(schedule, key, minimum=1, path=f"schedule.{key}")

    trials = _field(payload, "trials", Mapping)
    _int_field(trials, "vectorized", minimum=1, path="trials.vectorized")
    # per_batch/seed_batches were added in PR 3 (the --seeds axis); both
    # are optional for pre-existing artifacts but must be consistent --
    # and present together -- when written.
    _expect(
        ("per_batch" in trials) == ("seed_batches" in trials),
        "trials.seed_batches",
        "per_batch and seed_batches must be present together",
    )
    if "seed_batches" in trials:
        _int_field(trials, "per_batch", minimum=1, path="trials.per_batch")
        _int_field(
            trials, "seed_batches", minimum=1, path="trials.seed_batches"
        )
        _expect(
            trials["per_batch"] * trials["seed_batches"]
            == trials["vectorized"],
            "trials.vectorized",
            "must equal per_batch * seed_batches",
        )
    _int_field(trials, "reference", minimum=0, path="trials.reference")
    _int_field(trials, "base_seed", path="trials.base_seed")

    # The engine block was added in PR 4 (the sparse CSR code path);
    # optional so pre-existing repro-bench/1 artifacts -- which all ran
    # the dense engine, the only one that existed -- keep validating.
    if "engine" in payload:
        engine = _field(payload, "engine", Mapping)
        _field(engine, "requested", str, path="engine.requested")
        _expect(
            engine["requested"] in ENGINES,
            "engine.requested",
            f"must be one of {ENGINES}, got {engine['requested']!r}",
        )
        _field(engine, "selected", str, path="engine.selected")
        _expect(
            engine["selected"] in ENGINE_KINDS,
            "engine.selected",
            f"must be one of {ENGINE_KINDS} (never 'auto'), got "
            f"{engine['selected']!r}",
        )
        _expect(
            engine["requested"] in ("auto", engine["selected"]),
            "engine.selected",
            "must equal the requested engine unless 'auto' was requested",
        )

    # The rng policy and worker count were added in PR 6; optional so
    # pre-existing repro-bench/1 artifacts -- which all ran the replay
    # policy in one process -- keep validating.
    if "rng" in payload:
        _field(payload, "rng", str)
        _expect(
            payload["rng"] in RNG_MODES,
            "rng",
            f"must be one of {RNG_MODES}, got {payload['rng']!r}",
        )
    if "workers" in payload:
        _int_field(payload, "workers", minimum=1)

    # The top-level dynamics mirror was added in PR 10.  A writer that
    # records the fault environment records it in both places, so the
    # two blocks must appear together and agree.
    has_dynamics = "dynamics" in scenario
    _expect(
        ("dynamics" in payload) == has_dynamics,
        "dynamics",
        "must be present exactly when scenario.dynamics is present",
    )
    if "dynamics" in payload:
        _dynamics(payload["dynamics"], path="dynamics")
        _expect(
            payload["dynamics"] == scenario["dynamics"],
            "dynamics",
            "must match scenario.dynamics",
        )

    results = _field(payload, "results", Mapping)
    rate = _field(results, "success_rate", (int, float), path="results.success_rate")
    _expect(0.0 <= rate <= 1.0, "results.success_rate", "must be in [0, 1]")
    series_keys = ["rounds", "transmissions", "receptions", "collisions"]
    if payload["scenario"]["algorithm"] == "leader-election":
        series_keys.append("attempts")
    if has_dynamics:
        # Robustness series, recorded exactly when faults were injected.
        series_keys += [
            "delivery_rate",
            "suppressed_links",
            "crashed_nodes",
            "jammed_listens",
        ]
    for key in series_keys:
        _series(results, key)
    # The per-trial block was added in PR 7 (the trend-report subsystem
    # needs the raw series for percentiles and sparklines); optional so
    # every earlier repro-bench/1 artifact keeps validating.  When
    # present it must be internally consistent: one value per vectorized
    # trial, and the summary statistics must be re-derivable from it.
    if "per_trial" in results:
        _per_trial(results, series_keys, trials["vectorized"])

    timing = _field(payload, "timing", Mapping)
    _number_field(timing, "vectorized_seconds", minimum=0.0, path="timing.vectorized_seconds")
    _number_field(timing, "vectorized_seconds_per_trial", minimum=0.0,
                  path="timing.vectorized_seconds_per_trial")
    for key in ("reference_seconds", "reference_seconds_per_trial", "speedup"):
        value = timing.get(key)
        if value is not None:
            _number_field(timing, key, minimum=0.0, path=f"timing.{key}")
    has_reference = trials["reference"] > 0
    _expect(
        (timing.get("speedup") is not None) == has_reference,
        "timing.speedup",
        "must be present exactly when reference trials were run",
    )

    agreement = _field(payload, "agreement", Mapping)
    _int_field(agreement, "checked_trials", minimum=0, path="agreement.checked_trials")
    _field(agreement, "round_exact", bool, path="agreement.round_exact")
    _expect(
        agreement["checked_trials"] <= trials["reference"],
        "agreement.checked_trials",
        "cannot exceed the number of reference trials",
    )
    _expect(
        agreement["round_exact"] == (agreement["checked_trials"] > 0),
        "agreement.round_exact",
        "must be true exactly when agreement was checked (a run that "
        "observes a disagreement raises instead of persisting)",
    )
    if payload.get("rng") == "decoupled":
        # Decoupled draws never match the replayed reference streams, so
        # a decoupled artifact claiming round-exact agreement is lying.
        _expect(
            agreement["checked_trials"] == 0,
            "agreement.checked_trials",
            "must be 0 under rng='decoupled' (replay parity is "
            "distributional, not round-exact)",
        )

    environment = _field(payload, "environment", Mapping)
    for key in ("python", "numpy", "platform"):
        _field(environment, key, str, path=f"environment.{key}")


# ----------------------------------------------------------------------
# validation helpers
# ----------------------------------------------------------------------
def _expect(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"bench payload invalid at {path}: {message}")


def _field(
    container: Mapping[str, Any],
    key: str,
    types,
    path: Optional[str] = None,
) -> Any:
    path = path or key
    _expect(key in container, path, "missing required field")
    value = container[key]
    if types is bool:
        _expect(isinstance(value, bool), path, "must be a boolean")
    else:
        _expect(
            isinstance(value, types) and not isinstance(value, bool),
            path,
            f"has wrong type {type(value).__name__}",
        )
    return value


def _int_field(
    container: Mapping[str, Any],
    key: str,
    minimum: Optional[int] = None,
    path: Optional[str] = None,
) -> int:
    value = _field(container, key, int, path=path)
    if minimum is not None:
        _expect(value >= minimum, path or key, f"must be >= {minimum}")
    return value


def _number_field(
    container: Mapping[str, Any],
    key: str,
    minimum: Optional[float] = None,
    path: Optional[str] = None,
) -> float:
    value = _field(container, key, (int, float), path=path)
    if minimum is not None:
        _expect(value >= minimum, path or key, f"must be >= {minimum}")
    return float(value)


def _dynamics(value: Any, path: str) -> None:
    """Validate one serialised ``DynamicsSpec`` block (PR 10)."""
    _expect(isinstance(value, Mapping), path, "must be a JSON object")
    _int_field(value, "fault_seed", minimum=0, path=f"{path}.fault_seed")
    models = _field(value, "models", list, path=f"{path}.models")
    _expect(len(models) >= 1, f"{path}.models", "must name at least one model")
    seen_kinds = []
    for index, model in enumerate(models):
        model_path = f"{path}.models[{index}]"
        _expect(isinstance(model, Mapping), model_path, "must be a JSON object")
        kind = _field(model, "kind", str, path=f"{model_path}.kind")
        _expect(
            kind in MODEL_KINDS,
            f"{model_path}.kind",
            f"must be one of {MODEL_KINDS}, got {kind!r}",
        )
        seen_kinds.append(kind)
    _expect(
        len(set(seen_kinds)) == len(seen_kinds),
        f"{path}.models",
        f"at most one model per kind, got {seen_kinds}",
    )


def _per_trial(
    results: Mapping[str, Any], series_keys: list, num_trials: int
) -> None:
    """Validate the optional ``results.per_trial`` raw-series block."""
    per_trial = _field(results, "per_trial", Mapping, path="results.per_trial")
    success = _field(per_trial, "success", list, path="results.per_trial.success")
    _expect(
        len(success) == num_trials,
        "results.per_trial.success",
        f"must hold one entry per vectorized trial ({num_trials}), "
        f"got {len(success)}",
    )
    _expect(
        all(isinstance(value, bool) for value in success),
        "results.per_trial.success",
        "entries must be booleans",
    )
    derived_rate = sum(1 for value in success if value) / num_trials
    _expect(
        math.isclose(derived_rate, results["success_rate"], rel_tol=1e-9,
                     abs_tol=1e-12),
        "results.success_rate",
        f"does not match the per-trial successes (expected {derived_rate})",
    )
    for key in series_keys:
        path = f"results.per_trial.{key}"
        values = _field(per_trial, key, list, path=path)
        _expect(
            len(values) == num_trials,
            path,
            f"must hold one entry per vectorized trial ({num_trials}), "
            f"got {len(values)}",
        )
        _expect(
            all(
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                for value in values
            ),
            path,
            "entries must be numbers",
        )
        block = results[key]
        for stat, derived in (
            ("mean", sum(values) / num_trials),
            ("min", min(values)),
            ("max", max(values)),
        ):
            _expect(
                math.isclose(block[stat], derived, rel_tol=1e-9,
                             abs_tol=1e-12),
                f"results.{key}.{stat}",
                f"does not match the per-trial series (expected {derived})",
            )


def _series(results: Mapping[str, Any], key: str) -> None:
    block = _field(results, key, Mapping, path=f"results.{key}")
    for stat in _SERIES_KEYS:
        _number_field(block, stat, path=f"results.{key}.{stat}")
    _expect(
        block["min"] <= block["mean"] <= block["max"],
        f"results.{key}",
        "must satisfy min <= mean <= max",
    )
