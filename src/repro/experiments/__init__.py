"""Benchmark subsystem: scenarios, batch runs, persisted results.

This package is how the repository measures itself.  It sweeps the
algorithms of :mod:`repro.core` across the topology families of
:mod:`repro.topology` on the vectorized simulation backend
(:mod:`repro.simulation.vectorized`), re-checks round-exact agreement
with the reference :class:`~repro.simulation.runner.ProtocolRunner` on a
prefix of every run, and persists one schema-validated ``BENCH_*.json``
per scenario -- the baseline any future optimisation PR (e.g. the
paper's clustering machinery) is judged against.

* :mod:`repro.experiments.scenarios` -- :class:`Scenario`,
  :class:`ScenarioRegistry` and the built-in sweep
  (:data:`DEFAULT_REGISTRY`).
* :mod:`repro.experiments.bench` -- :func:`run_benchmark`, the measured
  execution of one scenario.
* :mod:`repro.experiments.persistence` -- the ``repro-bench/1`` JSON
  schema (:func:`validate_bench`, :func:`write_bench`,
  :func:`load_bench`).
* :mod:`repro.experiments.report` -- the trend-report / regression-gate
  layer: :func:`compare_artifact_sets` joins a candidate artifact set
  against a committed baseline by scenario + config identity,
  :func:`render_markdown` emits the deterministic markdown + SVG trend
  report, and the :class:`NoiseBands` policy turns the comparison into
  an ``ok`` / ``regression`` verdict CI can gate on.
* :mod:`repro.experiments.cli` -- the ``python -m repro.experiments``
  command line (``list`` / ``run`` / ``sweep`` / ``validate`` /
  ``report``).

See ``docs/EXPERIMENTS.md`` for the guide, including how to register a
new scenario.
"""

from repro.experiments.bench import (
    DEFAULT_REFERENCE_TRIALS,
    PreparedScenario,
    merge_benchmark_batches,
    prepare_scenario,
    run_benchmark,
)
from repro.experiments.persistence import (
    SCHEMA_VERSION,
    bench_filename,
    load_bench,
    validate_bench,
    write_bench,
)
from repro.experiments.report import (
    DEFAULT_TIMING_TOLERANCE,
    NoiseBands,
    TrendReport,
    artifact_identity,
    build_report,
    compare_artifact_sets,
    load_artifact_set,
    render_markdown,
    verdict_payload,
)
from repro.experiments.scenarios import (
    DEFAULT_REGISTRY,
    Scenario,
    ScenarioRegistry,
    get_scenario,
    iter_scenarios,
)


def __getattr__(name: str):
    # Live view of the algorithm registry (see repro.experiments
    # .scenarios.__getattr__): never a stale import-time snapshot.
    if name == "ALGORITHMS":
        from repro.experiments import scenarios

        return scenarios.ALGORITHMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ALGORITHMS",
    "DEFAULT_REFERENCE_TRIALS",
    "DEFAULT_REGISTRY",
    "DEFAULT_TIMING_TOLERANCE",
    "NoiseBands",
    "PreparedScenario",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioRegistry",
    "TrendReport",
    "artifact_identity",
    "bench_filename",
    "build_report",
    "compare_artifact_sets",
    "get_scenario",
    "iter_scenarios",
    "load_artifact_set",
    "load_bench",
    "merge_benchmark_batches",
    "prepare_scenario",
    "render_markdown",
    "run_benchmark",
    "validate_bench",
    "verdict_payload",
    "write_bench",
]
