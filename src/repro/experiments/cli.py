"""Command-line entry point: ``python -m repro.experiments <subcommand>``.

Subcommands
-----------
``list``
    Show registered scenarios (optionally filtered by ``--match`` /
    ``--tag``), one per line, or as JSON with ``--json``.
``algorithms``
    Show the algorithm registry (:data:`repro.api.DEFAULT_ALGORITHMS`):
    every runnable algorithm with its declared capabilities.
``run``
    Run one scenario, print its headline numbers, and write
    ``BENCH_<name>.json`` into ``--out`` (default ``benchmarks/``).
``sweep``
    Run every scenario a filter selects, emitting one artifact each.
``validate``
    Load ``BENCH_*.json`` files and check them against the documented
    schema; exits non-zero on the first invalid file (CI uses this).
``report``
    Compare a candidate artifact directory against a committed baseline
    set: emit a deterministic markdown + SVG trend report and an
    ``ok`` / ``regression`` verdict under the pre-registered noise
    bands (CI's ``perf-gate`` job fails the build on regressions via
    ``--fail-on-regression``).

Every subcommand reports bad inputs -- unknown scenarios, unreadable or
malformed artifact files -- as a one-line ``error: ...`` on stderr with
a non-zero exit code, never a traceback.

See ``docs/EXPERIMENTS.md`` for a guided tour.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.api import DEFAULT_ALGORITHMS
from repro.experiments.bench import run_benchmark
from repro.experiments.persistence import load_bench, write_bench
from repro.experiments.report import (
    DEFAULT_TIMING_TOLERANCE,
    NoiseBands,
    build_report,
    dump_verdict,
    render_markdown,
)
from repro.experiments.scenarios import DEFAULT_REGISTRY, Scenario

#: Default output directory for benchmark artifacts.
DEFAULT_OUTPUT_DIR = "benchmarks"


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Benchmark scenarios for the radio-network reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered scenarios"
    )
    _add_filters(list_parser)
    list_parser.add_argument(
        "--json", action="store_true", help="emit the scenarios as JSON"
    )

    algorithms_parser = subparsers.add_parser(
        "algorithms",
        help="list the algorithm registry with declared capabilities",
    )
    algorithms_parser.add_argument(
        "--json", action="store_true", help="emit the registry as JSON"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one scenario and write BENCH_<name>.json"
    )
    run_parser.add_argument("scenario", help="registered scenario name")
    _add_run_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run every scenario matching a filter"
    )
    _add_filters(sweep_parser)
    sweep_parser.add_argument(
        "--limit", type=int, default=None,
        help="run at most this many scenarios",
    )
    _add_run_options(sweep_parser)

    validate_parser = subparsers.add_parser(
        "validate", help="check BENCH_*.json files against the schema"
    )
    validate_parser.add_argument(
        "paths", nargs="+", help="bench files to validate"
    )

    report_parser = subparsers.add_parser(
        "report",
        help="compare candidate artifacts against a baseline set and "
             "emit a trend report + ok/regression verdict",
    )
    report_parser.add_argument(
        "candidate",
        help="candidate artifact directory (or a single BENCH_*.json)",
    )
    report_parser.add_argument(
        "--against", default=DEFAULT_OUTPUT_DIR, metavar="DIR",
        help="baseline artifact directory or file "
             f"(default: {DEFAULT_OUTPUT_DIR})",
    )
    report_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the markdown report here (default: print to stdout)",
    )
    report_parser.add_argument(
        "--verdict-json", default=None, metavar="FILE",
        help="also write the machine-readable verdict document here",
    )
    report_parser.add_argument(
        "--timing-tolerance", type=float, default=DEFAULT_TIMING_TOLERANCE,
        metavar="X",
        help="relative wall-clock tolerance: a scenario regresses when "
             "its (machine-normalized) per-trial time exceeds the "
             f"baseline's by more than this factor (default: "
             f"{DEFAULT_TIMING_TOLERANCE})",
    )
    report_parser.add_argument(
        "--no-normalize-timing", action="store_true",
        help="gate raw timing ratios instead of dividing by the median "
             "ratio (use for same-machine comparisons)",
    )
    report_parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit with status 2 when the verdict is 'regression' "
             "(what CI's perf-gate job uses)",
    )
    return parser


def _add_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--match", default=None, help="substring filter on scenario names"
    )
    parser.add_argument(
        "--tag", default=None, help="keep only scenarios carrying this tag"
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trials", type=int, default=None,
        help="override the scenario's vectorized trial count",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's base seed",
    )
    parser.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="run N consecutive seeded batches of the scenario's trial "
             "count instead of one (recorded as trials.seed_batches)",
    )
    parser.add_argument(
        "--engine", choices=("auto", "dense", "sparse"), default=None,
        help="override the scenario's vectorized kernel (auto picks by "
             "edge density; sparse opens n >= 10^4 topologies)",
    )
    parser.add_argument(
        "--rng", choices=("replay", "decoupled"), default=None,
        help="randomness policy: replay (default; round-exact backend "
             "agreement) or decoupled (counter-based fast mode; parity "
             "is distributional, checked by the statistical test layer)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the trial batch across N processes (deterministic: "
             "the artifact is identical for any worker count)",
    )
    parser.add_argument(
        "--reference-trials", type=int, default=None,
        help="how many trials to repeat on the reference backend",
    )
    parser.add_argument(
        "--skip-reference", action="store_true",
        help="skip the reference pass (no speedup / agreement check)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUTPUT_DIR,
        help=f"output directory for artifacts (default: {DEFAULT_OUTPUT_DIR})",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "list":
            return _command_list(arguments)
        if arguments.command == "algorithms":
            return _command_algorithms(arguments)
        if arguments.command == "run":
            return _command_run(arguments)
        if arguments.command == "sweep":
            return _command_sweep(arguments)
        if arguments.command == "report":
            return _command_report(arguments)
        return _command_validate(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Stdout was closed mid-print (e.g. `report | head`); exit
        # quietly like any well-behaved filter instead of tracebacking.
        # Must precede OSError below: BrokenPipeError subclasses it.
        sys.stderr.close()
        return 0
    except OSError as error:
        # Unreadable inputs / unwritable outputs (missing directory,
        # permissions) are user-facing conditions, not bugs.
        print(f"error: {error}", file=sys.stderr)
        return 1


def _command_list(arguments: argparse.Namespace) -> int:
    scenarios = DEFAULT_REGISTRY.select(
        match=arguments.match, tag=arguments.tag
    )
    if arguments.json:
        print(json.dumps([s.to_dict() for s in scenarios], indent=2))
        return 0
    if not scenarios:
        print("no scenarios match the filter")
        return 0
    width = max(len(scenario.name) for scenario in scenarios)
    for scenario in scenarios:
        tags = f" [{','.join(scenario.tags)}]" if scenario.tags else ""
        print(
            f"{scenario.name:<{width}}  {scenario.algorithm:<15} "
            f"trials={scenario.trials:<3} {scenario.description}{tags}"
        )
    print(f"({len(scenarios)} scenarios)")
    return 0


def _command_algorithms(arguments: argparse.Namespace) -> int:
    algorithms = list(DEFAULT_ALGORITHMS)
    if arguments.json:
        print(json.dumps(
            [
                {
                    "name": algorithm.name,
                    "description": algorithm.description,
                    "collision_models": sorted(
                        model.value for model in algorithm.collision_models
                    ),
                    "supports_spontaneous": algorithm.supports_spontaneous,
                    "requires_spontaneous": algorithm.requires_spontaneous,
                    "spontaneous_default": algorithm.spontaneous_default,
                    "batched": algorithm.run_batch is not None,
                }
                for algorithm in algorithms
            ],
            indent=2,
        ))
        return 0
    width = max(len(algorithm.name) for algorithm in algorithms)
    for algorithm in algorithms:
        models = ",".join(sorted(
            model.value for model in algorithm.collision_models
        ))
        spontaneous = (
            "required" if algorithm.requires_spontaneous
            else "supported" if algorithm.supports_spontaneous
            else "unsupported"
        )
        print(
            f"{algorithm.name:<{width}}  spontaneous={spontaneous:<11} "
            f"models={models}  {algorithm.description}"
        )
    print(f"({len(algorithms)} algorithms)")
    return 0


def _execute(arguments: argparse.Namespace, scenario: Scenario) -> None:
    payload = run_benchmark(
        scenario,
        trials=arguments.trials,
        seed=arguments.seed,
        seed_batches=arguments.seeds,
        reference_trials=arguments.reference_trials,
        include_reference=not arguments.skip_reference,
        config=scenario.execution_config(
            engine=arguments.engine, rng=arguments.rng
        ),
        workers=arguments.workers,
    )
    path = write_bench(payload, arguments.out)
    timing = payload["timing"]
    results = payload["results"]
    speedup = (
        f"{timing['speedup']:.1f}x vs reference"
        if timing["speedup"] is not None
        else "reference skipped"
    )
    print(
        f"{scenario.name}: success_rate={results['success_rate']:.2f} "
        f"rounds(mean)={results['rounds']['mean']:.0f} "
        f"{timing['vectorized_seconds_per_trial'] * 1000:.1f} ms/trial "
        f"({speedup}, {payload['engine']['selected']} engine) -> {path}"
    )


def _command_run(arguments: argparse.Namespace) -> int:
    scenario = DEFAULT_REGISTRY.get(arguments.scenario)
    _execute(arguments, scenario)
    return 0


def _command_sweep(arguments: argparse.Namespace) -> int:
    scenarios = DEFAULT_REGISTRY.select(
        match=arguments.match, tag=arguments.tag
    )
    if arguments.limit is not None:
        scenarios = scenarios[: arguments.limit]
    if not scenarios:
        print("no scenarios match the filter")
        return 0
    for scenario in scenarios:
        _execute(arguments, scenario)
    print(f"({len(scenarios)} scenarios swept)")
    return 0


def _command_validate(arguments: argparse.Namespace) -> int:
    for path in arguments.paths:
        payload = load_bench(path)
        print(f"{path}: valid ({payload['scenario']['name']})")
    return 0


def _command_report(arguments: argparse.Namespace) -> int:
    report = build_report(
        arguments.against,
        arguments.candidate,
        NoiseBands(
            timing_tolerance=arguments.timing_tolerance,
            normalize_timing=not arguments.no_normalize_timing,
        ),
    )
    markdown = render_markdown(report)
    # The report and verdict files are written before the exit code is
    # decided, so a failing gate still uploads its evidence in CI.
    if arguments.out is not None:
        path = pathlib.Path(arguments.out)
        if path.parent != pathlib.Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(markdown)
    else:
        print(markdown)
    if arguments.verdict_json is not None:
        dump_verdict(report, arguments.verdict_json)
    counts = report.counts
    print(
        f"verdict: {report.verdict} ({counts['compared']} compared, "
        f"{counts['regressions']} regression(s), "
        f"{counts['baseline_only']} baseline-only, "
        f"{counts['candidate_only']} new)",
        file=sys.stderr,
    )
    if report.verdict == "regression" and arguments.fail_on_regression:
        return 2
    return 0
