"""Executes one benchmark scenario and assembles its ``BENCH_*.json`` payload.

A benchmark run measures the *vectorized* backend over the scenario's
full trial batch and, unless disabled, re-runs a prefix of the trials on
the pure-Python *reference* backend to (a) time the speedup headline and
(b) re-verify round-exact backend agreement on live data -- every
benchmark doubles as an equivalence check, so a drift between the
backends can never hide inside a performance number.
"""

from __future__ import annotations

import datetime
import platform
import time
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.network.messages import Message
from repro.topology.validation import summarize_topology
from repro.core.compete import Compete
from repro.core.leader_election import LeaderElectionResult, elect_leader
from repro.core.parameters import CompeteParameters
from repro.experiments.persistence import SCHEMA_VERSION
from repro.experiments.scenarios import Scenario
from repro.simulation.sparse import resolve_engine
from repro.simulation.vectorized import ENGINES

#: Reference trials re-run for timing/agreement unless overridden.
DEFAULT_REFERENCE_TRIALS = 2


def run_benchmark(
    scenario: Scenario,
    *,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    seed_batches: Optional[int] = None,
    reference_trials: Optional[int] = None,
    include_reference: bool = True,
    engine: Optional[str] = None,
) -> dict[str, Any]:
    """Run ``scenario`` and return its schema-valid benchmark payload.

    Parameters
    ----------
    scenario:
        What to run (see :class:`~repro.experiments.scenarios.Scenario`).
    trials:
        Override the scenario's vectorized trial count (per seed batch).
    seed:
        Override the scenario's base seed; trial ``i`` uses ``seed + i``
        on both backends, which is what makes agreement checkable.
    seed_batches:
        Run this many consecutive seeded batches of ``trials`` trials
        (default 1): batch ``b`` trial ``i`` uses seed
        ``base + b * trials + i``, so the total sample is
        ``trials * seed_batches`` distinct seeds.  The batch count is
        recorded in the artifact's ``trials`` block.
    reference_trials:
        How many of the trials to repeat on the reference backend
        (capped at the total trial count; default 2).
    include_reference:
        Set False to skip the reference pass entirely -- faster, but the
        payload then carries no speedup and no agreement check.
    engine:
        Override the scenario's vectorized kernel selector
        (``"auto"``/``"dense"``/``"sparse"``).  The payload's ``engine``
        block records both the request and the kernel that actually ran.

    Raises
    ------
    SimulationError
        If a reference trial disagrees with its vectorized counterpart
        (the equivalence guarantee is broken -- never ignore this).
    """
    per_batch = trials if trials is not None else scenario.trials
    if per_batch < 1:
        raise ConfigurationError(f"trials must be >= 1, got {per_batch}")
    num_batches = seed_batches if seed_batches is not None else 1
    if num_batches < 1:
        raise ConfigurationError(
            f"seed_batches must be >= 1, got {num_batches}"
        )
    if reference_trials is not None and reference_trials < 0:
        raise ConfigurationError(
            f"reference_trials must be >= 0, got {reference_trials}"
        )
    num_trials = per_batch * num_batches
    base_seed = seed if seed is not None else scenario.seed
    seeds = [base_seed + index for index in range(num_trials)]

    requested_engine = engine if engine is not None else scenario.engine
    if requested_engine not in ENGINES:
        raise ConfigurationError(
            f"engine must be one of {ENGINES}, got {requested_engine!r}"
        )

    graph = scenario.build_graph()
    summary = summarize_topology(graph)
    parameters = CompeteParameters.from_graph(
        graph, diameter=summary.diameter, margin=scenario.margin
    )
    # Resolve "auto" through the same resolver the engines themselves
    # use, so the artifact records exactly the kernel that will run.
    selected_engine = resolve_engine(
        requested_engine, summary.num_nodes, summary.num_edges
    )

    started = time.perf_counter()
    vectorized = _run_trials(
        scenario, graph, parameters, seeds, "vectorized", requested_engine
    )
    vectorized_seconds = time.perf_counter() - started

    num_reference = 0
    reference_seconds: Optional[float] = None
    if include_reference:
        num_reference = min(
            num_trials,
            reference_trials
            if reference_trials is not None
            else DEFAULT_REFERENCE_TRIALS,
        )
    if num_reference:
        started = time.perf_counter()
        reference = _run_trials(
            scenario, graph, parameters, seeds[:num_reference], "reference",
            requested_engine,
        )
        reference_seconds = time.perf_counter() - started
        _check_agreement(scenario, vectorized[:num_reference], reference)

    stats = _aggregate(scenario, vectorized)
    vec_per_trial = vectorized_seconds / num_trials
    ref_per_trial = (
        reference_seconds / num_reference if num_reference else None
    )

    return {
        "schema": SCHEMA_VERSION,
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scenario": scenario.to_dict(),
        "topology": {
            "num_nodes": summary.num_nodes,
            "num_edges": summary.num_edges,
            "diameter": summary.diameter,
            "max_degree": summary.max_degree,
        },
        "schedule": {
            "decay_steps": parameters.decay_steps,
            "num_decay_rounds": parameters.num_decay_rounds,
            "total_rounds": parameters.total_rounds,
        },
        "trials": {
            "vectorized": num_trials,
            "per_batch": per_batch,
            "seed_batches": num_batches,
            "reference": num_reference,
            "base_seed": base_seed,
        },
        "engine": {
            "requested": requested_engine,
            "selected": selected_engine,
        },
        "results": stats,
        "timing": {
            "vectorized_seconds": vectorized_seconds,
            "vectorized_seconds_per_trial": vec_per_trial,
            "reference_seconds": reference_seconds,
            "reference_seconds_per_trial": ref_per_trial,
            "speedup": (
                ref_per_trial / vec_per_trial
                if ref_per_trial is not None and vec_per_trial > 0
                else None
            ),
        },
        "agreement": {
            "checked_trials": num_reference,
            # True iff agreement was actually checked; a disagreement
            # raises instead of persisting, so this is never a false True.
            "round_exact": num_reference > 0,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }


def _run_trials(
    scenario: Scenario,
    graph,
    parameters: CompeteParameters,
    seeds: Sequence[int],
    backend: str,
    engine: str,
) -> list:
    """Run every seed on one backend, batched where the backend allows."""
    if scenario.algorithm == "broadcast":
        primitive = Compete(
            graph,
            parameters=parameters,
            collision_model=scenario.collision(),
            strategy=scenario.strategy,
            backend=backend,
            engine=engine,
        )
        source = graph.nodes()[0]
        candidates = {source: Message(value=1, source=source)}
        if backend == "vectorized":
            return primitive.run_batch(
                candidates, seeds=seeds, spontaneous=scenario.spontaneous
            )
        return [
            primitive.run(
                candidates, seed=seed, spontaneous=scenario.spontaneous
            )
            for seed in seeds
        ]
    # Leader election retries internally, so trials stay per-seed calls;
    # the backend choice still vectorizes every attempt's Compete run.
    return [
        elect_leader(
            graph,
            seed=seed,
            spontaneous=scenario.spontaneous,
            parameters=parameters,
            collision_model=scenario.collision(),
            strategy=scenario.strategy,
            backend=backend,
            engine=engine,
        )
        for seed in seeds
    ]


def _check_agreement(
    scenario: Scenario, vectorized: Sequence, reference: Sequence
) -> None:
    """Raise unless each reference trial matches its vectorized twin."""
    for index, (fast, slow) in enumerate(zip(vectorized, reference)):
        if isinstance(slow, LeaderElectionResult):
            same = (
                fast.success == slow.success
                and fast.leader == slow.leader
                and fast.attempts == slow.attempts
                and fast.rounds == slow.rounds
                and fast.metrics.as_dict() == slow.metrics.as_dict()
            )
        else:
            same = (
                fast.success == slow.success
                and fast.winner == slow.winner
                and fast.rounds == slow.rounds
                and dict(fast.reception_rounds) == dict(slow.reception_rounds)
                and fast.metrics.as_dict() == slow.metrics.as_dict()
            )
        if not same:
            raise SimulationError(
                f"backend disagreement in scenario {scenario.name!r}, trial "
                f"{index}: the vectorized engine no longer matches the "
                "reference runner round for round"
            )


def _aggregate(scenario: Scenario, results: Sequence) -> dict[str, Any]:
    """Summarise per-trial series into the payload's ``results`` block."""
    successes = sum(1 for result in results if result.success)
    stats: dict[str, Any] = {
        "success_rate": successes / len(results),
        "rounds": _series([result.rounds for result in results]),
        "transmissions": _series(
            [result.metrics.transmissions for result in results]
        ),
        "receptions": _series(
            [result.metrics.receptions for result in results]
        ),
        "collisions": _series(
            [result.metrics.collisions for result in results]
        ),
    }
    if scenario.algorithm == "leader-election":
        stats["attempts"] = _series(
            [result.attempts for result in results]
        )
    return stats


def _series(values: Sequence[float]) -> dict[str, float]:
    return {
        "mean": float(sum(values) / len(values)),
        "min": float(min(values)),
        "max": float(max(values)),
    }
