"""Executes one benchmark scenario and assembles its ``BENCH_*.json`` payload.

A benchmark run measures the *vectorized* backend over the scenario's
full trial batch and, unless disabled, re-runs a prefix of the trials on
the pure-Python *reference* backend to (a) time the speedup headline and
(b) re-verify round-exact backend agreement on live data -- every
benchmark doubles as an equivalence check, so a drift between the
backends can never hide inside a performance number.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import datetime
import platform
import time
import warnings
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.network.graph import Graph
from repro.topology.validation import TopologySummary, summarize_topology
from repro.api import (
    DEFAULT_ALGORITHMS,
    ExecutionConfig,
    ResolvedExecution,
    resolve_execution,
)
from repro.core.leader_election import LeaderElectionResult
from repro.core.parameters import CompeteParameters
from repro.experiments.persistence import SCHEMA_VERSION
from repro.experiments.scenarios import Scenario

#: Reference trials re-run for timing/agreement unless overridden.
DEFAULT_REFERENCE_TRIALS = 2


@dataclasses.dataclass(frozen=True)
class PreparedScenario:
    """Everything expensive about starting a run, computed once.

    Produced by :func:`prepare_scenario`; holds the built topology, its
    summary (including the exact diameter, the costly part), the derived
    round budget and the bound :class:`ResolvedExecution` with its
    schedule already compiled.  ``repro.service`` keeps these in its
    resolution cache keyed by
    :meth:`ExecutionConfig.cache_key` so repeated requests for the same
    (config, topology) pay the compilation exactly once; passing one to
    :func:`run_benchmark` via ``prepared=`` skips the whole cold path.
    """

    scenario: Scenario
    config: ExecutionConfig
    graph: Graph
    summary: TopologySummary
    parameters: CompeteParameters
    resolved: ResolvedExecution


def prepare_scenario(
    scenario: Scenario,
    config: Optional[ExecutionConfig] = None,
) -> PreparedScenario:
    """Compile ``scenario`` into a reusable :class:`PreparedScenario`.

    This is the benchmark's cold path -- topology construction, the
    exact-diameter summary, round-budget derivation, strategy-schedule
    compilation and the CSR adjacency build -- factored out so callers
    (most importantly the ``repro.service`` resolution cache) can pay it
    once and amortise it over many runs.
    """
    if config is None:
        config = scenario.execution_config()
    graph = scenario.build_graph()
    summary = summarize_topology(graph)
    # An explicit round budget on the config wins; otherwise derive it
    # once with the already-computed diameter.
    parameters = config.parameters
    if parameters is None:
        parameters = CompeteParameters.from_graph(
            graph, diameter=summary.diameter, margin=config.margin
        )
    resolved = resolve_execution(graph, config, parameters=parameters)
    # Force the lazy compilations now, while we are on the cold path:
    # the strategy schedule (cluster decomposition is not free) and the
    # graph's memoized adjacency structure for the selected kernel, so a
    # cached PreparedScenario starts a warm run without rebuilding
    # either.
    resolved.schedule
    if resolved.engine == "sparse":
        graph.adjacency_csr()
    return PreparedScenario(
        scenario=scenario,
        config=config,
        graph=graph,
        summary=summary,
        parameters=parameters,
        resolved=resolved,
    )


def run_benchmark(
    scenario: Scenario,
    *,
    trials: Optional[int] = None,
    seed: Optional[int] = None,
    seed_batches: Optional[int] = None,
    reference_trials: Optional[int] = None,
    include_reference: bool = True,
    config: Optional[ExecutionConfig] = None,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    prepared: Optional[PreparedScenario] = None,
) -> dict[str, Any]:
    """Run ``scenario`` and return its schema-valid benchmark payload.

    Parameters
    ----------
    scenario:
        What to run (see :class:`~repro.experiments.scenarios.Scenario`).
    trials:
        Override the scenario's vectorized trial count (per seed batch).
    seed:
        Override the scenario's base seed; trial ``i`` uses ``seed + i``
        on both backends, which is what makes agreement checkable.
    seed_batches:
        Run this many consecutive seeded batches of ``trials`` trials
        (default 1): batch ``b`` trial ``i`` uses seed
        ``base + b * trials + i``, so the total sample is
        ``trials * seed_batches`` distinct seeds.  The batch count is
        recorded in the artifact's ``trials`` block.
    reference_trials:
        How many of the trials to repeat on the reference backend
        (capped at the total trial count; default 2).
    include_reference:
        Set False to skip the reference pass entirely -- faster, but the
        payload then carries no speedup and no agreement check.
    config:
        Override the scenario's execution axes wholesale with an
        :class:`ExecutionConfig` (its ``backend`` is ignored: the
        benchmark always measures the vectorized backend and re-checks
        the reference).  Defaults to
        :meth:`Scenario.execution_config`.
    engine:
        **Deprecated** -- the pre-config kernel override; use
        ``config=scenario.execution_config(engine=...)``.  One
        :class:`DeprecationWarning`, identical behaviour.
    workers:
        Shard the vectorized trial batch across this many processes
        (default 1: run in-process).  Seeds are split into contiguous
        chunks and merged back in submission order, so the payload is
        identical for any worker count -- per-trial draws depend only on
        the trial's own seed under both rng policies, which is what
        makes the sharding sound.  The effective count is recorded in
        the payload's top-level ``workers`` field.
    prepared:
        A :class:`PreparedScenario` from :func:`prepare_scenario` to
        reuse (the ``repro.service`` cache seam): the topology build,
        diameter summary, round budget and compiled schedule are taken
        from it instead of being recomputed.  It must have been prepared
        for this scenario and config (checked); results are identical
        with or without it.

    Raises
    ------
    SimulationError
        If a reference trial disagrees with its vectorized counterpart
        (the equivalence guarantee is broken -- never ignore this), or
        if a worker process dies mid-batch (the error names the seed
        chunk that was lost).

    Notes
    -----
    Under ``config.rng == "decoupled"`` the reference pass (if any) is
    timing-only: the reference runner replays its per-node streams while
    the vectorized engine hashes counters, so their draws differ by
    design and round-exact agreement is not checked (the payload records
    ``agreement.checked_trials == 0``).  Distributional agreement is
    enforced separately by the statistical test layer.
    """
    per_batch = trials if trials is not None else scenario.trials
    if per_batch < 1:
        raise ConfigurationError(f"trials must be >= 1, got {per_batch}")
    num_batches = seed_batches if seed_batches is not None else 1
    if num_batches < 1:
        raise ConfigurationError(
            f"seed_batches must be >= 1, got {num_batches}"
        )
    if reference_trials is not None and reference_trials < 0:
        raise ConfigurationError(
            f"reference_trials must be >= 0, got {reference_trials}"
        )
    num_workers = workers if workers is not None else 1
    if num_workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {num_workers}")
    if engine is not None:
        if config is not None:
            raise ConfigurationError(
                "run_benchmark: pass either config= or the deprecated "
                "engine= keyword, not both"
            )
        warnings.warn(
            "run_benchmark(engine=...) is deprecated; pass "
            "config=scenario.execution_config(engine=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = scenario.execution_config(engine=engine)
    if config is None:
        config = scenario.execution_config()
    num_trials = per_batch * num_batches
    base_seed = seed if seed is not None else scenario.seed
    seeds = [base_seed + index for index in range(num_trials)]

    if prepared is None:
        prepared = prepare_scenario(scenario, config)
    elif (
        prepared.scenario.family != scenario.family
        or prepared.scenario.topology_args != scenario.topology_args
        or prepared.config.identity() != config.identity()
    ):
        # Scenario *names* may differ: the service cache deliberately
        # shares one resolution across scenarios with identical
        # execution identity and topology (e.g. the service-cold /
        # service-warm probe pair).  What must match is everything the
        # resolution was compiled from.
        raise ConfigurationError(
            f"prepared resolution is for scenario "
            f"{prepared.scenario.name!r} ({prepared.scenario.family} "
            f"{dict(prepared.scenario.topology_args)!r} / config "
            f"{prepared.config.identity()}), not {scenario.name!r} "
            f"({scenario.family} {dict(scenario.topology_args)!r} / "
            f"{config.identity()})"
        )
    graph = prepared.graph
    summary = prepared.summary
    parameters = prepared.parameters
    # The resolution records exactly the kernel that will run ("auto"
    # applied through the same shared path the execution takes).
    requested_engine = config.engine
    selected_engine = prepared.resolved.engine

    effective_workers = min(num_workers, num_trials)
    started = time.perf_counter()
    if effective_workers > 1:
        # Contiguous seed chunks, merged back in submission order: the
        # result list is byte-identical to the workers=1 run because
        # each trial's draws depend only on its own seed.
        chunks = [
            chunk.tolist()
            for chunk in np.array_split(
                np.asarray(seeds), effective_workers
            )
            if chunk.size
        ]
        vectorized = _run_sharded(scenario, parameters, chunks, config)
    else:
        vectorized = _run_trials(
            scenario, graph, parameters, seeds, "vectorized", config
        )
    vectorized_seconds = time.perf_counter() - started

    num_reference = 0
    reference_seconds: Optional[float] = None
    if include_reference:
        num_reference = min(
            num_trials,
            reference_trials
            if reference_trials is not None
            else DEFAULT_REFERENCE_TRIALS,
        )
    num_checked = 0
    if num_reference:
        started = time.perf_counter()
        reference = _run_trials(
            scenario, graph, parameters, seeds[:num_reference], "reference",
            config,
        )
        reference_seconds = time.perf_counter() - started
        if config.rng == "replay":
            _check_agreement(scenario, vectorized[:num_reference], reference)
            num_checked = num_reference
        # Decoupled draws differ from the replayed reference streams by
        # design -- the reference pass is timing-only and the payload
        # records zero checked trials (statistical tests own parity).

    stats = _aggregate(scenario, vectorized)
    vec_per_trial = vectorized_seconds / num_trials
    ref_per_trial = (
        reference_seconds / num_reference if num_reference else None
    )

    payload = {
        "schema": SCHEMA_VERSION,
        "created_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "scenario": scenario.to_dict(),
        "topology": {
            "num_nodes": summary.num_nodes,
            "num_edges": summary.num_edges,
            "diameter": summary.diameter,
            "max_degree": summary.max_degree,
        },
        "schedule": {
            "decay_steps": parameters.decay_steps,
            "num_decay_rounds": parameters.num_decay_rounds,
            "total_rounds": parameters.total_rounds,
        },
        "trials": {
            "vectorized": num_trials,
            "per_batch": per_batch,
            "seed_batches": num_batches,
            "reference": num_reference,
            "base_seed": base_seed,
        },
        "engine": {
            "requested": requested_engine,
            "selected": selected_engine,
        },
        "rng": config.rng,
        "workers": effective_workers,
        "results": stats,
        "timing": {
            "vectorized_seconds": vectorized_seconds,
            "vectorized_seconds_per_trial": vec_per_trial,
            "reference_seconds": reference_seconds,
            "reference_seconds_per_trial": ref_per_trial,
            "speedup": (
                ref_per_trial / vec_per_trial
                if ref_per_trial is not None and vec_per_trial > 0
                else None
            ),
        },
        "agreement": {
            "checked_trials": num_checked,
            # True iff agreement was actually checked; a disagreement
            # raises instead of persisting, so this is never a false True.
            "round_exact": num_checked > 0,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }
    if scenario.dynamics is not None:
        # Top-level mirror of the fault environment (also persisted in
        # the scenario block), so report tooling can read the fault axis
        # without parsing scenario internals.  Absent on static runs.
        payload["dynamics"] = scenario.dynamics.describe()
    return payload


def _run_sharded(
    scenario: Scenario,
    parameters: CompeteParameters,
    chunks: Sequence[Sequence[int]],
    config: ExecutionConfig,
) -> list:
    """Run contiguous seed chunks across a process pool, merged in order.

    A worker process that dies (OOM-killed, segfaulted, ``os._exit``)
    surfaces from :class:`~concurrent.futures.ProcessPoolExecutor` as a
    bare ``BrokenProcessPool`` with no hint of *what* was lost; here it
    is chained into a :class:`SimulationError` naming the failing
    chunk's seed range so the caller can retry or bisect.
    ``KeyboardInterrupt`` shuts the pool down without waiting for the
    remaining chunks -- the service layer reuses this path and must be
    able to abandon a run promptly.
    """
    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=len(chunks)
    )
    interrupted = False
    try:
        futures = [
            (
                pool.submit(
                    _worker_run_trials, scenario, parameters, chunk, config
                ),
                chunk,
            )
            for chunk in chunks
        ]
        merged = []
        for future, chunk in futures:
            try:
                merged.extend(future.result())
            except concurrent.futures.process.BrokenProcessPool as error:
                raise SimulationError(
                    f"worker process died while running scenario "
                    f"{scenario.name!r} seeds {chunk[0]}..{chunk[-1]} "
                    f"({len(chunk)} trial(s)); the whole sharded batch "
                    "is lost -- re-run, or lower workers= if the "
                    "machine is memory-constrained"
                ) from error
        return merged
    except (KeyboardInterrupt, SystemExit):
        # Don't block the interrupt on unfinished chunks: drop queued
        # work and leave running workers to die with the process group.
        interrupted = True
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        if not interrupted:
            pool.shutdown(wait=True, cancel_futures=True)


def merge_benchmark_batches(payloads: Sequence[dict]) -> dict[str, Any]:
    """Merge per-batch :func:`run_benchmark` payloads into one artifact.

    The service layer streams a job's seed batches as they finish -- one
    schema-valid payload per batch, produced by consecutive
    ``run_benchmark(..., trials=per_batch, seed=base + b * per_batch)``
    calls -- and this reassembles them into the single payload the
    one-shot ``run_benchmark(..., seed_batches=len(payloads))`` call
    would have produced: concatenated per-trial series, re-derived
    summary statistics, summed wall-clock.  The ``results`` block is
    byte-identical to the one-shot run's (both are deterministic
    functions of config + seeds) -- and with the reference pass disabled
    so are ``trials`` and ``agreement`` (per-batch reference reruns
    check a prefix of *each* batch, the one-shot run a prefix of the
    whole) -- and the merged payload validates under the same
    ``repro-bench/1`` schema.
    """
    if not payloads:
        raise ConfigurationError("cannot merge zero benchmark batches")
    first = payloads[0]
    per_batch = first["trials"]["vectorized"]
    for index, payload in enumerate(payloads):
        if payload["scenario"] != first["scenario"]:
            raise ConfigurationError(
                "cannot merge benchmark batches of different scenarios"
            )
        if payload["trials"]["vectorized"] != per_batch:
            raise ConfigurationError(
                f"batch {index} ran {payload['trials']['vectorized']} "
                f"trial(s), expected {per_batch} -- batches must be "
                "uniform to merge"
            )
        expected_seed = first["trials"]["base_seed"] + index * per_batch
        if payload["trials"]["base_seed"] != expected_seed:
            raise ConfigurationError(
                f"batch {index} starts at seed "
                f"{payload['trials']['base_seed']}, expected "
                f"{expected_seed} -- batches must be seed-contiguous"
            )
        if "per_trial" not in payload["results"]:
            raise ConfigurationError(
                f"batch {index} carries no per_trial series; only "
                "current-schema payloads can be merged"
            )
    num_batches = len(payloads)
    num_trials = per_batch * num_batches

    per_trial: dict[str, list] = {}
    for key in first["results"]["per_trial"]:
        per_trial[key] = [
            value
            for payload in payloads
            for value in payload["results"]["per_trial"][key]
        ]
    results: dict[str, Any] = {
        "success_rate": sum(per_trial["success"]) / num_trials,
    }
    for key, values in per_trial.items():
        if key == "success":
            continue
        results[key] = _series(values)
    results["per_trial"] = per_trial

    reference_trials = sum(p["trials"]["reference"] for p in payloads)
    vec_seconds = sum(p["timing"]["vectorized_seconds"] for p in payloads)
    ref_seconds = sum(
        p["timing"]["reference_seconds"] or 0.0 for p in payloads
    )
    vec_per_trial = vec_seconds / num_trials
    ref_per_trial = (
        ref_seconds / reference_trials if reference_trials else None
    )
    checked = sum(p["agreement"]["checked_trials"] for p in payloads)

    merged = dict(first)
    merged["trials"] = dict(
        first["trials"],
        vectorized=num_trials,
        per_batch=per_batch,
        seed_batches=num_batches,
        reference=reference_trials,
    )
    merged["results"] = results
    merged["timing"] = {
        "vectorized_seconds": vec_seconds,
        "vectorized_seconds_per_trial": vec_per_trial,
        "reference_seconds": ref_seconds if reference_trials else None,
        "reference_seconds_per_trial": ref_per_trial,
        "speedup": (
            ref_per_trial / vec_per_trial
            if ref_per_trial is not None and vec_per_trial > 0
            else None
        ),
    }
    merged["agreement"] = {
        "checked_trials": checked,
        "round_exact": checked > 0,
    }
    return merged


def _run_trials(
    scenario: Scenario,
    graph,
    parameters: CompeteParameters,
    seeds: Sequence[int],
    backend: str,
    config: ExecutionConfig,
) -> list:
    """Run every seed through the registry, batched where possible.

    Dispatch is by algorithm name via
    :data:`repro.api.DEFAULT_ALGORITHMS` -- registering a new baseline
    makes it benchmarkable with no edits here.  The pre-derived
    ``parameters`` ride inside the config so the diameter is not
    recomputed per trial.
    """
    if backend == "reference" and config.rng == "decoupled":
        # The reference runner has no counter mode (the config layer
        # rejects the combination); its timing pass always replays.
        run_config = config.replace(
            backend=backend, rng="replay", parameters=parameters
        )
    else:
        run_config = config.replace(backend=backend, parameters=parameters)
    if backend == "vectorized":
        return DEFAULT_ALGORITHMS.run_batch(
            scenario.algorithm, graph, seeds=seeds, config=run_config,
            spontaneous=scenario.spontaneous,
        )
    return [
        DEFAULT_ALGORITHMS.run(
            scenario.algorithm, graph, seed=seed, config=run_config,
            spontaneous=scenario.spontaneous,
        )
        for seed in seeds
    ]


def _worker_run_trials(
    scenario: Scenario,
    parameters: CompeteParameters,
    seeds: Sequence[int],
    config: ExecutionConfig,
) -> list:
    """One worker process's share of the vectorized trial batch.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; rebuilds the (deterministic) topology locally instead of
    shipping the adjacency structure across the process boundary.
    """
    graph = scenario.build_graph()
    return _run_trials(
        scenario, graph, parameters, seeds, "vectorized", config
    )


def _check_agreement(
    scenario: Scenario, vectorized: Sequence, reference: Sequence
) -> None:
    """Raise unless each reference trial matches its vectorized twin."""
    for index, (fast, slow) in enumerate(zip(vectorized, reference)):
        same = (
            fast.success == slow.success
            and fast.rounds == slow.rounds
            and fast.metrics.as_dict() == slow.metrics.as_dict()
        )
        if isinstance(slow, LeaderElectionResult):
            same = (
                same
                and fast.leader == slow.leader
                and fast.attempts == slow.attempts
            )
        else:
            # Broadcast-shaped results (Compete-based or the classical
            # Decay baseline) all carry the message and reception times.
            same = (
                same
                and fast.message == slow.message
                and dict(fast.reception_rounds) == dict(slow.reception_rounds)
            )
        if not same:
            raise SimulationError(
                f"backend disagreement in scenario {scenario.name!r}, trial "
                f"{index}: the vectorized engine no longer matches the "
                "reference runner round for round"
            )


def _aggregate(scenario: Scenario, results: Sequence) -> dict[str, Any]:
    """Summarise per-trial series into the payload's ``results`` block.

    Since PR 7 the block also records the raw per-trial values
    (``results.per_trial``): the trend-report subsystem derives
    percentiles and sparklines from them, and the golden-artifact test
    layer re-derives every summary statistic, so a drift between the
    series and its summary can never persist.
    """
    successes = sum(1 for result in results if result.success)
    series: dict[str, list] = {
        "rounds": [result.rounds for result in results],
        "transmissions": [result.metrics.transmissions for result in results],
        "receptions": [result.metrics.receptions for result in results],
        "collisions": [result.metrics.collisions for result in results],
    }
    if scenario.dynamics is not None:
        # Robustness series, recorded only for fault-injected scenarios
        # so the 30+ committed static artifacts keep their exact keys
        # (the golden suite re-derives every summary from per_trial --
        # summary and series must always appear together).
        series["delivery_rate"] = [
            result.metrics.delivery_ratio for result in results
        ]
        series["suppressed_links"] = [
            result.metrics.suppressed_links for result in results
        ]
        series["crashed_nodes"] = [
            result.metrics.crashed_nodes for result in results
        ]
        series["jammed_listens"] = [
            result.metrics.jammed_listens for result in results
        ]
    for attribute in DEFAULT_ALGORITHMS.get(scenario.algorithm).extra_series:
        series[attribute] = [getattr(result, attribute) for result in results]
    stats: dict[str, Any] = {
        "success_rate": successes / len(results),
    }
    for key, values in series.items():
        stats[key] = _series(values)
    stats["per_trial"] = dict(
        series, success=[bool(result.success) for result in results]
    )
    return stats


def _series(values: Sequence[float]) -> dict[str, float]:
    return {
        "mean": float(sum(values) / len(values)),
        "min": float(min(values)),
        "max": float(max(values)),
    }
