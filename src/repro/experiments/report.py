"""Trend reports and perf-regression verdicts over ``BENCH_*.json`` sets.

This module is the comparison half of the experiment platform: it loads
two artifact sets -- a committed *baseline* (normally ``benchmarks/``)
and a freshly-run *candidate* directory -- joins them by scenario and
execution-config identity (:meth:`repro.api.ExecutionConfig.identity`),
and produces

* a deterministic markdown trend report with hand-rolled inline SVG
  sparklines (stdlib only -- byte-identical for identical inputs, so it
  can be diffed and cached), and
* a machine-readable verdict (``ok`` / ``regression``) that CI's
  ``perf-gate`` job turns into an exit code.

The regression policy is **pre-registered** in :class:`NoiseBands`
rather than decided per run:

* **Round counts are gated exactly, under ``rng="replay"`` only.**
  Replay runs are deterministic functions of ``(config, base_seed)``,
  so when a candidate artifact re-runs the same seeds under the same
  config identity, *any* drift in the results block is a real
  behavioural regression, never noise.  Decoupled-rng rows are not
  round-gated (their cross-version contract is distributional and owned
  by the statistical test layer), and neither are rows whose seed or
  trial count differ.
* **Wall-clock is gated with a relative tolerance, machine-normalized.**
  Baselines are committed from whatever machine produced them, so raw
  candidate/baseline timing ratios mostly measure hardware.  With at
  least :data:`MIN_RATIOS_FOR_NORMALIZATION` compared scenarios the
  per-scenario ratios are divided by their median (the machine-speed
  factor); a scenario whose *normalized* ratio exceeds
  ``timing_tolerance`` regressed relative to its peers.  Below that
  count (or with ``normalize_timing=False``) raw ratios are gated.

See ``docs/EXPERIMENTS.md`` ("Trend reports & regression gates") for the
CLI walkthrough and how CI consumes the verdict.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import statistics
from typing import Any, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.experiments.persistence import load_bench
from repro.experiments.scenarios import Scenario

#: Verdict document layout identifier (the report's own mini-schema).
REPORT_SCHEMA_VERSION = "repro-report/1"

#: Default relative wall-clock tolerance: a compared scenario regresses
#: when its machine-normalized per-trial time exceeds the baseline's by
#: more than this factor.  Chosen below 2x so a genuine doubling always
#: trips the gate, with headroom above CI jitter on millisecond runs.
DEFAULT_TIMING_TOLERANCE = 1.75

#: Median-normalization of timing ratios needs at least this many
#: compared scenarios; below it the median *is* (dominated by) the row
#: under test and normalization would hide any single-scenario slowdown.
MIN_RATIOS_FOR_NORMALIZATION = 3

_CHECK_PASS = "pass"
_CHECK_FAIL = "fail"
_CHECK_SKIPPED = "skipped"

#: Sparkline colors (colorblind-safe gray/blue pair).
_BASELINE_COLOR = "#8a8a8a"
_CANDIDATE_COLOR = "#2f6f9f"


@dataclasses.dataclass(frozen=True)
class NoiseBands:
    """The pre-registered regression policy (see the module docstring).

    Attributes
    ----------
    timing_tolerance:
        Relative wall-clock tolerance (> 1); applied to the normalized
        per-trial timing ratio.
    normalize_timing:
        Divide per-scenario timing ratios by their median (the
        machine-speed factor) before gating, whenever at least
        :data:`MIN_RATIOS_FOR_NORMALIZATION` scenarios compare.  Set
        False for same-machine comparisons where raw ratios are
        meaningful, including whole-suite slowdowns the median would
        absorb.
    """

    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE
    normalize_timing: bool = True

    def __post_init__(self) -> None:
        if not self.timing_tolerance > 1.0:
            raise ConfigurationError(
                "timing_tolerance must be > 1 (it is a slowdown factor), "
                f"got {self.timing_tolerance}"
            )


@dataclasses.dataclass(frozen=True)
class Check:
    """One named comparison applied to a scenario row."""

    name: str
    outcome: str  # pass | fail | skipped
    detail: str


@dataclasses.dataclass
class ScenarioRow:
    """One joined (or unjoined) scenario in the report."""

    name: str
    status: str  # ok | regression | baseline-only | candidate-only | config-changed
    identity: Optional[str] = None
    baseline: Optional[Mapping[str, Any]] = None
    candidate: Optional[Mapping[str, Any]] = None
    checks: list = dataclasses.field(default_factory=list)
    timing_ratio: Optional[float] = None
    normalized_timing_ratio: Optional[float] = None


@dataclasses.dataclass
class TrendReport:
    """The full comparison result: rows + policy + derived verdict."""

    rows: list
    bands: NoiseBands
    machine_factor: Optional[float]
    baseline_label: str
    candidate_label: str

    @property
    def verdict(self) -> str:
        """``"regression"`` iff any compared row failed a gate."""
        if any(row.status == "regression" for row in self.rows):
            return "regression"
        return "ok"

    @property
    def counts(self) -> dict[str, int]:
        counts = {
            "compared": 0,
            "ok": 0,
            "regressions": 0,
            "baseline_only": 0,
            "candidate_only": 0,
            "config_changed": 0,
        }
        for row in self.rows:
            if row.status in ("ok", "regression"):
                counts["compared"] += 1
                counts["ok" if row.status == "ok" else "regressions"] += 1
            else:
                counts[row.status.replace("-", "_")] += 1
        return counts


def artifact_identity(payload: Mapping[str, Any]) -> str:
    """The execution-config identity of one bench payload.

    Rebuilds the scenario from the artifact's ``scenario`` block (the
    block is documented as sufficient for exactly that) and digests its
    :meth:`~repro.experiments.scenarios.Scenario.execution_config` --
    the PR 5 seam, so every axis that changes what a run *means*
    (strategy, engine, rng, collision model, margin) changes the key,
    while presentation fields (description, tags) do not.
    """
    scenario = Scenario.from_dict(payload["scenario"])
    return scenario.execution_config().identity()


def load_artifact_set(
    path: Union[str, pathlib.Path]
) -> dict[str, dict[str, Any]]:
    """Load a directory of ``BENCH_*.json`` files (or one file) by name.

    Every file is schema-validated on the way in, so a malformed
    artifact fails here with a one-line :class:`ConfigurationError`
    naming the file, before any comparison runs.
    """
    path = pathlib.Path(path)
    if path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
        if not files:
            raise ConfigurationError(
                f"no BENCH_*.json artifacts found in directory {path}"
            )
    elif path.is_file():
        files = [path]
    else:
        raise ConfigurationError(
            f"artifact path {path} is neither a file nor a directory"
        )
    artifacts: dict[str, dict[str, Any]] = {}
    for file in files:
        payload = load_bench(file)
        name = payload["scenario"]["name"]
        if name in artifacts:
            raise ConfigurationError(
                f"duplicate artifact for scenario {name!r} in {path}"
            )
        artifacts[name] = payload
    return artifacts


def build_report(
    baseline_path: Union[str, pathlib.Path],
    candidate_path: Union[str, pathlib.Path],
    bands: Optional[NoiseBands] = None,
) -> TrendReport:
    """Load both artifact sets from disk and compare them."""
    baseline = load_artifact_set(baseline_path)
    candidate = load_artifact_set(candidate_path)
    return compare_artifact_sets(
        baseline,
        candidate,
        bands,
        baseline_label=str(baseline_path),
        candidate_label=str(candidate_path),
    )


def compare_artifact_sets(
    baseline: Mapping[str, Mapping[str, Any]],
    candidate: Mapping[str, Mapping[str, Any]],
    bands: Optional[NoiseBands] = None,
    *,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> TrendReport:
    """Join two artifact sets by (scenario name, config identity).

    Scenarios present on only one side are reported (``baseline-only``
    / ``candidate-only``) but never fail the gate: the candidate is
    typically a small re-run subset of a large committed baseline.  A
    name that joins under a *different* config identity is reported as
    ``config-changed`` and excluded from gating -- the baseline artifact
    is stale, which is a review problem, not a runtime regression.
    """
    bands = bands if bands is not None else NoiseBands()
    rows: list[ScenarioRow] = []
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name)
        cand = candidate.get(name)
        if base is None:
            rows.append(ScenarioRow(
                name=name, status="candidate-only", candidate=cand,
                identity=artifact_identity(cand),
            ))
            continue
        if cand is None:
            rows.append(ScenarioRow(
                name=name, status="baseline-only", baseline=base,
                identity=artifact_identity(base),
            ))
            continue
        base_id = artifact_identity(base)
        cand_id = artifact_identity(cand)
        if base_id != cand_id:
            rows.append(ScenarioRow(
                name=name, status="config-changed", baseline=base,
                candidate=cand, identity=cand_id,
                checks=[Check(
                    "identity", _CHECK_FAIL,
                    f"execution-config identity changed "
                    f"{base_id} -> {cand_id}; artifacts are not comparable "
                    "(re-commit the baseline)",
                )],
            ))
            continue
        row = ScenarioRow(
            name=name, status="ok", baseline=base, candidate=cand,
            identity=cand_id,
        )
        row.checks.append(_rounds_check(base, cand))
        row.timing_ratio = _timing_ratio(base, cand)
        rows.append(row)

    machine_factor = _machine_factor(rows, bands)
    for row in rows:
        if row.status not in ("ok", "regression"):
            continue
        row.checks.append(
            _timing_check(row, bands, machine_factor)
        )
        if any(check.outcome == _CHECK_FAIL for check in row.checks):
            row.status = "regression"
    return TrendReport(
        rows=rows,
        bands=bands,
        machine_factor=machine_factor,
        baseline_label=baseline_label,
        candidate_label=candidate_label,
    )


# ----------------------------------------------------------------------
# the individual gates
# ----------------------------------------------------------------------
def _rounds_check(
    base: Mapping[str, Any], cand: Mapping[str, Any]
) -> Check:
    """Exact results-block agreement, applicable under replay only."""
    base_rng = base.get("rng", "replay")
    cand_rng = cand.get("rng", "replay")
    if base_rng != "replay" or cand_rng != "replay":
        return Check(
            "replay-rounds", _CHECK_SKIPPED,
            f"not gated: rng={cand_rng} (replay-exactness applies to "
            "replay artifacts only; decoupled parity is distributional)",
        )
    base_trials, cand_trials = base["trials"], cand["trials"]
    if (
        base_trials["base_seed"] != cand_trials["base_seed"]
        or base_trials["vectorized"] != cand_trials["vectorized"]
    ):
        return Check(
            "replay-rounds", _CHECK_SKIPPED,
            "not gated: seed/trial mismatch (baseline seed="
            f"{base_trials['base_seed']} x{base_trials['vectorized']}, "
            f"candidate seed={cand_trials['base_seed']} "
            f"x{cand_trials['vectorized']})",
        )
    base_results, cand_results = base["results"], cand["results"]
    if base_results["success_rate"] != cand_results["success_rate"]:
        return Check(
            "replay-rounds", _CHECK_FAIL,
            "replay drift: results.success_rate "
            f"{base_results['success_rate']} -> "
            f"{cand_results['success_rate']}",
        )
    series_keys = sorted(
        key
        for key in base_results
        if key in cand_results and key not in ("success_rate", "per_trial")
    )
    for key in series_keys:
        for stat in ("mean", "min", "max"):
            base_value = base_results[key][stat]
            cand_value = cand_results[key][stat]
            if base_value != cand_value:
                return Check(
                    "replay-rounds", _CHECK_FAIL,
                    f"replay drift: results.{key}.{stat} "
                    f"{base_value} -> {cand_value} (replay runs are "
                    "deterministic, so any drift is a real regression)",
                )
    return Check(
        "replay-rounds", _CHECK_PASS,
        f"results identical across {', '.join(series_keys)} "
        f"({base_trials['vectorized']} trials, "
        f"seed {base_trials['base_seed']})",
    )


def _timing_ratio(
    base: Mapping[str, Any], cand: Mapping[str, Any]
) -> Optional[float]:
    base_time = base["timing"]["vectorized_seconds_per_trial"]
    cand_time = cand["timing"]["vectorized_seconds_per_trial"]
    if base_time <= 0.0:
        return None
    return cand_time / base_time


def _machine_factor(
    rows: Sequence[ScenarioRow], bands: NoiseBands
) -> Optional[float]:
    ratios = [
        row.timing_ratio
        for row in rows
        if row.status in ("ok", "regression") and row.timing_ratio is not None
    ]
    if not bands.normalize_timing:
        return None
    if len(ratios) < MIN_RATIOS_FOR_NORMALIZATION:
        return None
    return statistics.median(ratios)


def _timing_check(
    row: ScenarioRow, bands: NoiseBands, machine_factor: Optional[float]
) -> Check:
    if row.timing_ratio is None:
        return Check(
            "wall-clock", _CHECK_SKIPPED,
            "not gated: baseline records no positive per-trial time",
        )
    factor = machine_factor if machine_factor else 1.0
    row.normalized_timing_ratio = row.timing_ratio / factor
    scope = (
        f"machine-normalized by median ratio {factor:.3f}"
        if machine_factor
        else "raw ratio (no normalization)"
    )
    detail = (
        f"per-trial wall-clock {row.timing_ratio:.2f}x baseline, "
        f"{row.normalized_timing_ratio:.2f}x after {scope}; "
        f"tolerance {bands.timing_tolerance:g}x"
    )
    if row.normalized_timing_ratio > bands.timing_tolerance:
        return Check("wall-clock", _CHECK_FAIL, detail)
    return Check("wall-clock", _CHECK_PASS, detail)


# ----------------------------------------------------------------------
# the machine-readable verdict
# ----------------------------------------------------------------------
def verdict_payload(report: TrendReport) -> dict[str, Any]:
    """The report as a JSON-serialisable verdict document."""
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "verdict": report.verdict,
        "baseline": report.baseline_label,
        "candidate": report.candidate_label,
        "policy": {
            "rounds": "exact-under-replay",
            "timing_tolerance": report.bands.timing_tolerance,
            "normalize_timing": report.bands.normalize_timing,
            "machine_factor": report.machine_factor,
        },
        "counts": report.counts,
        "scenarios": [
            {
                "name": row.name,
                "identity": row.identity,
                "status": row.status,
                "timing_ratio": row.timing_ratio,
                "normalized_timing_ratio": row.normalized_timing_ratio,
                "checks": [
                    {
                        "check": check.name,
                        "outcome": check.outcome,
                        "detail": check.detail,
                    }
                    for check in row.checks
                ],
            }
            for row in report.rows
        ],
    }


# ----------------------------------------------------------------------
# markdown + SVG rendering
# ----------------------------------------------------------------------
def render_markdown(report: TrendReport) -> str:
    """The report as deterministic markdown (inline SVG sparklines).

    No timestamps, no environment strings, stable ordering and fixed
    float formatting: rendering the same two artifact sets twice yields
    byte-identical output (pinned by ``tests/test_report.py``).
    """
    counts = report.counts
    lines = [
        "# Benchmark trend report",
        "",
        f"- Baseline: `{report.baseline_label}` "
        f"({_count_with_noun(len([r for r in report.rows if r.baseline is not None]), 'artifact')})",
        f"- Candidate: `{report.candidate_label}` "
        f"({_count_with_noun(len([r for r in report.rows if r.candidate is not None]), 'artifact')})",
        f"- **Verdict: {report.verdict.upper()}** — "
        f"{counts['compared']} compared, {counts['regressions']} "
        f"regression(s), {counts['baseline_only']} baseline-only, "
        f"{counts['candidate_only']} new, {counts['config_changed']} "
        "config-changed",
        "- Policy: replay round counts gated exactly; wall-clock "
        f"tolerance ×{report.bands.timing_tolerance:g} "
        + (
            f"(machine-normalized, median ratio {report.machine_factor:.3f})"
            if report.machine_factor
            else "(raw ratios; no machine normalization)"
        ),
        "",
        "## Summary",
        "",
        "| scenario | axes | rounds mean | Δrounds | ms/trial | ×time | "
        "speedup | status |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in report.rows:
        lines.append(_summary_row(row))
    compared = [row for row in report.rows if row.status in ("ok", "regression")]
    if compared:
        lines += ["", "## Scenario trends", ""]
        for row in compared:
            lines += _detail_section(row)
    config_changed = [row for row in report.rows if row.status == "config-changed"]
    if config_changed:
        lines += ["", "## Config-changed (stale baselines, not gated)", ""]
        for row in config_changed:
            lines.append(f"- `{row.name}`: {row.checks[0].detail}")
    lines.append("")
    return "\n".join(lines)


def _count_with_noun(count: int, noun: str) -> str:
    return f"{count} {noun}{'' if count == 1 else 's'}"


def _axes(payload: Mapping[str, Any]) -> str:
    """Non-default execution axes, compressed for the summary table."""
    scenario = payload["scenario"]
    axes = []
    if scenario.get("strategy", "skeleton") != "skeleton":
        axes.append(scenario["strategy"])
    engine = payload.get("engine", {})
    if engine:
        axes.append(engine["selected"])
    if payload.get("rng", "replay") != "replay":
        axes.append(payload["rng"])
    if scenario.get("algorithm") not in ("broadcast", None):
        axes.insert(0, scenario["algorithm"])
    return "·".join(axes) if axes else "defaults"


def _summary_row(row: ScenarioRow) -> str:
    def rounds_mean(payload):
        return payload["results"]["rounds"]["mean"]

    def ms_per_trial(payload):
        return payload["timing"]["vectorized_seconds_per_trial"] * 1000.0

    def speedup(payload):
        value = payload["timing"]["speedup"]
        return f"{value:.1f}x" if value is not None else "—"

    if row.status == "baseline-only":
        base = row.baseline
        return (
            f"| {row.name} | {_axes(base)} | {rounds_mean(base):.1f} | — | "
            f"{ms_per_trial(base):.2f} | — | {speedup(base)} | "
            "baseline-only |"
        )
    if row.status == "candidate-only":
        cand = row.candidate
        return (
            f"| {row.name} | {_axes(cand)} | {rounds_mean(cand):.1f} | new | "
            f"{ms_per_trial(cand):.2f} | — | {speedup(cand)} | new |"
        )
    base, cand = row.baseline, row.candidate
    base_rounds, cand_rounds = rounds_mean(base), rounds_mean(cand)
    if base_rounds:
        delta = (cand_rounds - base_rounds) / base_rounds * 100.0
        delta_text = "=" if cand_rounds == base_rounds else f"{delta:+.1f}%"
    else:
        delta_text = "—"
    times = f"{ms_per_trial(base):.2f} → {ms_per_trial(cand):.2f}"
    ratio = (
        f"{row.normalized_timing_ratio:.2f}"
        if row.normalized_timing_ratio is not None
        else "—"
    )
    status = "**REGRESSION**" if row.status == "regression" else row.status
    if row.status == "config-changed":
        status = "config-changed"
    return (
        f"| {row.name} | {_axes(cand)} | "
        f"{base_rounds:.1f} → {cand_rounds:.1f} | {delta_text} | {times} | "
        f"{ratio} | {speedup(base)} → {speedup(cand)} | {status} |"
    )


def _detail_section(row: ScenarioRow) -> list[str]:
    base, cand = row.baseline, row.candidate
    lines = [f"### {row.name}", ""]
    lines.append(
        f"- identity `{row.identity}` · {_axes(cand)} · "
        f"n={cand['topology']['num_nodes']}"
    )
    for label, payload in (("baseline", base), ("candidate", cand)):
        rounds = payload["results"]["rounds"]
        stats = (
            f"mean {rounds['mean']:.1f}, min {rounds['min']:.0f}, "
            f"max {rounds['max']:.0f}"
        )
        per_trial = payload["results"].get("per_trial")
        if per_trial:
            series = per_trial["rounds"]
            stats += (
                f", p50 {_percentile(series, 50):.0f}, "
                f"p90 {_percentile(series, 90):.0f}"
            )
        lines.append(
            f"- {label} rounds: {stats} · success rate "
            f"{payload['results']['success_rate']:.2f}"
        )
    for check in row.checks:
        marker = {"pass": "✓", "fail": "✗", "skipped": "·"}[check.outcome]
        lines.append(f"- {marker} `{check.name}`: {check.detail}")
    lines += ["", _trend_svg(base, cand), "",
              "  <sub>rounds per trial — baseline gray, candidate blue"
              "</sub>", ""]
    return lines


def _percentile(values: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile (q in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        raise ConfigurationError("percentile of an empty series")
    rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil without float
    return float(ordered[min(rank, len(ordered)) - 1])


def _trend_svg(
    base: Mapping[str, Any], cand: Mapping[str, Any]
) -> str:
    """Sparkline of per-trial rounds, or a min/mean/max range plot.

    Hand-rolled SVG, stdlib only; all coordinates are formatted with a
    fixed precision so the markup is deterministic.
    """
    base_series = (base["results"].get("per_trial") or {}).get("rounds")
    cand_series = (cand["results"].get("per_trial") or {}).get("rounds")
    if base_series and cand_series:
        return _sparkline_svg([
            (_BASELINE_COLOR, [float(v) for v in base_series]),
            (_CANDIDATE_COLOR, [float(v) for v in cand_series]),
        ])
    return _range_svg([
        (_BASELINE_COLOR, base["results"]["rounds"]),
        (_CANDIDATE_COLOR, cand["results"]["rounds"]),
    ])


def _svg_open(width: int, height: int) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">'
    )


def _sparkline_svg(
    series: Sequence[tuple], width: int = 200, height: int = 42,
    pad: float = 4.0,
) -> str:
    values = [value for _, points in series for value in points]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    parts = [_svg_open(width, height)]
    for color, points in series:
        count = len(points)
        if count == 1:
            points = [points[0], points[0]]
            count = 2
        step = (width - 2 * pad) / (count - 1)
        coords = " ".join(
            f"{pad + index * step:.1f},"
            f"{height - pad - (value - low) * (height - 2 * pad) / span:.1f}"
            for index, value in enumerate(points)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{coords}"/>'
        )
    parts.append("</svg>")
    return "  " + "".join(parts)


def _range_svg(
    series: Sequence[tuple], width: int = 200, height: int = 42,
    pad: float = 6.0,
) -> str:
    """Horizontal min–max bars with a mean dot, one lane per series."""
    values = [
        block[stat] for _, block in series for stat in ("min", "mean", "max")
    ]
    low, high = min(values), max(values)
    span = (high - low) or 1.0

    def x_of(value: float) -> float:
        return pad + (value - low) * (width - 2 * pad) / span

    parts = [_svg_open(width, height)]
    lane_height = height / len(series)
    for lane, (color, block) in enumerate(series):
        y = lane_height * (lane + 0.5)
        parts.append(
            f'<line x1="{x_of(block["min"]):.1f}" y1="{y:.1f}" '
            f'x2="{x_of(block["max"]):.1f}" y2="{y:.1f}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<circle cx="{x_of(block["mean"]):.1f}" cy="{y:.1f}" r="3.5" '
            f'fill="{color}"/>'
        )
    parts.append("</svg>")
    return "  " + "".join(parts)


def dump_verdict(
    report: TrendReport, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write the machine-readable verdict document as JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(verdict_payload(report), indent=2, sort_keys=True) + "\n"
    )
    return path
