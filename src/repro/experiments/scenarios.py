"""The benchmark scenario registry.

A :class:`Scenario` is a fully specified, reproducible experiment: a
named topology (family + arguments, resolvable through
:data:`repro.topology.FAMILIES`), an algorithm, a collision model, the
spontaneous-transmission switch, and trial/seed defaults.  Scenarios are
plain data -- they serialise into the ``scenario`` block of a
``BENCH_*.json`` file and can be rebuilt from it exactly.

The :data:`DEFAULT_REGISTRY` sweeps the regimes the paper's bounds are
stated in: paths (``n = D + 1``, where spontaneous transmissions help
most), grids (``n = Θ(D²)``), stars and complete graphs (constant ``D``,
maximal contention), trees (``D = Θ(log n)``), clique corridors (the
Section 6 shape) and seeded random families -- each at small and medium
``n``, for broadcast and leader election, plus collision-detection and
classical (non-spontaneous) baseline variants.

>>> scenario = get_scenario("broadcast-path-n32")
>>> scenario.algorithm, scenario.family
('broadcast', 'path')
>>> scenario.build_graph().num_nodes
32
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Mapping, Optional

from repro.errors import ConfigurationError
from repro.dynamics import (
    DynamicsSpec,
    EdgeChurn,
    JammingWindows,
    NodeCrash,
    coerce_dynamics,
)
from repro.network.graph import Graph
from repro.network.radio import CollisionModel
from repro.api import DEFAULT_ALGORITHMS, ExecutionConfig
from repro.core.compete import STRATEGIES
from repro.core.parameters import DEFAULT_MARGIN
from repro.simulation.rng import RNG_MODES
from repro.simulation.vectorized import ENGINES
from repro import topology

def __getattr__(name: str):
    # ``ALGORITHMS`` (the algorithm names a scenario may benchmark) is a
    # live view of :data:`repro.api.DEFAULT_ALGORITHMS`, not an
    # import-time snapshot: a baseline registered after import is
    # immediately addressable from scenarios *and* visible here.
    if name == "ALGORITHMS":
        return DEFAULT_ALGORITHMS.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Families whose generators draw randomness.  Scenarios over these must
#: pin an explicit ``seed`` in ``topology_args``: the persisted scenario
#: block is documented as rebuilding the topology *exactly*, which an
#: unseeded random generator would silently break.
RANDOM_FAMILIES = frozenset(
    {"gnp", "geometric", "clustered", "random-tree", "diameter-controlled"}
)

_COLLISION_MODELS = {model.value: model for model in CollisionModel}


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One reproducible benchmark configuration.

    Attributes
    ----------
    name:
        Unique registry key (also the ``BENCH_<name>.json`` stem).
    description:
        One line shown by ``python -m repro.experiments list``.
    family:
        Topology family name, a key of :data:`repro.topology.FAMILIES`.
    topology_args:
        Keyword arguments for the family generator (JSON-serialisable).
    algorithm:
        One of :data:`ALGORITHMS`.
    collision_model:
        ``"no-detection"`` (the paper's model) or ``"with-detection"``.
    spontaneous:
        Whether uninformed nodes transmit from round 0 (the paper's
        distinguishing assumption); the classical baseline sets False.
    strategy:
        The Compete inner-loop strategy, one of
        :data:`repro.core.compete.STRATEGIES`: ``"skeleton"`` (the
        uniform-Decay baseline) or ``"clustered"`` (the Lemma 2.3
        cost-charged cluster schedule).  Scenario pairs differing only
        here measure the strategy's round-count delta.
    engine:
        Vectorized kernel selector, one of
        :data:`repro.simulation.vectorized.ENGINES`: ``"auto"`` (the
        default; the edge-density heuristic picks dense below ~10³ nodes
        and sparse CSR above), ``"dense"`` or ``"sparse"``.  The kernels
        are bit-for-bit equivalent, so this only affects time and
        memory; the benchmark payload records which one actually ran.
    rng:
        Randomness policy, one of
        :data:`repro.simulation.rng.RNG_MODES`: ``"replay"`` (the
        default; the vectorized engine replays the reference runner's
        per-node streams, so backend agreement is round-exact) or
        ``"decoupled"`` (the counter-based fast mode; replay parity is
        distributional only, enforced by the statistical test layer).
        Scenarios too large for stream replay set ``"decoupled"``.
    trials:
        Default number of seeded trials per benchmark run.
    seed:
        Default base seed; trial ``i`` uses ``seed + i``.
    margin:
        Schedule margin forwarded to
        :class:`~repro.core.parameters.CompeteParameters`.
    dynamics:
        Optional :class:`repro.dynamics.DynamicsSpec` (or its
        ``describe()`` mapping, normalised to the spec): the seeded
        fault environment the scenario runs under.  ``None`` -- the
        static network -- for every classic scenario; robustness
        scenarios persist the spec into the artifact's scenario block
        and it joins the execution identity, so a faulty baseline can
        never be compared against its static twin by accident.
    tags:
        Free-form labels for ``--tag`` filtering (e.g. ``"smoke"``,
        ``"large"``, ``"dynamics"``).
    """

    name: str
    description: str
    family: str
    topology_args: Mapping[str, Any]
    algorithm: str
    collision_model: str = CollisionModel.NO_DETECTION.value
    spontaneous: bool = True
    strategy: str = "skeleton"
    engine: str = "auto"
    rng: str = "replay"
    trials: int = 8
    seed: int = 2017
    margin: float = DEFAULT_MARGIN
    dynamics: Optional[DynamicsSpec] = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        # Resolving through the registry both rejects unknown names and
        # enforces the algorithm's declared capabilities (supported
        # collision models, spontaneous-transmission support) at
        # registration time rather than mid-benchmark.
        algorithm = DEFAULT_ALGORITHMS.get(self.algorithm)
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.rng not in RNG_MODES:
            raise ConfigurationError(
                f"rng must be one of {RNG_MODES}, got {self.rng!r}"
            )
        if self.family not in topology.FAMILIES:
            known = ", ".join(sorted(topology.FAMILIES))
            raise ConfigurationError(
                f"unknown topology family {self.family!r}; known: {known}"
            )
        if self.collision_model not in _COLLISION_MODELS:
            raise ConfigurationError(
                "collision_model must be one of "
                f"{sorted(_COLLISION_MODELS)}, got {self.collision_model!r}"
            )
        algorithm.check(
            collision_model=self.collision(), spontaneous=self.spontaneous
        )
        object.__setattr__(self, "dynamics", coerce_dynamics(self.dynamics))
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        if self.family in RANDOM_FAMILIES and "seed" not in self.topology_args:
            raise ConfigurationError(
                f"scenario {self.name!r}: random family {self.family!r} "
                "requires an explicit 'seed' in topology_args so the "
                "persisted scenario rebuilds the same topology"
            )

    def build_graph(self) -> Graph:
        """Instantiate the scenario's topology."""
        return topology.make_topology(self.family, **dict(self.topology_args))

    def collision(self) -> CollisionModel:
        """The collision model as the enum the network layer uses."""
        return _COLLISION_MODELS[self.collision_model]

    def execution_config(
        self,
        *,
        backend: str = "vectorized",
        engine: Optional[str] = None,
        rng: Optional[str] = None,
    ) -> ExecutionConfig:
        """The scenario's execution axes as one :class:`ExecutionConfig`.

        The scenario's persisted flat fields (``strategy``, ``engine``,
        ``rng``, ``collision_model``, ``margin``) stay the JSON form;
        this is the runtime form every execution path consumes.
        ``backend``, ``engine`` and ``rng`` may be overridden without
        mutating the scenario.
        """
        return ExecutionConfig(
            backend=backend,
            engine=engine if engine is not None else self.engine,
            strategy=self.strategy,
            collision_model=self.collision(),
            margin=self.margin,
            rng=rng if rng is not None else self.rng,
            dynamics=self.dynamics,
        )

    def to_dict(self) -> dict[str, Any]:
        """The JSON-serialisable form persisted into ``BENCH_*.json``."""
        data = {
            "name": self.name,
            "description": self.description,
            "family": self.family,
            "topology_args": dict(self.topology_args),
            "algorithm": self.algorithm,
            "collision_model": self.collision_model,
            "spontaneous": self.spontaneous,
            "strategy": self.strategy,
            "engine": self.engine,
            "rng": self.rng,
            "trials": self.trials,
            "seed": self.seed,
            "margin": self.margin,
            "tags": list(self.tags),
        }
        # Emitted only when set, so every pre-dynamics artifact's
        # scenario block round-trips byte-identically.
        if self.dynamics is not None:
            data["dynamics"] = self.dynamics.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            family=data["family"],
            topology_args=dict(data.get("topology_args", {})),
            algorithm=data["algorithm"],
            collision_model=data.get(
                "collision_model", CollisionModel.NO_DETECTION.value
            ),
            spontaneous=bool(data.get("spontaneous", True)),
            strategy=str(data.get("strategy", "skeleton")),
            engine=str(data.get("engine", "auto")),
            rng=str(data.get("rng", "replay")),
            trials=int(data.get("trials", 8)),
            seed=int(data.get("seed", 2017)),
            margin=float(data.get("margin", DEFAULT_MARGIN)),
            dynamics=data.get("dynamics"),
            tags=tuple(data.get("tags", ())),
        )


class ScenarioRegistry:
    """A named collection of scenarios with filtering.

    The module-level :data:`DEFAULT_REGISTRY` holds the built-in sweep;
    downstream code can also build private registries (tests do):

    >>> registry = ScenarioRegistry()
    >>> _ = registry.register(Scenario(
    ...     name="demo", description="tiny demo", family="path",
    ...     topology_args={"num_nodes": 8}, algorithm="broadcast"))
    >>> "demo" in registry and len(registry) == 1
    True
    """

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add ``scenario``; duplicate names are rejected."""
        if scenario.name in self._scenarios:
            raise ConfigurationError(
                f"scenario {scenario.name!r} is already registered"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up a scenario by exact name."""
        try:
            return self._scenarios[name]
        except KeyError:
            hint = ", ".join(sorted(self._scenarios)) or "(registry is empty)"
            raise ConfigurationError(
                f"unknown scenario {name!r}; known scenarios: {hint}"
            ) from None

    def select(
        self,
        match: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> list[Scenario]:
        """Scenarios whose name contains ``match`` and tags include ``tag``."""
        chosen = []
        for name in sorted(self._scenarios):
            scenario = self._scenarios[name]
            if match is not None and match not in name:
                continue
            if tag is not None and tag not in scenario.tags:
                continue
            chosen.append(scenario)
        return chosen

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.select())


def _populate(registry: ScenarioRegistry) -> None:
    """Register the built-in topology x regime x algorithm sweep."""

    def add(name, description, family, args, algorithm, **kwargs):
        registry.register(
            Scenario(
                name=name,
                description=description,
                family=family,
                topology_args=args,
                algorithm=algorithm,
                **kwargs,
            )
        )

    # --- broadcast: the n = D + 1 extreme (spontaneous transmissions
    # matter most) -------------------------------------------------------
    add("broadcast-path-n32", "path, n=32=D+1", "path",
        {"num_nodes": 32}, "broadcast", tags=("smoke",))
    add("broadcast-path-n256", "path, n=256=D+1", "path",
        {"num_nodes": 256}, "broadcast")
    add("broadcast-path-n256-classical",
        "path, n=256, classical model (no spontaneous transmissions)",
        "path", {"num_nodes": 256}, "broadcast", spontaneous=False,
        tags=("classical",))

    # --- broadcast: constant-D, maximal contention ----------------------
    add("broadcast-star-n32", "star, n=32, D=2", "star",
        {"num_leaves": 31}, "broadcast", tags=("smoke",))
    add("broadcast-star-n256", "star, n=256, D=2", "star",
        {"num_leaves": 255}, "broadcast")

    # --- broadcast: n = Theta(D^2) grids --------------------------------
    add("broadcast-grid-n64", "8x8 grid, n=64", "grid",
        {"rows": 8, "cols": 8}, "broadcast", tags=("smoke",))
    add("broadcast-grid-n256", "16x16 grid, n=256", "grid",
        {"rows": 16, "cols": 16}, "broadcast")
    add("broadcast-grid-n1024", "32x32 grid, n=1024", "grid",
        {"rows": 32, "cols": 32}, "broadcast", trials=4, tags=("large",))
    add("broadcast-grid-n256-detect",
        "16x16 grid with collision detection (baseline comparison model)",
        "grid", {"rows": 16, "cols": 16}, "broadcast",
        collision_model=CollisionModel.WITH_DETECTION.value,
        tags=("detect",))

    # --- broadcast: D = Theta(log n) trees and dense corridors ----------
    add("broadcast-tree-n255", "complete binary tree, depth 7, n=255",
        "binary-tree", {"depth": 7}, "broadcast")
    add("broadcast-cliquepath-n256",
        "32 cliques of 8 in a corridor (Section 6 shape), n=256",
        "path-of-cliques", {"num_cliques": 32, "clique_size": 8},
        "broadcast")
    add("broadcast-caterpillar-n256",
        "caterpillar: spine 16, 15 legs per node, n=256, D=17",
        "caterpillar", {"spine_length": 16, "legs_per_node": 15},
        "broadcast")

    # --- broadcast: seeded random deployments ---------------------------
    add("broadcast-gnp-n64", "connected G(64, 0.08)", "gnp",
        {"num_nodes": 64, "edge_probability": 0.08, "seed": 64},
        "broadcast", tags=("smoke", "random"))
    add("broadcast-gnp-n256", "connected G(256, 0.03)", "gnp",
        {"num_nodes": 256, "edge_probability": 0.03, "seed": 256},
        "broadcast", tags=("random",))
    add("broadcast-randomtree-n256", "uniform random tree, n=256",
        "random-tree", {"num_nodes": 256, "seed": 256}, "broadcast",
        tags=("random",))
    add("broadcast-geometric-n64",
        "random geometric deployment on the unit square, n=64",
        "geometric", {"num_nodes": 64, "seed": 64}, "broadcast",
        tags=("smoke", "random"))
    add("broadcast-geometric-n256",
        "random geometric deployment on the unit square, n=256",
        "geometric", {"num_nodes": 256, "seed": 256}, "broadcast",
        tags=("random",))
    add("broadcast-clustered-n96",
        "12 dense random clusters of 8 in a chain, n=96",
        "clustered",
        {"num_clusters": 12, "cluster_size": 8, "seed": 96},
        "broadcast", tags=("smoke", "random"))
    add("broadcast-clustered-n256",
        "32 dense random clusters of 8 in a chain, n=256",
        "clustered",
        {"num_clusters": 32, "cluster_size": 8, "seed": 256},
        "broadcast", tags=("random",))

    # --- skeleton-vs-clustered strategy comparisons ---------------------
    # Twins of the skeleton scenarios above, differing only in
    # ``strategy``; diffing the two artifacts isolates the round-count
    # delta of the Lemma 2.3 cost-charged schedules.
    add("broadcast-path-n256-clustered",
        "path, n=256=D+1, clustered strategy (vs broadcast-path-n256)",
        "path", {"num_nodes": 256}, "broadcast", strategy="clustered",
        tags=("clustered",))
    add("broadcast-grid-n256-clustered",
        "16x16 grid, clustered strategy (vs broadcast-grid-n256)",
        "grid", {"rows": 16, "cols": 16}, "broadcast",
        strategy="clustered", tags=("clustered",))
    add("broadcast-gnp-n256-clustered",
        "connected G(256, 0.03), clustered strategy "
        "(vs broadcast-gnp-n256)",
        "gnp", {"num_nodes": 256, "edge_probability": 0.03, "seed": 256},
        "broadcast", strategy="clustered", tags=("clustered", "random"))
    add("broadcast-grid-n64-clustered",
        "8x8 grid, clustered strategy (vs broadcast-grid-n64)",
        "grid", {"rows": 8, "cols": 8}, "broadcast",
        strategy="clustered", tags=("smoke", "clustered"))
    add("election-grid-n256-clustered",
        "16x16 grid election, clustered strategy "
        "(vs election-grid-n256)",
        "grid", {"rows": 16, "cols": 16}, "leader-election",
        spontaneous=False, strategy="clustered", trials=4,
        tags=("clustered",))

    # --- sparse-engine regime: n >= 4096 --------------------------------
    # Above the dense cutoff the auto heuristic selects the CSR engine;
    # these are the scenarios where the polylog term stops dominating the
    # O(D + log^6 n) claims.  The n=16384 variants ("xlarge") are too big
    # for the dense engine (a 16384^2 float32 matrix alone is 1 GiB) and
    # far too big for the reference runner, so they are run with
    # --skip-reference and lean on the equivalence harness for
    # correctness.  Path variants use the clustered strategy: at
    # n = D + 1 the skeleton's ceil(log2 n)-step cycles would more than
    # double an already six-figure round count.
    add("broadcast-path-n4096", "path, n=4096=D+1, clustered schedule",
        "path", {"num_nodes": 4096}, "broadcast", strategy="clustered",
        trials=2, tags=("sparse",))
    add("broadcast-grid-n4096", "64x64 grid, n=4096", "grid",
        {"rows": 64, "cols": 64}, "broadcast", trials=4, tags=("sparse",))
    add("broadcast-tree-n4095", "complete binary tree, depth 11, n=4095",
        "binary-tree", {"depth": 11}, "broadcast", trials=4,
        tags=("sparse",))
    add("broadcast-gnp-n4096", "connected G(4096, 0.003)", "gnp",
        {"num_nodes": 4096, "edge_probability": 0.003, "seed": 4096},
        "broadcast", trials=4, tags=("sparse", "random"))
    add("broadcast-path-n16384",
        "path, n=16384=D+1, clustered schedule (dense engine cannot run "
        "this)", "path", {"num_nodes": 16384}, "broadcast",
        strategy="clustered", trials=2, tags=("sparse", "xlarge"))
    add("broadcast-grid-n16384", "128x128 grid, n=16384", "grid",
        {"rows": 128, "cols": 128}, "broadcast", trials=2,
        tags=("sparse", "xlarge"))
    add("broadcast-tree-n16383", "complete binary tree, depth 13, n=16383",
        "binary-tree", {"depth": 13}, "broadcast", trials=2,
        tags=("sparse", "xlarge"))
    add("broadcast-gnp-n16384", "connected G(16384, 0.001)", "gnp",
        {"num_nodes": 16384, "edge_probability": 0.001, "seed": 16384},
        "broadcast", trials=2, tags=("sparse", "xlarge", "random"))
    # The larger-n *random* family beyond gnp: a random geometric
    # deployment (the standard ad-hoc wireless abstraction) at the
    # sparse-regime scale, closing the sweep gap the ROADMAP named.
    add("broadcast-rgg-n4096",
        "random geometric deployment on the unit square, n=4096",
        "geometric", {"num_nodes": 4096, "seed": 4096}, "broadcast",
        trials=2, tags=("sparse", "random"))
    # Leader election in the sparse regime: the first election scenario
    # the CSR engine opens (the reference runner is far out of reach at
    # this scale, so it is benchmarked with --skip-reference like the
    # other sparse-regime scenarios).
    add("election-grid-n4096",
        "64x64 grid election, n=4096, sparse regime",
        "grid", {"rows": 64, "cols": 64}, "leader-election",
        spontaneous=False, trials=2, tags=("sparse",))

    # --- decoupled-rng regime: n >= ~10^5 -------------------------------
    # At this scale even the vectorized replay path is dominated by
    # refilling per-node draw blocks; the counter-based rng="decoupled"
    # mode is the only practical policy.  Its replay parity is
    # distributional (tests/test_rng_decoupled.py), so these scenarios
    # are run with --skip-reference.
    add("broadcast-grid-n16384-decoupled",
        "128x128 grid, decoupled counter rng "
        "(vs broadcast-grid-n16384 for the replay-mode twin)",
        "grid", {"rows": 128, "cols": 128}, "broadcast", trials=2,
        rng="decoupled", tags=("sparse", "xlarge", "decoupled"))
    add("broadcast-grid-n1e5", "316x316 grid, n=99856", "grid",
        {"rows": 316, "cols": 316}, "broadcast", trials=2,
        rng="decoupled", tags=("sparse", "xlarge", "decoupled"))
    add("broadcast-gnp-n1e5", "connected G(100000, 0.00012)", "gnp",
        {"num_nodes": 100000, "edge_probability": 0.00012,
         "seed": 100000},
        "broadcast", trials=2, rng="decoupled",
        tags=("sparse", "xlarge", "decoupled", "random"))

    # --- the classical repeated-Decay baseline --------------------------
    # Registered through repro.api.DEFAULT_ALGORITHMS like any future
    # prior-work protocol; twins of the spontaneous-broadcast scenarios
    # above, so the artifacts measure what spontaneous transmissions buy.
    add("decay-broadcast-path-n32",
        "classical repeated-Decay baseline on the n=32=D+1 path "
        "(vs broadcast-path-n32)",
        "path", {"num_nodes": 32}, "decay-broadcast", spontaneous=False,
        tags=("smoke", "baseline"))
    add("decay-broadcast-grid-n256",
        "classical repeated-Decay baseline on the 16x16 grid "
        "(vs broadcast-grid-n256)",
        "grid", {"rows": 16, "cols": 16}, "decay-broadcast",
        spontaneous=False, tags=("baseline",))

    # --- leader election -------------------------------------------------
    add("election-complete-n32", "complete graph, n=32", "complete",
        {"num_nodes": 32}, "leader-election", spontaneous=False,
        tags=("smoke",), trials=4)
    add("election-grid-n64", "8x8 grid, n=64", "grid",
        {"rows": 8, "cols": 8}, "leader-election", spontaneous=False,
        trials=4, tags=("smoke",))
    add("election-grid-n256", "16x16 grid, n=256", "grid",
        {"rows": 16, "cols": 16}, "leader-election", spontaneous=False,
        trials=4)
    add("election-gnp-n64", "connected G(64, 0.08)", "gnp",
        {"num_nodes": 64, "edge_probability": 0.08, "seed": 64},
        "leader-election", spontaneous=False, trials=4,
        tags=("random",))

    # --- fault injection / dynamic networks (repro.dynamics) -----------
    # Twins of the static scenarios above, differing only in the seeded
    # fault environment; diffing each pair against its static baseline
    # measures the degradation the churn/crash/jam process inflicts.
    # Fault decisions are counter hashes of (fault_seed, round, entity),
    # so the reference runner and both kernels replay the identical
    # trajectory and the round-exact agreement contract still holds.
    _grid_churn = DynamicsSpec(
        fault_seed=2017, models=(EdgeChurn(p_down=0.05, p_up=0.35),)
    )
    add("broadcast-grid-n64-churn",
        "8x8 grid under Markov edge churn "
        "(~12.5% links down; vs broadcast-grid-n64)",
        "grid", {"rows": 8, "cols": 8}, "broadcast",
        dynamics=_grid_churn, tags=("smoke", "dynamics"))
    add("broadcast-grid-n256-churn",
        "16x16 grid under Markov edge churn "
        "(~12.5% links down; vs broadcast-grid-n256)",
        "grid", {"rows": 16, "cols": 16}, "broadcast",
        dynamics=_grid_churn, tags=("dynamics",))
    add("broadcast-gnp-n1024-crash",
        "connected G(1024, 0.008) under node crash/recovery "
        "(~7.4% nodes down), sparse kernel",
        "gnp", {"num_nodes": 1024, "edge_probability": 0.008,
                "seed": 1024},
        "broadcast", engine="sparse", trials=4,
        dynamics=DynamicsSpec(
            fault_seed=1024,
            models=(NodeCrash(p_crash=0.02, p_recover=0.25),),
        ),
        tags=("dynamics", "random"))
    add("election-grid-n256-jam",
        "16x16 grid election under periodic jamming "
        "(25% victims, 2-of-8 rounds; vs election-grid-n256)",
        "grid", {"rows": 16, "cols": 16}, "leader-election",
        spontaneous=False, trials=4,
        dynamics=DynamicsSpec(
            fault_seed=2017,
            models=(JammingWindows(
                period=8, duration=2, offset=4, fraction=0.25),),
        ),
        tags=("dynamics",))

    # --- service cold/warm probe pair ------------------------------------
    # Identical execution axes on the identical 64x64 grid, so both map
    # to one resolution-cache key (identity excludes the name): running
    # "cold" then "warm" through ``repro.service`` measures exactly the
    # compile-versus-cache-hit gap the BENCH_service-* artifacts record.
    add("service-cold",
        "64x64 grid, n=4096: first (cache-cold) service request",
        "grid", {"rows": 64, "cols": 64}, "broadcast", trials=2,
        tags=("service", "sparse"))
    add("service-warm",
        "64x64 grid, n=4096: repeat (cache-warm) service request",
        "grid", {"rows": 64, "cols": 64}, "broadcast", trials=2,
        tags=("service", "sparse"))


#: The built-in scenario sweep used by the CLI.
DEFAULT_REGISTRY = ScenarioRegistry()
_populate(DEFAULT_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up ``name`` in :data:`DEFAULT_REGISTRY`."""
    return DEFAULT_REGISTRY.get(name)


def iter_scenarios(
    match: Optional[str] = None, tag: Optional[str] = None
) -> list[Scenario]:
    """Filter :data:`DEFAULT_REGISTRY` (see :meth:`ScenarioRegistry.select`)."""
    return DEFAULT_REGISTRY.select(match=match, tag=tag)
