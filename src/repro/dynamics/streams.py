"""Counter-based fault decision streams.

Fault decisions are *environment* randomness, not trial randomness: a
link that drops in round 17 is down for every trial and every backend
running that configuration.  So the stream is keyed on
``(fault_seed, round, kind, entity)`` -- no trial axis -- using the same
splitmix64 counter-hash idiom as ``rng="decoupled"``
(:mod:`repro.simulation.rng`)::

    u(round, kind, entity) = bits_to_unit(mix64(mix64(base(kind)
                                          + round_key(round))
                                          + entity_key(entity)))

where ``base(kind)`` folds the fault seed (salted so it never collides
with a trial-seed lane) with the model's stream-lane index, and entity
``i`` -- an edge id for churn, a node index for crash and jamming -- uses
the same golden-ratio Weyl keys as the draw streams.  Every value is a
pure hash of its coordinates: the reference runner and both vectorized
kernels evaluate the identical words, so their fault decisions are
bit-identical by construction, and any round can be recomputed
independently (which is how :class:`~repro.dynamics.schedule.FaultSchedule`
replays Markov trajectories deterministically).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.simulation.rng import (
    GOLDEN_GAMMA,
    _MASK64,
    _mix64_int,
    bits_to_unit,
    mix64,
)

#: Salt folded into the fault seed so the fault-stream lanes can never
#: collide with the trial-draw lanes of ``rng="decoupled"`` even when
#: ``fault_seed`` equals a trial seed.  (The weight-2669 constant from
#: Pelle Evensen's mixer searches -- any fixed odd word would do; it only
#: has to differ from ``repro.simulation.rng._SEED_SALT``.)
FAULT_SALT = 0xD1B54A32D192ED03


class FaultStreams:
    """Per-``(round, kind, entity)`` uniforms for one fault seed.

    Stateless: :meth:`uniforms` is a pure function of its arguments, so
    calling it for any round, any number of times, in any order, always
    returns the same values.
    """

    def __init__(self, fault_seed: int) -> None:
        fault_seed = int(fault_seed)
        if fault_seed < 0:
            raise ConfigurationError(
                f"fault_seed must be >= 0, got {fault_seed}"
            )
        root = _mix64_int(fault_seed ^ FAULT_SALT)
        # One base per stream lane (see repro.dynamics.models CHURN /
        # CRASH / JAM); precomputing all three is three integer mixes.
        self._bases = tuple(
            _mix64_int((root + (kind + 1) * GOLDEN_GAMMA) & _MASK64)
            for kind in range(3)
        )
        self._fault_seed = fault_seed

    @property
    def fault_seed(self) -> int:
        return self._fault_seed

    def bits(
        self, round_number: int, kind: int, num_entities: int
    ) -> np.ndarray:
        """The raw ``uint64`` hash words: shape ``(num_entities,)``."""
        if round_number < 0:
            raise ConfigurationError(
                f"round_number must be >= 0, got {round_number}"
            )
        if not 0 <= kind < len(self._bases):
            raise ConfigurationError(
                f"kind must be in [0, {len(self._bases)}), got {kind}"
            )
        if num_entities < 0:
            raise ConfigurationError(
                f"num_entities must be >= 0, got {num_entities}"
            )
        round_key = _mix64_int((round_number + 1) * GOLDEN_GAMMA)
        state = _mix64_int((self._bases[kind] + round_key) & _MASK64)
        entity_keys = np.arange(
            1, num_entities + 1, dtype=np.uint64
        ) * np.uint64(GOLDEN_GAMMA)
        with np.errstate(over="ignore"):
            return mix64(np.uint64(state) + entity_keys)

    def uniforms(
        self, round_number: int, kind: int, num_entities: int
    ) -> np.ndarray:
        """One lane's uniform draws in ``[0, 1)`` for one round."""
        return bits_to_unit(self.bits(round_number, kind, num_entities))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultStreams(fault_seed={self._fault_seed})"
