"""``repro.dynamics``: deterministic fault injection for every backend.

The subsystem splits into a declarative half and a compiled half:

* :mod:`repro.dynamics.models` -- frozen :class:`FaultModel` parameter
  records (edge churn, node crash/recovery, jamming windows);
* :mod:`repro.dynamics.spec` -- :class:`DynamicsSpec`, the fault axis an
  :class:`~repro.api.ExecutionConfig` carries and ``identity()`` hashes;
* :mod:`repro.dynamics.streams` -- the splitmix64 counter-hash lanes
  keyed on ``(fault_seed, round, kind, entity)``, the reason every
  backend sees bit-identical fault decisions;
* :mod:`repro.dynamics.schedule` -- :class:`FaultSchedule`, the
  per-graph compilation that evolves the Markov chains and hands each
  round's :class:`RoundFaults` masks to the reference runner and both
  vectorized kernels.

Quick start::

    from repro.api import ExecutionConfig
    from repro.dynamics import DynamicsSpec, EdgeChurn

    config = ExecutionConfig(dynamics=DynamicsSpec(
        fault_seed=7, models=(EdgeChurn(p_down=0.05, p_up=0.35),)))
"""

from repro.dynamics.models import (
    CHURN,
    CRASH,
    JAM,
    MODEL_KINDS,
    EdgeChurn,
    FaultModel,
    JammingWindows,
    NodeCrash,
)
from repro.dynamics.schedule import FaultSchedule, RoundFaults
from repro.dynamics.spec import DynamicsSpec, coerce_dynamics
from repro.dynamics.streams import FAULT_SALT, FaultStreams

__all__ = [
    "CHURN",
    "CRASH",
    "JAM",
    "FAULT_SALT",
    "MODEL_KINDS",
    "DynamicsSpec",
    "EdgeChurn",
    "FaultModel",
    "FaultSchedule",
    "FaultStreams",
    "JammingWindows",
    "NodeCrash",
    "RoundFaults",
    "coerce_dynamics",
]
