"""Fault models: the declarative half of ``repro.dynamics``.

A :class:`FaultModel` is a frozen, JSON-round-trippable description of
one seeded fault *process* -- it carries the parameters (Markov
transition probabilities, jamming window geometry) but no state and no
randomness.  The stateful half lives in
:class:`repro.dynamics.schedule.FaultSchedule`, which compiles a
:class:`~repro.dynamics.spec.DynamicsSpec` (a fault seed plus up to one
model per kind) against a concrete graph into per-round fault masks.

Three kinds are defined, each drawing from its own counter-hash lane so
that adding one model never perturbs another model's decisions:

``edge-churn``
    Every undirected link is an independent two-state Markov chain:
    an up link goes down with ``p_down`` per round, a down link comes
    back with ``p_up``.  Transmissions are simply not heard over a down
    link.
``node-crash``
    Every node is an independent alive/crashed Markov chain
    (``p_crash`` / ``p_recover``).  A crashed node is "radio off": its
    protocol state is preserved and its draws still advance (so replay
    accounting is untouched), but it neither transmits nor hears
    anything until it recovers.
``jamming``
    A periodic adversarial window (``period``/``duration``/``offset``)
    during which a fixed victim set (a ``fraction`` of nodes, chosen
    once from the fault seed) cannot receive: victims hear noise --
    ``COLLISION`` under collision detection, ``SILENCE`` without it.
    Jamming attacks *listening* only; a jammed transmitter still
    transmits.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Mapping

from repro.errors import ConfigurationError

#: Counter-hash lane indices (the ``kind`` axis of
#: :class:`repro.dynamics.streams.FaultStreams`).
CHURN = 0
CRASH = 1
JAM = 2


def _probability(name: str, value: Any) -> float:
    number = float(value)
    if not 0.0 <= number <= 1.0:
        raise ConfigurationError(
            f"{name} must be a probability in [0, 1], got {value!r}"
        )
    return number


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """Base class: one named, parameterised fault process.

    Subclasses set ``kind`` (the serialised discriminator) and
    ``stream`` (their counter-hash lane) and are frozen dataclasses, so
    specs built from them are hashable and comparable by value.
    """

    kind: ClassVar[str]
    stream: ClassVar[int]

    def describe(self) -> dict[str, Any]:
        """The canonical JSON form: ``kind`` plus the parameters."""
        payload: dict[str, Any] = {"kind": self.kind}
        payload.update(dataclasses.asdict(self))
        return payload

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FaultModel":
        """Rebuild any model from :meth:`describe` output."""
        try:
            kind = data["kind"]
        except KeyError:
            raise ConfigurationError(
                f"fault model mapping needs a 'kind' key, got {dict(data)!r}"
            ) from None
        try:
            cls = _MODEL_KINDS[kind]
        except KeyError:
            known = ", ".join(sorted(_MODEL_KINDS))
            raise ConfigurationError(
                f"unknown fault model kind {kind!r}; known kinds: {known}"
            ) from None
        params = {key: value for key, value in data.items() if key != "kind"}
        try:
            return cls(**params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for fault model {kind!r}: {exc}"
            ) from None


@dataclasses.dataclass(frozen=True)
class EdgeChurn(FaultModel):
    """Per-round Markov up/down link states over every undirected edge."""

    p_down: float
    p_up: float

    kind: ClassVar[str] = "edge-churn"
    stream: ClassVar[int] = CHURN

    def __post_init__(self) -> None:
        object.__setattr__(self, "p_down", _probability("p_down", self.p_down))
        object.__setattr__(self, "p_up", _probability("p_up", self.p_up))
        if self.p_down > 0.0 and self.p_up == 0.0:
            raise ConfigurationError(
                "edge-churn with p_down > 0 and p_up == 0 makes every "
                "down link permanent; use a small p_up instead"
            )


@dataclasses.dataclass(frozen=True)
class NodeCrash(FaultModel):
    """Per-round Markov alive/crashed states over every node."""

    p_crash: float
    p_recover: float

    kind: ClassVar[str] = "node-crash"
    stream: ClassVar[int] = CRASH

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "p_crash", _probability("p_crash", self.p_crash)
        )
        object.__setattr__(
            self, "p_recover", _probability("p_recover", self.p_recover)
        )
        if self.p_crash > 0.0 and self.p_recover == 0.0:
            raise ConfigurationError(
                "node-crash with p_crash > 0 and p_recover == 0 makes "
                "every crash permanent; use a small p_recover instead"
            )


@dataclasses.dataclass(frozen=True)
class JammingWindows(FaultModel):
    """Periodic adversarial jamming of a fixed fraction of listeners."""

    period: int
    duration: int
    offset: int = 0
    fraction: float = 0.25

    kind: ClassVar[str] = "jamming"
    stream: ClassVar[int] = JAM

    def __post_init__(self) -> None:
        object.__setattr__(self, "period", int(self.period))
        object.__setattr__(self, "duration", int(self.duration))
        object.__setattr__(self, "offset", int(self.offset))
        object.__setattr__(self, "fraction", float(self.fraction))
        if self.period < 1:
            raise ConfigurationError(
                f"period must be >= 1, got {self.period}"
            )
        if not 1 <= self.duration <= self.period:
            raise ConfigurationError(
                "duration must satisfy 1 <= duration <= period, got "
                f"duration={self.duration} period={self.period}"
            )
        if self.offset < 0:
            raise ConfigurationError(
                f"offset must be >= 0, got {self.offset}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {self.fraction!r}"
            )

    def active(self, round_number: int) -> bool:
        """Whether the jammer transmits during ``round_number``."""
        if round_number < self.offset:
            return False
        return (round_number - self.offset) % self.period < self.duration


_MODEL_KINDS: dict[str, type[FaultModel]] = {
    cls.kind: cls for cls in (EdgeChurn, NodeCrash, JammingWindows)
}

#: The serialised ``kind`` discriminators, in stream-lane order.
MODEL_KINDS = tuple(
    sorted(_MODEL_KINDS, key=lambda kind: _MODEL_KINDS[kind].stream)
)
