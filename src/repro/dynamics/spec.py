"""The :class:`DynamicsSpec`: the fault axis of an execution config.

A spec is the frozen, graph-independent description of a fault
environment -- a fault seed plus at most one
:class:`~repro.dynamics.models.FaultModel` per kind.  It is what
``ExecutionConfig(dynamics=...)`` carries, what ``identity()`` hashes
(so the service cache never conflates faulty and clean runs), and what
the benchmark schema's ``dynamics`` block persists.  Binding it to a
concrete graph happens in
:class:`~repro.dynamics.schedule.FaultSchedule`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError
from repro.dynamics.models import (
    EdgeChurn,
    FaultModel,
    JammingWindows,
    NodeCrash,
)


@dataclasses.dataclass(frozen=True)
class DynamicsSpec:
    """One fault environment: a seed plus up to one model per kind.

    ``models`` accepts :class:`FaultModel` instances or their
    :meth:`~FaultModel.describe` mappings (the JSON form) and is stored
    sorted by stream lane, so two specs built from the same models in
    any order compare and hash equal and serialise identically.

    >>> spec = DynamicsSpec(fault_seed=7,
    ...                     models=(EdgeChurn(p_down=0.05, p_up=0.35),))
    >>> DynamicsSpec.from_dict(spec.describe()) == spec
    True
    """

    fault_seed: int
    models: tuple[FaultModel, ...]

    def __post_init__(self) -> None:
        fault_seed = int(self.fault_seed)
        if fault_seed < 0:
            raise ConfigurationError(
                f"fault_seed must be >= 0, got {fault_seed}"
            )
        object.__setattr__(self, "fault_seed", fault_seed)
        models = []
        for model in self.models:
            if isinstance(model, Mapping):
                model = FaultModel.from_dict(model)
            elif not isinstance(model, FaultModel):
                raise ConfigurationError(
                    "models must be FaultModel instances or their "
                    f"describe() mappings, got {model!r}"
                )
            models.append(model)
        if not models:
            raise ConfigurationError(
                "a DynamicsSpec needs at least one fault model"
            )
        kinds = [model.kind for model in models]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError(
                f"at most one fault model per kind, got kinds {kinds}"
            )
        models.sort(key=lambda model: model.stream)
        object.__setattr__(self, "models", tuple(models))

    @property
    def churn(self) -> Optional[EdgeChurn]:
        """The edge-churn model, or ``None``."""
        return self._model_of(EdgeChurn)

    @property
    def crash(self) -> Optional[NodeCrash]:
        """The node-crash model, or ``None``."""
        return self._model_of(NodeCrash)

    @property
    def jamming(self) -> Optional[JammingWindows]:
        """The jamming model, or ``None``."""
        return self._model_of(JammingWindows)

    def _model_of(self, cls: type) -> Any:
        for model in self.models:
            if isinstance(model, cls):
                return model
        return None

    def describe(self) -> dict[str, Any]:
        """The canonical JSON form (models in stream-lane order)."""
        return {
            "fault_seed": self.fault_seed,
            "models": [model.describe() for model in self.models],
        }

    #: ``to_dict`` is the persistence-layer spelling of :meth:`describe`.
    to_dict = describe

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DynamicsSpec":
        """Rebuild a spec from :meth:`describe` output."""
        try:
            fault_seed = data["fault_seed"]
            models = data["models"]
        except KeyError as exc:
            raise ConfigurationError(
                f"dynamics mapping needs a {exc.args[0]!r} key, "
                f"got keys {sorted(data)}"
            ) from None
        return cls(fault_seed=fault_seed, models=tuple(models))


def coerce_dynamics(
    value: Optional[Any],
) -> Optional[DynamicsSpec]:
    """``None`` | :class:`DynamicsSpec` | its mapping form -> spec."""
    if value is None or isinstance(value, DynamicsSpec):
        return value
    if isinstance(value, Mapping):
        return DynamicsSpec.from_dict(value)
    raise ConfigurationError(
        "dynamics must be a DynamicsSpec, its describe() mapping, or "
        f"None, got {value!r}"
    )
