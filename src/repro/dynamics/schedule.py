"""The compiled per-round fault schedule every backend consumes.

A :class:`FaultSchedule` binds a
:class:`~repro.dynamics.spec.DynamicsSpec` to one concrete graph.  It
owns the *canonical entity enumeration* -- nodes in the graph's memoized
CSR order (:meth:`repro.network.graph.Graph.adjacency_csr`), undirected
edges as ``(lo, hi)`` index pairs sorted by ``lo * n + hi`` -- and
evolves the Markov link/node chains round by round from the pure hash
words of :class:`~repro.dynamics.streams.FaultStreams`.

Determinism contract
--------------------
The fault trajectory is a function of ``(fault_seed, graph)`` only:

* no trial axis -- every trial of a batch sees the same faults (they are
  an environment property, like the topology itself);
* every run starts at round 0 with all links up and all nodes alive, so
  the reference runner (fresh :class:`RadioNetwork` per run), the
  vectorized engines (rounds ``0..max`` per batch) and any re-run replay
  the identical trajectory;
* asking for an earlier round than the cursor resets to the initial
  state and replays forward (O(rounds) hashing, no stored history) --
  which is also how the engines' silent-trial prepass rewinds.

:meth:`round_faults` returns fresh arrays each call; callers may mutate
them freely.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.dynamics.models import CHURN, CRASH, JAM
from repro.dynamics.spec import DynamicsSpec
from repro.dynamics.streams import FaultStreams


@dataclasses.dataclass(frozen=True)
class RoundFaults:
    """One round's resolved fault state, in canonical entity order.

    Attributes
    ----------
    alive:
        Bool ``(n,)``: node is not crashed this round.
    jammed:
        Bool ``(n,)``: node is in the jammer's victim set during an
        active window (*not* masked by ``alive``; consumers intersect).
    edge_up:
        Bool ``(m,)`` over canonical undirected edges, or ``None`` when
        no churn model is configured (all links up).
    suppressed:
        ``m - edge_up.sum()``: down links this round (0 without churn).
    crashed_count:
        ``n - alive.sum()``: crashed nodes this round.
    """

    alive: np.ndarray
    jammed: np.ndarray
    edge_up: Optional[np.ndarray]
    suppressed: int
    crashed_count: int


class FaultSchedule:
    """Per-round fault masks for one ``(spec, graph)`` binding."""

    def __init__(self, spec: DynamicsSpec, graph) -> None:
        if not isinstance(spec, DynamicsSpec):
            raise ConfigurationError(
                f"spec must be a DynamicsSpec, got {spec!r}"
            )
        self._spec = spec
        self._streams = FaultStreams(spec.fault_seed)
        indptr, indices, nodes = graph.adjacency_csr()
        self._nodes = tuple(nodes)
        n = len(self._nodes)
        self._num_nodes = n
        self._node_index = {node: i for i, node in enumerate(self._nodes)}
        # Canonical undirected edge enumeration from the CSR default
        # order (the same arrays the sparse engine gathers over): each
        # directed entry maps to its undirected edge id via the sorted
        # (lo, hi) key, so an ``edge_up`` mask indexes both layers.
        rows = np.repeat(
            np.arange(n, dtype=np.int64),
            np.diff(np.asarray(indptr, dtype=np.int64)),
        )
        cols = np.asarray(indices, dtype=np.int64)
        keys = np.minimum(rows, cols) * n + np.maximum(rows, cols)
        edge_keys = np.unique(keys)
        self._num_edges = int(edge_keys.size)
        self._entry_edge_ids = np.searchsorted(edge_keys, keys)
        self._edge_lo = (edge_keys // n).astype(np.int64)
        self._edge_hi = (edge_keys % n).astype(np.int64)
        self._pair_to_edge = {
            (int(key) // n, int(key) % n): eid
            for eid, key in enumerate(edge_keys)
        }
        self._churn = spec.churn
        self._crash = spec.crash
        self._jam = spec.jamming
        if self._jam is not None:
            # The victim set is static: drawn once from the round-0 JAM
            # lane, independent of the window phase.
            victims = (
                self._streams.uniforms(0, JAM, n) < self._jam.fraction
            )
            self._jam_victims = victims
        else:
            self._jam_victims = np.zeros(n, dtype=bool)
        self._reset()

    # -- identity ------------------------------------------------------

    @property
    def spec(self) -> DynamicsSpec:
        return self._spec

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Canonical undirected edge count."""
        return self._num_edges

    @property
    def nodes(self) -> tuple:
        """Node identifiers in canonical (CSR) order."""
        return self._nodes

    @property
    def entry_edge_ids(self) -> np.ndarray:
        """Undirected edge id of each directed CSR entry (``int64``)."""
        return self._entry_edge_ids

    @property
    def edge_endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Canonical edge endpoints ``(lo, hi)`` as node-index arrays."""
        return self._edge_lo, self._edge_hi

    # -- evolution -----------------------------------------------------

    def _reset(self) -> None:
        self._rounds_done = 0
        self._edge_up = (
            np.ones(self._num_edges, dtype=bool)
            if self._churn is not None
            else None
        )
        self._alive = np.ones(self._num_nodes, dtype=bool)

    def _step(self, round_number: int) -> None:
        # State *during* round r is the chain after transition r, so
        # faults can already strike in round 0.
        if self._churn is not None:
            u = self._streams.uniforms(round_number, CHURN, self._num_edges)
            self._edge_up = np.where(
                self._edge_up,
                u >= self._churn.p_down,
                u < self._churn.p_up,
            )
        if self._crash is not None:
            u = self._streams.uniforms(round_number, CRASH, self._num_nodes)
            self._alive = np.where(
                self._alive,
                u >= self._crash.p_crash,
                u < self._crash.p_recover,
            )

    def round_faults(self, round_number: int) -> RoundFaults:
        """The resolved fault state during ``round_number``."""
        if round_number < 0:
            raise ConfigurationError(
                f"round_number must be >= 0, got {round_number}"
            )
        if round_number < self._rounds_done - 1:
            self._reset()
        while self._rounds_done <= round_number:
            self._step(self._rounds_done)
            self._rounds_done += 1
        alive = self._alive.copy()
        if self._jam is not None and self._jam.active(round_number):
            jammed = self._jam_victims.copy()
        else:
            jammed = np.zeros(self._num_nodes, dtype=bool)
        edge_up = self._edge_up.copy() if self._edge_up is not None else None
        suppressed = (
            self._num_edges - int(edge_up.sum())
            if edge_up is not None
            else 0
        )
        return RoundFaults(
            alive=alive,
            jammed=jammed,
            edge_up=edge_up,
            suppressed=suppressed,
            crashed_count=self._num_nodes - int(alive.sum()),
        )

    # -- reference-path helpers (node identifiers, not indices) --------

    def crashed_nodes(self, faults: RoundFaults) -> set:
        """Identifiers of nodes crashed in ``faults``."""
        return {
            self._nodes[i] for i in np.flatnonzero(~faults.alive)
        }

    def jammed_nodes(self, faults: RoundFaults) -> set:
        """Identifiers of *alive* jammed nodes in ``faults``."""
        return {
            self._nodes[i]
            for i in np.flatnonzero(faults.jammed & faults.alive)
        }

    def edge_is_up(
        self, faults: RoundFaults, u: Hashable, v: Hashable
    ) -> bool:
        """Whether the undirected link ``{u, v}`` is up in ``faults``."""
        if faults.edge_up is None:
            return True
        i, j = self._node_index[u], self._node_index[v]
        lo, hi = (i, j) if i <= j else (j, i)
        return bool(faults.edge_up[self._pair_to_edge[(lo, hi)]])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule(n={self._num_nodes}, m={self._num_edges}, "
            f"spec={self._spec.describe()})"
        )
