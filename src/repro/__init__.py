"""repro -- reproduction of Czumaj & Davies (PODC 2017).

This package reproduces the algorithms and analytical machinery of

    Artur Czumaj and Peter Davies,
    "Exploiting Spontaneous Transmissions for Broadcasting and Leader
    Election in Radio Networks", PODC 2017.

The package is organised into substrates (:mod:`repro.network` for the
graph/radio model, :mod:`repro.topology` for benchmark topologies,
:mod:`repro.schedules` for the Decay transmission primitive), the paper's
core contribution (:mod:`repro.core`: the ``Compete`` primitive,
broadcasting and leader election), and the round-accurate simulation
harness (:mod:`repro.simulation`) that drives them.

Quickstart
----------
>>> from repro import topology, broadcast
>>> graph = topology.path_graph(64)
>>> result = broadcast(graph, source=0, seed=7)
>>> result.success
True

See ``README.md`` for a tour and ``DESIGN.md`` for the paper-to-module map.
"""

from repro.version import __version__
from repro.errors import (
    ReproError,
    GraphError,
    ProtocolError,
    SimulationError,
    ConfigurationError,
)
from repro.network.graph import Graph
from repro.network.radio import RadioNetwork, CollisionModel
from repro.simulation.results import RunResult, StopReason
from repro.simulation.runner import ProtocolRunner
from repro.core.parameters import CompeteParameters
from repro.core.compete import Compete, CompeteResult, compete
from repro.core.broadcast import broadcast, broadcast_batch, BroadcastResult
from repro.core.decay_broadcast import decay_broadcast, DecayBroadcastResult
from repro.core.leader_election import elect_leader, LeaderElectionResult
from repro.api import (
    DEFAULT_ALGORITHMS,
    Algorithm,
    AlgorithmRegistry,
    ExecutionConfig,
    ResolvedExecution,
    get_algorithm,
    resolve_execution,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "ProtocolError",
    "SimulationError",
    "ConfigurationError",
    "Graph",
    "RadioNetwork",
    "CollisionModel",
    "RunResult",
    "StopReason",
    "ProtocolRunner",
    "CompeteParameters",
    "Compete",
    "CompeteResult",
    "compete",
    "broadcast",
    "broadcast_batch",
    "BroadcastResult",
    "decay_broadcast",
    "DecayBroadcastResult",
    "elect_leader",
    "LeaderElectionResult",
    "DEFAULT_ALGORITHMS",
    "Algorithm",
    "AlgorithmRegistry",
    "ExecutionConfig",
    "ResolvedExecution",
    "get_algorithm",
    "resolve_execution",
]
