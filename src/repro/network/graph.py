"""Undirected graph substrate used by every other subsystem.

The paper models a radio network as an undirected connected graph
``N = (V, E)`` with ``n = |V|`` nodes and diameter ``D``.  This module
provides a small, dependency-free adjacency-set graph with exactly the
queries the algorithms and the analysis need:

* neighbourhood and degree queries,
* breadth-first search (single source, layered, and truncated),
* shortest paths and pairwise distances,
* eccentricity / diameter (exact or two-sweep approximation),
* connectivity checks and connected components,
* conversion to and from :mod:`networkx` for interoperability.

Nodes may be arbitrary hashable objects; the topology generators in
:mod:`repro.topology` use consecutive integers.
"""

from __future__ import annotations

import collections
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

from repro.errors import GraphError

NodeId = Hashable
Edge = tuple[NodeId, NodeId]


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added
        automatically.  Self-loops and duplicate edges are rejected and
        ignored respectively, matching the simple-graph model of the
        paper.
    """

    def __init__(
        self,
        nodes: Optional[Iterable[NodeId]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._adjacency: dict[NodeId, set[NodeId]] = {}
        # Default-order CSR memo (indptr, indices, nodes); invalidated
        # by every mutation.  One topology is typically consumed by many
        # engine constructions (batch runs, the service's resolution
        # cache), and the CSR build is the only O(n + m) Python-loop
        # step left on the warm path.
        self._csr_cache = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` to the graph (a no-op if it is already present)."""
        if node not in self._adjacency:
            self._adjacency[node] = set()
            self._csr_cache = None

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops are not part of the model).
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._csr_cache = None

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._csr_cache = None

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        GraphError
            If the node is not present.
        """
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        for neighbour in list(self._adjacency[node]):
            self._adjacency[neighbour].discard(node)
        del self._adjacency[node]
        self._csr_cache = None

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an iterable of edges."""
        return cls(edges=edges)

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a ``networkx.Graph``."""
        graph = cls(nodes=nx_graph.nodes())
        for u, v in nx_graph.edges():
            if u != v:
                graph.add_edge(u, v)
        return graph

    def to_networkx(self):
        """Return an equivalent ``networkx.Graph``."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.nodes())
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def copy(self) -> "Graph":
        """Return a deep copy of the graph structure."""
        clone = Graph()
        clone._adjacency = {node: set(nbrs) for node, nbrs in self._adjacency.items()}
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by ``nodes``.

        Nodes not present in the graph are ignored.
        """
        keep = {node for node in nodes if node in self._adjacency}
        sub = Graph(nodes=keep)
        for node in keep:
            for neighbour in self._adjacency[node]:
                if neighbour in keep:
                    sub._adjacency[node].add(neighbour)
        return sub

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def nodes(self) -> list[NodeId]:
        """Return the nodes in insertion order."""
        return list(self._adjacency)

    def edges(self) -> list[Edge]:
        """Return each undirected edge exactly once."""
        seen: set[frozenset] = set()
        result: list[Edge] = []
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def neighbors(self, node: NodeId) -> frozenset:
        """Return the neighbour set of ``node``.

        Raises
        ------
        GraphError
            If ``node`` is not in the graph.
        """
        try:
            return frozenset(self._adjacency[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        try:
            return len(self._adjacency[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def max_degree(self) -> int:
        """Return the maximum degree, or 0 for an empty graph."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return True if the edge ``{u, v}`` is present."""
        return u in self._adjacency and v in self._adjacency[u]

    # ------------------------------------------------------------------
    # Traversal and distances
    # ------------------------------------------------------------------
    def bfs_distances(
        self, source: NodeId, max_distance: Optional[int] = None
    ) -> dict[NodeId, int]:
        """Return hop distances from ``source`` to every reachable node.

        Parameters
        ----------
        source:
            Starting node.
        max_distance:
            If given, the search stops once this distance is exceeded and
            only nodes within ``max_distance`` hops are returned.
        """
        if source not in self._adjacency:
            raise GraphError(f"node {source!r} not in graph")
        distances = {source: 0}
        frontier = collections.deque([source])
        while frontier:
            node = frontier.popleft()
            next_distance = distances[node] + 1
            if max_distance is not None and next_distance > max_distance:
                continue
            for neighbour in self._adjacency[node]:
                if neighbour not in distances:
                    distances[neighbour] = next_distance
                    frontier.append(neighbour)
        return distances

    def multi_source_bfs_distances(
        self, sources: Iterable[NodeId]
    ) -> dict[NodeId, int]:
        """Return, for every reachable node, its distance to the nearest source."""
        distances: dict[NodeId, int] = {}
        frontier: collections.deque = collections.deque()
        for source in sources:
            if source not in self._adjacency:
                raise GraphError(f"node {source!r} not in graph")
            if source not in distances:
                distances[source] = 0
                frontier.append(source)
        while frontier:
            node = frontier.popleft()
            for neighbour in self._adjacency[node]:
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    frontier.append(neighbour)
        return distances

    def bfs_layers(self, source: NodeId) -> list[list[NodeId]]:
        """Return BFS layers ``[L_0, L_1, ...]`` where ``L_i`` is the set of
        nodes at distance exactly ``i`` from ``source``."""
        distances = self.bfs_distances(source)
        if not distances:
            return []
        max_dist = max(distances.values())
        layers: list[list[NodeId]] = [[] for _ in range(max_dist + 1)]
        for node, dist in distances.items():
            layers[dist].append(node)
        return layers

    def bfs_tree_parents(self, source: NodeId) -> dict[NodeId, Optional[NodeId]]:
        """Return a BFS-tree parent map rooted at ``source``.

        The root maps to ``None``.  Ties between possible parents are
        broken by traversal order, which is deterministic given the
        graph's insertion order.
        """
        if source not in self._adjacency:
            raise GraphError(f"node {source!r} not in graph")
        parents: dict[NodeId, Optional[NodeId]] = {source: None}
        frontier = collections.deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbour in self._adjacency[node]:
                if neighbour not in parents:
                    parents[neighbour] = node
                    frontier.append(neighbour)
        return parents

    def shortest_path(self, source: NodeId, target: NodeId) -> list[NodeId]:
        """Return one shortest path from ``source`` to ``target`` (inclusive).

        The returned path is the *canonical* shortest path in the sense of
        Section 4 of the paper: it is deterministic for a fixed graph.

        Raises
        ------
        GraphError
            If either endpoint is missing or no path exists.
        """
        if target not in self._adjacency:
            raise GraphError(f"node {target!r} not in graph")
        parents = self.bfs_tree_parents(source)
        if target not in parents:
            raise GraphError(f"no path from {source!r} to {target!r}")
        path = [target]
        while path[-1] != source:
            parent = parents[path[-1]]
            assert parent is not None
            path.append(parent)
        path.reverse()
        return path

    def distance(self, source: NodeId, target: NodeId) -> int:
        """Return the hop distance between two nodes.

        Raises
        ------
        GraphError
            If no path exists.
        """
        distances = self.bfs_distances(source)
        if target not in distances:
            raise GraphError(f"no path from {source!r} to {target!r}")
        return distances[target]

    # ------------------------------------------------------------------
    # Global structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Return True for the empty graph and for connected graphs."""
        if self.num_nodes == 0:
            return True
        start = next(iter(self._adjacency))
        return len(self.bfs_distances(start)) == self.num_nodes

    def connected_components(self) -> list[set]:
        """Return the connected components as a list of node sets."""
        remaining = set(self._adjacency)
        components: list[set] = []
        while remaining:
            start = next(iter(remaining))
            component = set(self.bfs_distances(start))
            components.append(component)
            remaining -= component
        return components

    def eccentricity(self, node: NodeId) -> int:
        """Return the eccentricity of ``node``.

        Raises
        ------
        GraphError
            If the graph is disconnected (eccentricity is undefined).
        """
        distances = self.bfs_distances(node)
        if len(distances) != self.num_nodes:
            raise GraphError("eccentricity undefined on a disconnected graph")
        return max(distances.values())

    def diameter(self, exact: Optional[bool] = None) -> int:
        """Return the diameter ``D`` of the graph.

        Parameters
        ----------
        exact:
            ``True`` forces an exact all-pairs computation (one BFS per
            node, ``O(n·m)``); ``False`` forces the iterated two-sweep
            heuristic (a lower bound that is exact on trees and typically
            exact on the benchmark topologies).  The default picks exact
            for graphs with at most 2 000 nodes and the heuristic above
            that.

        Raises
        ------
        GraphError
            If the graph is empty or disconnected.
        """
        if self.num_nodes == 0:
            raise GraphError("diameter undefined on the empty graph")
        if not self.is_connected():
            raise GraphError("diameter undefined on a disconnected graph")
        if exact is None:
            exact = self.num_nodes <= 2000
        if exact:
            return max(self.eccentricity(node) for node in self._adjacency)
        return self._two_sweep_diameter()

    def _two_sweep_diameter(self, sweeps: int = 4) -> int:
        """Iterated double-sweep diameter lower bound.

        Starting from an arbitrary node, repeatedly jump to the farthest
        node found and record the largest eccentricity seen.  Exact on
        trees; a lower bound in general.
        """
        current = next(iter(self._adjacency))
        best = 0
        for _ in range(sweeps):
            distances = self.bfs_distances(current)
            farthest = max(distances, key=lambda node: distances[node])
            best = max(best, distances[farthest])
            current = farthest
        return best

    def radius_node(self) -> NodeId:
        """Return a node of (approximately) minimum eccentricity.

        Exact for graphs with at most 2 000 nodes; otherwise returns the
        midpoint of an approximate diameter path.
        """
        if self.num_nodes == 0:
            raise GraphError("radius node undefined on the empty graph")
        if self.num_nodes <= 2000:
            return min(self._adjacency, key=self.eccentricity)
        start = next(iter(self._adjacency))
        distances = self.bfs_distances(start)
        far = max(distances, key=lambda node: distances[node])
        path_mid = self.shortest_path(start, far)
        return path_mid[len(path_mid) // 2]

    def _resolve_order(self, order: Optional[list]) -> tuple[list, dict]:
        """Resolve an explicit node order (or the insertion order) plus
        its node -> position map, validating permutations."""
        if order is None:
            nodes = self.nodes()
        else:
            nodes = list(order)
            if set(nodes) != set(self._adjacency) or len(nodes) != self.num_nodes:
                raise GraphError(
                    "order must be a permutation of the graph's node set"
                )
        return nodes, {node: i for i, node in enumerate(nodes)}

    def adjacency_matrix(self, order: Optional[list] = None):
        """Return the dense boolean adjacency matrix and its node order.

        Returns ``(matrix, nodes)`` where ``matrix[i, j]`` is True iff
        ``nodes[i]`` and ``nodes[j]`` are adjacent and ``nodes`` is the
        insertion order (or the explicit ``order`` argument, which must be
        a permutation of the node set).  The matrix is the substrate of
        :mod:`repro.simulation.vectorized`, which computes whole-network
        collision outcomes as matrix products.

        ``numpy`` is imported lazily so the graph module itself stays
        dependency-free.
        """
        import numpy as np

        nodes, index = self._resolve_order(order)
        matrix = np.zeros((len(nodes), len(nodes)), dtype=bool)
        for node, neighbours in self._adjacency.items():
            i = index[node]
            for neighbour in neighbours:
                matrix[i, index[neighbour]] = True
        return matrix, nodes

    def adjacency_csr(self, order: Optional[list] = None):
        """Return the adjacency structure in CSR form and its node order.

        Returns ``(indptr, indices, nodes)``: ``nodes`` is the insertion
        order (or the explicit ``order`` argument, which must be a
        permutation of the node set), and the neighbours of ``nodes[i]``
        are ``nodes[j]`` for each ``j`` in
        ``indices[indptr[i]:indptr[i + 1]]``, sorted ascending.  Both
        arrays are ``int64``; ``indptr`` has length ``n + 1`` and
        ``indices`` one entry per *directed* edge (``2m`` total), so the
        memory footprint is ``O(n + m)`` instead of the dense matrix's
        ``O(n²)`` -- this is the substrate of the sparse code path of
        :mod:`repro.simulation.vectorized` (see
        :class:`repro.simulation.sparse.CSRAdjacency`).

        The default-order result is memoized on the graph (mutations
        invalidate it), so repeated engine constructions over one
        topology -- batch runs, the ``repro.service`` resolution cache
        -- pay the Python-loop build once.  Callers must treat the
        returned arrays as read-only.

        ``numpy`` is imported lazily so the graph module itself stays
        dependency-free.
        """
        import numpy as np

        if order is None and self._csr_cache is not None:
            return self._csr_cache
        nodes, index = self._resolve_order(order)
        rows = [
            sorted(index[neighbour] for neighbour in self._adjacency[node])
            for node in nodes
        ]
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(row) for row in rows], dtype=np.int64)
        indices = np.fromiter(
            (column for row in rows for column in row),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        if order is None:
            self._csr_cache = (indptr, indices, nodes)
        return indptr, indices, nodes

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def boundary_nodes(self, node_set: Iterable[NodeId]) -> set:
        """Return nodes of ``node_set`` that have a neighbour outside it."""
        inside = set(node_set)
        return {
            node
            for node in inside
            if any(nbr not in inside for nbr in self._adjacency.get(node, ()))
        }

    def adjacency(self) -> Mapping[NodeId, frozenset]:
        """Return a read-only view of the adjacency structure."""
        return {node: frozenset(nbrs) for node, nbrs in self._adjacency.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
