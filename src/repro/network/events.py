"""Lightweight tracing of simulation rounds.

Tracing is optional (off by default) because large simulations execute
millions of node-rounds; when enabled it records, per round, who
transmitted and which receptions/collisions occurred, which the tests use
to check the collision semantics and which examples use for narration.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Optional


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """A single traced occurrence within a round.

    Attributes
    ----------
    round_number:
        The round in which the event happened.
    kind:
        One of ``"transmit"``, ``"receive"``, ``"collision"`` or
        ``"silence"``.
    node:
        The node the event concerns (the transmitter or the listener).
    detail:
        The transmitted/received message for transmit/receive events,
        otherwise ``None``.
    """

    round_number: int
    kind: str
    node: Any
    detail: Any = None


class EventLog:
    """An append-only log of :class:`TraceEvent` records.

    The log can be bounded: once ``max_events`` is reached, further events
    are counted but not stored, so that tracing can stay enabled on long
    runs without exhausting memory.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self._events: list[TraceEvent] = []
        self._dropped = 0
        self._max_events = max_events

    def record(self, event: TraceEvent) -> None:
        """Append ``event`` (or count it as dropped if the log is full)."""
        if self._max_events is not None and len(self._events) >= self._max_events:
            self._dropped += 1
            return
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Number of events that were not stored because the log was full."""
        return self._dropped

    def events_in_round(self, round_number: int) -> list[TraceEvent]:
        """Return all stored events for a given round."""
        return [event for event in self._events if event.round_number == round_number]

    def events_for_node(self, node: Any) -> list[TraceEvent]:
        """Return all stored events concerning ``node``."""
        return [event for event in self._events if event.node == node]

    def count(self, kind: str) -> int:
        """Return the number of stored events of the given kind."""
        return sum(1 for event in self._events if event.kind == kind)
