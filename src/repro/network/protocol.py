"""Per-node protocol interface for the round-accurate radio simulator.

A *protocol* is the program executed by a single station.  Each round the
simulator asks every node's protocol for an action (transmit a message or
listen), applies the collision semantics, and then reports to each node
what it heard.  Protocols are deliberately passive objects: they never see
the graph, other nodes' state, or the global round outcome -- exactly the
information hiding the ad-hoc model requires (unknown topology, knowledge
of ``n`` and ``D`` only).
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from typing import Any, Callable, Optional

from repro.errors import ProtocolError
from repro.network.messages import Message


class ActionKind(enum.Enum):
    """What a node does in a single round."""

    TRANSMIT = "transmit"
    LISTEN = "listen"


@dataclasses.dataclass(frozen=True)
class Action:
    """The action a node takes in one round.

    Use the :meth:`transmit` and :meth:`listen` constructors rather than
    instantiating directly.
    """

    kind: ActionKind
    message: Optional[Message] = None

    @classmethod
    def transmit(cls, message: Message) -> "Action":
        """Transmit ``message`` to all neighbours this round."""
        if not isinstance(message, Message):
            raise ProtocolError(
                f"transmit requires a Message, got {type(message).__name__}"
            )
        return cls(ActionKind.TRANSMIT, message)

    @classmethod
    def listen(cls) -> "Action":
        """Stay silent and listen this round."""
        return cls(ActionKind.LISTEN, None)

    @property
    def is_transmit(self) -> bool:
        return self.kind is ActionKind.TRANSMIT


class NodeProtocol(abc.ABC):
    """Abstract base class for per-node protocols.

    Subclasses implement :meth:`act` and :meth:`receive`; the simulator
    guarantees they are called alternately, once each per round, starting
    with :meth:`act` for round 0.

    Attributes
    ----------
    node_id:
        The identity of the station running this protocol.  The model
        allows nodes to know their own identifier.
    num_nodes:
        The global parameter ``n`` (the model assumes nodes know ``n``).
    diameter:
        The global parameter ``D`` (the model assumes nodes know ``D``).
    """

    def __init__(self, node_id: Any, num_nodes: int, diameter: int) -> None:
        self.node_id = node_id
        self.num_nodes = num_nodes
        self.diameter = diameter

    @abc.abstractmethod
    def act(self, round_number: int) -> Action:
        """Return this node's action for ``round_number``."""

    @abc.abstractmethod
    def receive(self, round_number: int, heard: Any) -> None:
        """Report what the node heard in ``round_number``.

        ``heard`` is a :class:`~repro.network.messages.Message` if exactly
        one neighbour transmitted, :data:`~repro.network.messages.SILENCE`
        otherwise, or :data:`~repro.network.messages.COLLISION` when the
        collision-detection variant is enabled and two or more neighbours
        transmitted.  A transmitting node hears nothing (the model is
        half-duplex) and is passed :data:`SILENCE`.
        """

    def is_done(self) -> bool:
        """Return True once this node has locally terminated.

        The runner stops when every node reports ``True`` (or the round
        budget is exhausted).  The default is ``False`` -- protocols that
        run forever are stopped by the round budget.
        """
        return False

    def output(self) -> Any:
        """Return this node's local output (e.g. the learned message or
        elected leader).  ``None`` by default."""
        return None


#: A factory that builds the protocol instance for a given node.  It is
#: called once per node with ``(node_id, num_nodes, diameter)``.
ProtocolFactory = Callable[[Any, int, int], NodeProtocol]
