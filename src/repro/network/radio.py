"""The synchronous radio network model (Section 1.1 of the paper).

The distinguishing feature of the model is the interfering behaviour of
transmissions: if a node listens in a given round and *precisely one* of
its neighbours transmits, the node receives the message; in all other
cases it receives nothing.  Without collision detection a listener cannot
distinguish "no neighbour transmitted" from "two or more transmitted".
The optional collision-detection variant reports the latter case with the
:data:`~repro.network.messages.COLLISION` sentinel.

:class:`RadioNetwork` is intentionally a *pure* model object: it holds the
graph, the collision semantics and the metric counters, and exposes a
single :meth:`RadioNetwork.run_round` operation that maps a dictionary of
node actions to a dictionary of receptions.  Driving protocols round by
round is the job of :class:`repro.simulation.runner.ProtocolRunner`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Mapping, Optional

from repro.errors import ProtocolError
from repro.network.events import EventLog, TraceEvent
from repro.network.graph import Graph
from repro.network.messages import COLLISION, SILENCE, Message
from repro.network.metrics import NetworkMetrics
from repro.network.protocol import Action


class CollisionModel(enum.Enum):
    """Which collision semantics the network applies.

    ``NO_DETECTION`` is the model the paper studies: collisions are
    silent.  ``WITH_DETECTION`` is the standard stronger variant used by
    some related work (e.g. Ghaffari, Haeupler, Khabbazian 2015) and is
    provided for the comparison benchmarks.
    """

    NO_DETECTION = "no-detection"
    WITH_DETECTION = "with-detection"


@dataclasses.dataclass(frozen=True)
class RoundOutcome:
    """Everything that happened in one simulated round.

    Attributes
    ----------
    round_number:
        The index of the executed round (0-based).
    transmitters:
        Mapping from transmitting node to the message it sent.
    received:
        Mapping from every node to what it heard: a
        :class:`~repro.network.messages.Message`, :data:`SILENCE` or
        :data:`COLLISION`.
    """

    round_number: int
    transmitters: Mapping[Any, Message]
    received: Mapping[Any, Any]


class RadioNetwork:
    """A radio network: a graph plus the model's collision semantics.

    Parameters
    ----------
    graph:
        The underlying connected communication graph.
    collision_model:
        Whether listeners can detect collisions.  Defaults to the paper's
        model (no detection).
    event_log:
        Optional :class:`~repro.network.events.EventLog`; when provided,
        every transmission/reception/collision is traced into it.
    dynamics:
        Optional :class:`repro.dynamics.FaultSchedule` (duck-typed --
        anything with ``round_faults``/``crashed_nodes``/
        ``jammed_nodes``/``edge_is_up``).  When provided, every round
        first resolves the schedule's fault state: crashed nodes are
        radio-off (their transmissions are suppressed and they hear
        :data:`SILENCE`), down links carry nothing, and jammed alive
        listeners hear noise (:data:`COLLISION` under detection,
        :data:`SILENCE` without).  The protocol layer is never told --
        faults act on the channel, not on node state.
    """

    def __init__(
        self,
        graph: Graph,
        collision_model: CollisionModel = CollisionModel.NO_DETECTION,
        event_log: Optional[EventLog] = None,
        dynamics: Optional[Any] = None,
    ) -> None:
        self._graph = graph
        self._collision_model = collision_model
        self._event_log = event_log
        self._dynamics = dynamics
        self._metrics = NetworkMetrics()
        self._round_number = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying communication graph."""
        return self._graph

    @property
    def collision_model(self) -> CollisionModel:
        """The collision semantics in effect."""
        return self._collision_model

    @property
    def metrics(self) -> NetworkMetrics:
        """Aggregate counters for all rounds executed so far."""
        return self._metrics

    @property
    def current_round(self) -> int:
        """The index of the next round to be executed."""
        return self._round_number

    # ------------------------------------------------------------------
    # Core semantics
    # ------------------------------------------------------------------
    def run_round(self, actions: Mapping[Any, Action]) -> RoundOutcome:
        """Execute one synchronous round.

        Parameters
        ----------
        actions:
            A mapping from *every* node in the graph to its
            :class:`~repro.network.protocol.Action` for this round.
            Missing nodes default to listening, which matches the model
            (a node that does nothing is simply silent), but unknown
            nodes are rejected.

        Returns
        -------
        RoundOutcome
            What every node heard.  Transmitting nodes hear
            :data:`SILENCE` (the model is half-duplex: a transmitter
            cannot listen in the same round).

        Raises
        ------
        ProtocolError
            If ``actions`` mentions a node that is not in the graph.
        """
        for node in actions:
            if node not in self._graph:
                raise ProtocolError(f"action supplied for unknown node {node!r}")

        crashed: set[Any] = set()
        jammed: set[Any] = set()
        faults = None
        if self._dynamics is not None:
            faults = self._dynamics.round_faults(self._round_number)
            crashed = self._dynamics.crashed_nodes(faults)
            jammed = self._dynamics.jammed_nodes(faults)

        transmitters: dict[Any, Message] = {}
        for node, action in actions.items():
            # A crashed node's transmission is suppressed here, *after*
            # the protocol consumed its draw: replay accounting must not
            # depend on the fault schedule.
            if action.is_transmit and node not in crashed:
                assert action.message is not None
                transmitters[node] = action.message

        received: dict[Any, Any] = {}
        for node in self._graph:
            if node in crashed:
                # Radio off: a crashed node hears nothing, detectably or
                # not, until it recovers.
                received[node] = SILENCE
                continue
            if node in transmitters:
                # Half-duplex: a transmitter hears nothing this round.
                received[node] = SILENCE
                continue
            if node in jammed:
                # Jamming is noise on the listener's channel: collision
                # detectors report it as a collision, others hear
                # silence; either way no message gets through.
                received[node] = (
                    COLLISION
                    if self._collision_model is CollisionModel.WITH_DETECTION
                    else SILENCE
                )
                continue
            heard = self._reception_for(node, transmitters, faults)
            received[node] = heard

        self._update_metrics(transmitters, received, faults, crashed, jammed)
        self._trace_round(transmitters, received)

        outcome = RoundOutcome(
            round_number=self._round_number,
            transmitters=dict(transmitters),
            received=received,
        )
        self._round_number += 1
        return outcome

    def _transmitting_neighbours(
        self, node: Any, transmitters: Mapping[Any, Message], faults: Any
    ) -> list[Any]:
        """Transmitting neighbours audible over currently-up links."""
        return [
            neighbour
            for neighbour in self._graph.neighbors(node)
            if neighbour in transmitters
            and (
                faults is None
                or self._dynamics.edge_is_up(faults, node, neighbour)
            )
        ]

    def _reception_for(
        self,
        node: Any,
        transmitters: Mapping[Any, Message],
        faults: Any = None,
    ) -> Any:
        """Apply the collision rule for a single listening node."""
        audible = self._transmitting_neighbours(node, transmitters, faults)
        if len(audible) == 1:
            return transmitters[audible[0]]
        if len(audible) == 0:
            return SILENCE
        if self._collision_model is CollisionModel.WITH_DETECTION:
            return COLLISION
        return SILENCE

    def _update_metrics(
        self,
        transmitters: Mapping[Any, Message],
        received: Mapping[Any, Any],
        faults: Any = None,
        crashed: frozenset = frozenset(),
        jammed: frozenset = frozenset(),
    ) -> None:
        self._metrics.rounds += 1
        self._metrics.transmissions += len(transmitters)
        if faults is not None:
            # Environment counters are per (entity, round) regardless of
            # traffic -- exactly what the vectorized engines charge.
            self._metrics.suppressed_links += faults.suppressed
            self._metrics.crashed_nodes += faults.crashed_count
        for node, heard in received.items():
            # Bucket precedence: crashed > transmitter > jammed > the
            # collision/idle split.  Every node lands in exactly one.
            if node in crashed:
                continue  # charged via faults.crashed_count above
            if node in transmitters:
                continue
            if node in jammed:
                self._metrics.jammed_listens += 1
                continue
            if isinstance(heard, Message):
                self._metrics.receptions += 1
            else:
                # Count the true collision/idle split regardless of whether
                # the node could observe the difference.
                audible = self._transmitting_neighbours(
                    node, transmitters, faults
                )
                if len(audible) >= 2:
                    self._metrics.collisions += 1
                else:
                    self._metrics.idle_listens += 1

    def _trace_round(
        self, transmitters: Mapping[Any, Message], received: Mapping[Any, Any]
    ) -> None:
        if self._event_log is None:
            return
        for node, message in transmitters.items():
            self._event_log.record(
                TraceEvent(self._round_number, "transmit", node, message)
            )
        for node, heard in received.items():
            if node in transmitters:
                continue
            if isinstance(heard, Message):
                kind = "receive"
            elif heard is COLLISION:
                kind = "collision"
            else:
                kind = "silence"
            self._event_log.record(
                TraceEvent(self._round_number, kind, node, heard)
            )
