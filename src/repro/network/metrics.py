"""Aggregate counters collected while simulating a radio network.

The analysis in the paper is about *round* complexity, but the metrics
also track transmissions, successful receptions and collisions, which the
ablation benchmarks use to compare energy and contention profiles of the
algorithms (for example, Decay-style baselines transmit far more often
than the schedule-based algorithms).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class NetworkMetrics:
    """Mutable counters updated by :class:`~repro.network.radio.RadioNetwork`.

    Attributes
    ----------
    rounds:
        Number of rounds executed.
    transmissions:
        Total number of (node, round) transmission events.
    receptions:
        Total number of successful message deliveries to listeners.
    collisions:
        Total number of (listener, round) pairs where two or more
        neighbours transmitted simultaneously.
    idle_listens:
        Total number of (listener, round) pairs where no neighbour
        transmitted.
    suppressed_links:
        Total number of (edge, round) pairs where churn
        (``repro.dynamics``) held an undirected link down, whether or
        not anything was transmitted over it.  0 on static runs.
    crashed_nodes:
        Total number of (node, round) pairs where the node was crashed
        (radio off: it neither transmits nor listens).  0 on static
        runs.
    jammed_listens:
        Total number of (listener, round) pairs where an alive
        non-transmitting node was jammed and therefore received
        nothing.  0 on static runs.
    """

    rounds: int = 0
    transmissions: int = 0
    receptions: int = 0
    collisions: int = 0
    idle_listens: int = 0
    suppressed_links: int = 0
    crashed_nodes: int = 0
    jammed_listens: int = 0

    def merge(self, other: "NetworkMetrics") -> "NetworkMetrics":
        """Return a new metrics object summing this one and ``other``."""
        return NetworkMetrics(
            rounds=self.rounds + other.rounds,
            transmissions=self.transmissions + other.transmissions,
            receptions=self.receptions + other.receptions,
            collisions=self.collisions + other.collisions,
            idle_listens=self.idle_listens + other.idle_listens,
            suppressed_links=self.suppressed_links + other.suppressed_links,
            crashed_nodes=self.crashed_nodes + other.crashed_nodes,
            jammed_listens=self.jammed_listens + other.jammed_listens,
        )

    def copy(self) -> "NetworkMetrics":
        """Return an independent snapshot of the current counters."""
        return dataclasses.replace(self)

    def diff(self, earlier: "NetworkMetrics") -> "NetworkMetrics":
        """Return the counters accumulated since the ``earlier`` snapshot.

        Used by :class:`~repro.simulation.runner.ProtocolRunner` to report
        per-run accounting even when several runs share one network.
        """
        return NetworkMetrics(
            rounds=self.rounds - earlier.rounds,
            transmissions=self.transmissions - earlier.transmissions,
            receptions=self.receptions - earlier.receptions,
            collisions=self.collisions - earlier.collisions,
            idle_listens=self.idle_listens - earlier.idle_listens,
            suppressed_links=self.suppressed_links - earlier.suppressed_links,
            crashed_nodes=self.crashed_nodes - earlier.crashed_nodes,
            jammed_listens=self.jammed_listens - earlier.jammed_listens,
        )

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary (for reporting)."""
        return dataclasses.asdict(self)

    @property
    def delivery_ratio(self) -> float:
        """Fraction of listen events that resulted in a reception.

        Listen events include the fault-suppressed ones (jammed
        listeners and crashed nodes' silent rounds), so the ratio
        degrades under ``repro.dynamics`` fault injection; on static
        runs those counters are zero and the ratio is unchanged.
        Returns 0.0 when no listen events have occurred.
        """
        listens = (
            self.receptions
            + self.collisions
            + self.idle_listens
            + self.jammed_listens
            + self.crashed_nodes
        )
        if listens == 0:
            return 0.0
        return self.receptions / listens
