"""Message model for the radio network simulator.

The paper places no restriction on message size but notes that its
algorithms work with ``O(log n)``-bit messages.  We model a message as an
integer-comparable payload (``value``) plus optional metadata describing
its origin, which is what ``Compete`` needs: sources inject messages and
all nodes must learn the *highest* one.

Two sentinel objects describe what a listening node hears in a round:

* :data:`SILENCE` -- no neighbour transmitted (or, without collision
  detection, more than one did);
* :data:`COLLISION` -- at least two neighbours transmitted, only reported
  when the collision-detection variant of the model is enabled.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional


class _Sentinel:
    """A named singleton used for the reception sentinels."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"


#: Heard nothing (zero transmitting neighbours, or an undetected collision).
SILENCE = _Sentinel("SILENCE")

#: Heard a collision (two or more transmitting neighbours); only delivered
#: by the collision-detection variant of the model.
COLLISION = _Sentinel("COLLISION")


@dataclasses.dataclass(frozen=True, order=True)
class Message:
    """A transmissible message.

    Messages are ordered by ``(value, source)`` so that "the highest
    message" is well defined even if two sources inject equal values;
    this mirrors the paper's convention of ranking messages
    lexicographically (Section 4).

    Attributes
    ----------
    value:
        The integer value being propagated (a source message value or a
        candidate identifier in leader election).
    source:
        Identifier of the node that originated the message.  Included in
        the ordering as a tie-breaker.
    payload:
        Optional opaque payload carried alongside the value (not part of
        ordering or equality of interest to the algorithms; excluded from
        comparisons).
    """

    value: int
    source: Any = dataclasses.field(default=None, compare=True)
    payload: Any = dataclasses.field(default=None, compare=False)

    def beats(self, other: Optional["Message"]) -> bool:
        """Return True if this message is strictly higher than ``other``.

        ``other`` may be ``None`` (meaning "knows nothing yet"), in which
        case any message wins.
        """
        if other is None:
            return True
        return self.sort_key() > other.sort_key()

    def sort_key(self) -> tuple:
        """The total-order key ``(value, source tie-break)`` behind :meth:`beats`.

        The vectorized engine ranks every message in play by this key once
        up front and then compares dense integer ranks instead of message
        objects, so the key must induce exactly the same order as
        :meth:`beats` -- both share this implementation.
        """
        return (self.value, self._source_key())

    def _source_key(self):
        """A total-orderable key for the source tie-breaker."""
        return (str(type(self.source)), str(self.source))


def highest_message(*messages: Optional[Message]) -> Optional[Message]:
    """Return the highest of the given messages, ignoring ``None`` entries.

    Returns ``None`` if every argument is ``None``.
    """
    best: Optional[Message] = None
    for message in messages:
        if message is not None and message.beats(best):
            best = message
    return best
