"""Radio-network substrate: graphs, the synchronous radio model, protocols.

This package implements the communication model of Section 1.1 of the
paper: an undirected graph of transmitter-receiver stations operating in
synchronous rounds, where a listening node receives a message if and only
if exactly one of its neighbours transmits in that round (no collision
detection), with an optional collision-detection variant.
"""

from repro.network.graph import Graph
from repro.network.messages import Message, SILENCE, COLLISION
from repro.network.protocol import Action, ActionKind, NodeProtocol, ProtocolFactory
from repro.network.radio import RadioNetwork, CollisionModel, RoundOutcome
from repro.network.events import TraceEvent, EventLog
from repro.network.metrics import NetworkMetrics

__all__ = [
    "Graph",
    "Message",
    "SILENCE",
    "COLLISION",
    "Action",
    "ActionKind",
    "NodeProtocol",
    "ProtocolFactory",
    "RadioNetwork",
    "CollisionModel",
    "RoundOutcome",
    "TraceEvent",
    "EventLog",
    "NetworkMetrics",
]
