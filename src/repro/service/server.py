"""The ``asyncio`` simulation server: JSON over HTTP and stdio.

One :class:`ServiceServer` wraps a
:class:`~repro.service.jobs.JobManager` and exposes the
``repro-service/1`` protocol over two transports, both stdlib-only:

* **HTTP/1.1** (hand-rolled over ``asyncio`` streams -- no framework,
  one request per connection, ``Connection: close``):

  ===========================================  ===========================
  ``GET  /healthz``                            liveness (``ping``)
  ``GET  /v1/stats``                           queue/cache/job counters
  ``POST /v1/run``                             enqueue one job -> job id
  ``POST /v1/sweep``                           enqueue matching scenarios
  ``GET  /v1/jobs/<id>``                       status (+ result when done)
  ``POST /v1/jobs/<id>/cancel``                cancel queued/running job
  ``GET  /v1/jobs/<id>/stream``                per-batch results as JSON
                                               lines until terminal
  ===========================================  ===========================

  Protocol error codes map onto status codes: ``bad-request`` -> 400,
  ``unknown-scenario``/``unknown-job`` -> 404, ``queue-full`` -> **429**
  (the backpressure contract), ``internal`` -> 500.

* **stdio JSON lines** (:func:`serve_stdio`): one request object per
  line, one response per line, correlated by the client-chosen ``id``
  field; job batches are fetched by polling ``status`` like any other
  client.  This is the embedding-friendly transport (drive the service
  as a child process over pipes).

``python -m repro.service`` starts either transport; see
:mod:`repro.service.__main__`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping, Optional

from repro.errors import ReproError
from repro.experiments.scenarios import DEFAULT_REGISTRY
from repro.service.jobs import (
    TERMINAL_STATES,
    JobManager,
    JobSpec,
)
from repro.service.protocol import (
    Request,
    RequestError,
    SERVICE_SCHEMA,
    error_response,
    ok_response,
    parse_request,
)

#: HTTP status for each protocol error code.
_HTTP_STATUS = {
    "bad-request": 400,
    "unknown-scenario": 404,
    "unknown-job": 404,
    "queue-full": 429,
    "internal": 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Largest accepted request body; a run request is a few hundred bytes,
#: so anything near this is abuse, not traffic.
_MAX_BODY_BYTES = 1 << 20

#: Streaming consumers re-check job state at least this often, so a
#: missed wakeup can only delay a batch, never lose it.
_STREAM_POLL_SECONDS = 0.5


class ServiceServer:
    """The HTTP transport bound to one :class:`JobManager`."""

    def __init__(
        self,
        manager: Optional[JobManager] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=DEFAULT_REGISTRY,
    ) -> None:
        self.manager = manager if manager is not None else JobManager()
        self._host = host
        self._port = port
        self._registry = registry
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def port(self) -> int:
        """The bound port (useful after binding port 0)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> None:
        """Bind the listening socket and start the job workers."""
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- shared op dispatch (used by both transports) -------------------
    def dispatch(self, request: Request) -> dict[str, Any]:
        """Execute one non-streaming protocol request."""
        if request.op == "ping":
            return ok_response({"pong": True}, request_id=request.id)
        if request.op == "stats":
            return ok_response(
                {"stats": self.manager.stats()}, request_id=request.id
            )
        if request.op == "status":
            job = self.manager.get(request.job)
            return ok_response(
                job.to_dict(include_batches=True), request_id=request.id
            )
        if request.op == "cancel":
            job = self.manager.cancel(request.job)
            return ok_response(
                {"job": job.id, "state": job.state}, request_id=request.id
            )
        if request.op == "run":
            job = self.manager.submit(
                JobSpec(scenario=request.scenario, overrides=request.overrides)
            )
            return ok_response(
                {"job": job.id, "state": job.state}, request_id=request.id
            )
        # op == "sweep"
        scenarios = self._registry.select(
            match=request.match, tag=request.tag
        )
        if request.limit is not None:
            scenarios = scenarios[: request.limit]
        jobs = [
            self.manager.submit(
                JobSpec(scenario=scenario, overrides=request.overrides)
            )
            for scenario in scenarios
        ]
        return ok_response(
            {"jobs": [{"job": job.id, "scenario": job.spec.scenario.name}
                      for job in jobs]},
            request_id=request.id,
        )

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
            if method is None:
                return
            await self._route(method, path, body, writer)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None, None, None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None, None, None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        content_length = min(content_length, _MAX_BODY_BYTES)
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = path.split("?", 1)[0]
        try:
            if path == "/healthz" and method == "GET":
                return await _send_json(
                    writer, 200, ok_response({"pong": True})
                )
            if path == "/v1/stats" and method == "GET":
                return await _send_json(
                    writer, 200,
                    ok_response({"stats": self.manager.stats()}),
                )
            if path in ("/v1/run", "/v1/sweep"):
                if method != "POST":
                    return await _send_json(
                        writer, 405,
                        error_response("bad-request", "use POST"),
                    )
                payload = _decode_body(body)
                payload["op"] = path.rsplit("/", 1)[1]
                request = parse_request(payload, registry=self._registry)
                return await _send_json(writer, 200, self.dispatch(request))
            if path.startswith("/v1/jobs/"):
                tail = path[len("/v1/jobs/"):]
                if tail.endswith("/cancel") and method == "POST":
                    request = Request(op="cancel", job=tail[: -len("/cancel")])
                    return await _send_json(
                        writer, 200, self.dispatch(request)
                    )
                if tail.endswith("/stream") and method == "GET":
                    job_id = tail[: -len("/stream")]
                    return await self._stream_job(writer, job_id)
                if "/" not in tail and method == "GET":
                    request = Request(op="status", job=tail)
                    return await _send_json(
                        writer, 200, self.dispatch(request)
                    )
            await _send_json(
                writer, 404,
                error_response("bad-request", f"no route for {method} {path}"),
            )
        except RequestError as error:
            await _send_json(
                writer,
                _HTTP_STATUS.get(error.code, 500),
                error_response(error.code, str(error)),
            )
        except ReproError as error:
            await _send_json(
                writer, 400, error_response("bad-request", str(error))
            )
        except Exception as error:  # pragma: no cover - defensive
            await _send_json(
                writer, 500,
                error_response(
                    "internal", f"{type(error).__name__}: {error}"
                ),
            )

    async def _stream_job(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        """Stream a job's batches as JSON lines until it is terminal.

        The response has no ``Content-Length``; per HTTP/1.1 the close
        delimits the body (``Connection: close`` is set on every
        response anyway).  Each line is one event object:
        ``{"event": "batch", "batch": i, "payload": ...}`` per finished
        batch, then one ``{"event": "end", ...}`` with the job's final
        state (and merged result when it completed).
        """
        job = self.manager.get(job_id)  # may raise unknown-job
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent = 0
        while True:
            job.changed.clear()
            while sent < len(job.batches):
                line = json.dumps(
                    {
                        "event": "batch",
                        "job": job.id,
                        "batch": sent,
                        "payload": job.batches[sent],
                    },
                    sort_keys=True,
                )
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
                sent += 1
            if job.state in TERMINAL_STATES:
                break
            try:
                await asyncio.wait_for(
                    job.changed.wait(), timeout=_STREAM_POLL_SECONDS
                )
            except asyncio.TimeoutError:
                pass  # periodic re-check; a wakeup can never be lost
        end = {
            "event": "end",
            "job": job.id,
            "state": job.state,
            "batches": sent,
        }
        if job.error is not None:
            end["error"] = job.error
        if job.result is not None:
            end["result"] = job.result
        writer.write(json.dumps(end, sort_keys=True).encode("utf-8") + b"\n")
        await writer.drain()


def _decode_body(body: bytes) -> dict[str, Any]:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RequestError(
            "bad-request", f"request body is not valid JSON: {error}"
        ) from None
    if not isinstance(payload, Mapping):
        raise RequestError("bad-request", "request body must be an object")
    return dict(payload)


async def _send_json(
    writer: asyncio.StreamWriter, status: int, payload: Mapping[str, Any]
) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def serve_stdio(
    manager: JobManager,
    reader: asyncio.StreamReader,
    writer,
    *,
    registry=DEFAULT_REGISTRY,
) -> None:
    """The stdio transport: JSON-lines request/response over one pipe.

    Reads one JSON request per line and writes one JSON response per
    line (correlated via the optional ``id`` field).  EOF ends the
    session.  ``writer`` is anything with ``write(bytes)`` and
    ``async drain()`` -- a real :class:`asyncio.StreamWriter` or the
    blocking stdout facade ``python -m repro.service --stdio`` uses.
    """
    server = ServiceServer(manager, registry=registry)
    manager.start()
    while True:
        line = await reader.readline()
        if not line:
            break
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        request_id = None
        try:
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                raise RequestError(
                    "bad-request", f"not valid JSON: {error}"
                ) from None
            if isinstance(payload, Mapping):
                raw_id = payload.get("id")
                request_id = raw_id if isinstance(raw_id, str) else None
            request = parse_request(payload, registry=registry)
            response = server.dispatch(request)
        except RequestError as error:
            response = error_response(
                error.code, str(error), request_id=request_id
            )
        except ReproError as error:
            response = error_response(
                "bad-request", str(error), request_id=request_id
            )
        except Exception as error:  # pragma: no cover - defensive
            response = error_response(
                "internal", f"{type(error).__name__}: {error}",
                request_id=request_id,
            )
        writer.write(
            json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
        )
        await writer.drain()
