"""``python -m repro.service``: start the simulation server.

HTTP (default)::

    python -m repro.service --host 127.0.0.1 --port 8750

prints one parseable line once bound -- ``listening on 127.0.0.1:8750``
-- which is what :mod:`repro.service.loadgen` waits for when it spawns
a server itself (``--port 0`` binds an ephemeral port and reports it).

stdio::

    python -m repro.service --stdio

reads one JSON request per line on stdin and writes one JSON response
per line on stdout (the embedding transport; no socket involved).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
from typing import Optional

from repro.service.jobs import (
    DEFAULT_JOB_WORKERS,
    DEFAULT_QUEUE_SIZE,
    JobManager,
)
from repro.service.cache import DEFAULT_CACHE_CAPACITY, ResolutionCache
from repro.service.server import ServiceServer, serve_stdio


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve benchmark simulations over HTTP or stdio.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8750,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: %(default)s)")
    parser.add_argument("--stdio", action="store_true",
                        help="serve JSON lines on stdin/stdout instead "
                             "of HTTP")
    parser.add_argument("--queue-size", type=int,
                        default=DEFAULT_QUEUE_SIZE,
                        help="bounded job-queue capacity; submissions "
                             "beyond it are rejected (default: "
                             "%(default)s)")
    parser.add_argument("--cache-size", type=int,
                        default=DEFAULT_CACHE_CAPACITY,
                        help="resolution-cache LRU capacity (default: "
                             "%(default)s)")
    parser.add_argument("--job-workers", type=int,
                        default=DEFAULT_JOB_WORKERS,
                        help="concurrently executing jobs (default: "
                             "%(default)s)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="default per-job timeout in seconds "
                             "(requests may override; default: none)")
    return parser


def _build_manager(args: argparse.Namespace) -> JobManager:
    return JobManager(
        cache=ResolutionCache(args.cache_size),
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        default_timeout=args.timeout,
    )


async def _run_http(args: argparse.Namespace) -> None:
    server = ServiceServer(
        _build_manager(args), host=args.host, port=args.port
    )
    await server.start()
    print(f"listening on {server.host}:{server.port}", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.close()


class _BlockingStdoutWriter:
    """A write/drain facade over ``sys.stdout``.

    ``connect_write_pipe`` rejects a stdout that is a regular file
    (``python -m repro.service --stdio > log``), so the stdio transport
    writes synchronously instead: responses are single JSON lines, small
    enough that a blocking flush never stalls the loop meaningfully.
    """

    def write(self, data: bytes) -> None:
        sys.stdout.buffer.write(data)

    async def drain(self) -> None:
        sys.stdout.buffer.flush()


async def _run_stdio(args: argparse.Namespace) -> None:
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()

    # Feed stdin from a thread rather than connect_read_pipe: works
    # identically whether stdin is a pipe, a tty, or a redirected file.
    def pump() -> None:
        for line in sys.stdin.buffer:
            loop.call_soon_threadsafe(reader.feed_data, line)
        loop.call_soon_threadsafe(reader.feed_eof)

    threading.Thread(
        target=pump, daemon=True, name="repro-service-stdin"
    ).start()
    manager = _build_manager(args)
    try:
        await serve_stdio(manager, reader, _BlockingStdoutWriter())
    finally:
        await manager.close()


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_run_stdio(args) if args.stdio else _run_http(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
