"""Job queue and execution: bounded, cancellable, timeout-guarded.

A *job* is one benchmark request -- a scenario plus run overrides --
executed as a sequence of seed batches so results can stream out as they
finish.  :class:`JobManager` owns the bounded ``asyncio`` queue (whose
``put_nowait`` failure is the service's backpressure signal: the request
is rejected with ``queue-full`` rather than buffered without bound), a
small set of worker tasks draining it, the
:class:`~repro.service.cache.CachedResolver` all jobs share, and the
thread pool that keeps the CPU-bound benchmark calls off the event
loop.

Each batch is one
:func:`~repro.experiments.bench.run_benchmark` call reusing the cached
:class:`~repro.experiments.bench.PreparedScenario` -- the same code path
an in-process caller takes, which is what makes service results
byte-identical to local runs -- and multi-process trial sharding inside
a batch rides the same ``workers=`` seam.  Timeouts and cancellation are
cooperative at batch boundaries: a running batch is never killed
mid-trial (its thread cannot be), but no further batch starts once the
deadline passed or a cancel arrived, and the job records how far it
got.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import time
from typing import Any, Optional

from repro.errors import ReproError
from repro.experiments.bench import merge_benchmark_batches, run_benchmark
from repro.experiments.scenarios import Scenario
from repro.service.cache import CachedResolver, ResolutionCache
from repro.service.protocol import RequestError, RunOverrides

#: Job lifecycle states.
JOB_STATES = (
    "queued", "running", "done", "failed", "cancelled", "timeout"
)

#: States a job can no longer leave.
TERMINAL_STATES = ("done", "failed", "cancelled", "timeout")

#: Default bound on the job queue (backpressure threshold).
DEFAULT_QUEUE_SIZE = 64

#: Default number of concurrently executing jobs.
DEFAULT_JOB_WORKERS = 2


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """What a job runs: one scenario plus validated overrides."""

    scenario: Scenario
    overrides: RunOverrides = RunOverrides()


class Job:
    """One enqueued benchmark request and its evolving state."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.error: Optional[str] = None
        self.batches: list[dict[str, Any]] = []
        self.batches_total = (
            spec.overrides.seed_batches
            if spec.overrides.seed_batches is not None
            else 1
        )
        self.result: Optional[dict[str, Any]] = None
        self.resolve_outcome: Optional[str] = None
        self.resolve_seconds: Optional[float] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cancel_requested = False
        # Set whenever a batch lands or the state changes; streaming
        # consumers wait on it and re-check the job.
        self.changed = asyncio.Event()

    def _mark(self, state: str, error: Optional[str] = None) -> None:
        self.state = state
        if error is not None:
            self.error = error
        if state in TERMINAL_STATES:
            self.finished_at = time.time()
        self.changed.set()

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        end = self.finished_at if self.finished_at is not None else time.time()
        return end - self.started_at

    def to_dict(self, *, include_batches: bool = False) -> dict[str, Any]:
        """The job as the ``status`` response reports it."""
        payload: dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "scenario": self.spec.scenario.name,
            "batches_total": self.batches_total,
            "batches_done": len(self.batches),
            "resolve": {
                "outcome": self.resolve_outcome,
                "seconds": self.resolve_seconds,
            },
            "wall_seconds": self.wall_seconds,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        elif include_batches and self.batches:
            payload["batches"] = list(self.batches)
        return payload


class JobManager:
    """The service's execution core: queue, workers, shared cache.

    Start with :meth:`start` (idempotent) and dispose with
    :meth:`close`.  Tests drive it directly -- without the HTTP layer --
    or construct it unstarted to exercise backpressure deterministically.
    """

    def __init__(
        self,
        *,
        cache: Optional[ResolutionCache] = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        job_workers: int = DEFAULT_JOB_WORKERS,
        default_timeout: Optional[float] = None,
    ) -> None:
        if queue_size < 1:
            raise RequestError(
                "bad-request", f"queue_size must be >= 1, got {queue_size}"
            )
        if job_workers < 1:
            raise RequestError(
                "bad-request", f"job_workers must be >= 1, got {job_workers}"
            )
        self.resolver = CachedResolver(cache)
        self._queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=queue_size)
        self._job_workers = job_workers
        self._default_timeout = default_timeout
        self._jobs: dict[str, Job] = {}
        self._counter = 0
        self._workers: list[asyncio.Task] = []
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=job_workers,
            thread_name_prefix="repro-service-job",
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn the worker tasks (requires a running event loop)."""
        while len(self._workers) < self._job_workers:
            self._workers.append(
                asyncio.get_running_loop().create_task(self._worker())
            )

    async def close(self) -> None:
        """Cancel the workers and release the thread pool."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers.clear()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- submission / queries ------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job, or reject it when the queue is full.

        Raises
        ------
        RequestError
            With code ``queue-full`` -- the backpressure contract; the
            HTTP transport turns it into a 429.
        """
        self._counter += 1
        job = Job(f"job-{self._counter}", spec)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._counter -= 1
            raise RequestError(
                "queue-full",
                f"job queue is full ({self._queue.maxsize} pending); "
                "retry after some jobs finish",
            ) from None
        self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise RequestError(
                "unknown-job", f"no such job {job_id!r}"
            ) from None

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now, or a running one at its next batch."""
        job = self.get(job_id)
        if job.state == "queued":
            job.cancel_requested = True
            job._mark("cancelled")
        elif job.state not in TERMINAL_STATES:
            job.cancel_requested = True
        return job

    def stats(self) -> dict[str, Any]:
        states: dict[str, int] = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            states[job.state] += 1
        return {
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self._queue.maxsize,
            },
            "jobs": states,
            "cache": self.resolver.stats(),
        }

    # -- execution -----------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job.state == "queued" and not job.cancel_requested:
                    await self.execute(job)
            finally:
                self._queue.task_done()

    async def execute(self, job: Job) -> None:
        """Run ``job`` to a terminal state (resolution, batches, merge)."""
        spec = job.spec
        overrides = spec.overrides
        job.started_at = time.time()
        job._mark("running")
        timeout = (
            overrides.timeout_seconds
            if overrides.timeout_seconds is not None
            else self._default_timeout
        )
        deadline = (
            job.started_at + timeout if timeout is not None else None
        )
        try:
            config = spec.scenario.execution_config()
            prepared, outcome, seconds = await self.resolver.resolve(
                spec.scenario, config
            )
            job.resolve_outcome = outcome
            job.resolve_seconds = seconds

            per_batch = (
                overrides.trials
                if overrides.trials is not None
                else spec.scenario.trials
            )
            base_seed = (
                overrides.seed
                if overrides.seed is not None
                else spec.scenario.seed
            )
            loop = asyncio.get_running_loop()
            for batch in range(job.batches_total):
                if job.cancel_requested:
                    job._mark("cancelled")
                    return
                if deadline is not None and time.time() >= deadline:
                    job._mark(
                        "timeout",
                        f"deadline of {timeout}s reached after "
                        f"{len(job.batches)}/{job.batches_total} batch(es)",
                    )
                    return
                payload = await loop.run_in_executor(
                    self._executor,
                    self._run_batch,
                    spec,
                    config,
                    prepared,
                    per_batch,
                    base_seed + batch * per_batch,
                )
                job.batches.append(payload)
                job.changed.set()
            job.result = (
                merge_benchmark_batches(job.batches)
                if len(job.batches) > 1
                else job.batches[0]
            )
            job._mark("done")
        except ReproError as error:
            job._mark("failed", str(error))
        except Exception as error:  # defensive: never kill the worker
            job._mark("failed", f"{type(error).__name__}: {error}")

    def _run_batch(self, spec, config, prepared, trials, seed):
        return run_benchmark(
            spec.scenario,
            trials=trials,
            seed=seed,
            include_reference=spec.overrides.include_reference,
            config=config,
            workers=spec.overrides.workers,
            prepared=prepared,
        )
