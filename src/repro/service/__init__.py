"""``repro.service``: the simulation-serving layer (stdlib-only).

An ``asyncio`` job-queue server that accepts benchmark requests over
HTTP or stdio JSON lines, caches compiled executions in an LRU keyed by
execution identity + topology digest, shards work over a bounded worker
pool, and streams per-batch results -- see ``docs/EXPERIMENTS.md``
("Serving simulations").

Layout: :mod:`~repro.service.protocol` (wire format and validation),
:mod:`~repro.service.cache` (LRU + single-flight resolver),
:mod:`~repro.service.jobs` (queue, workers, cancellation/timeouts),
:mod:`~repro.service.server` (HTTP and stdio transports),
:mod:`~repro.service.loadgen` (the load driver that produces the
``BENCH_service-*`` artifacts).  Start one with
``python -m repro.service``.
"""

from repro.service.cache import (
    DEFAULT_CACHE_CAPACITY,
    CachedResolver,
    ResolutionCache,
    resolution_key,
)
from repro.service.jobs import (
    DEFAULT_JOB_WORKERS,
    DEFAULT_QUEUE_SIZE,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobManager,
    JobSpec,
)
from repro.service.protocol import (
    ERROR_CODES,
    OPERATIONS,
    SERVICE_SCHEMA,
    Request,
    RequestError,
    RunOverrides,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.server import ServiceServer, serve_stdio

__all__ = [
    "CachedResolver",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_JOB_WORKERS",
    "DEFAULT_QUEUE_SIZE",
    "ERROR_CODES",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobSpec",
    "OPERATIONS",
    "Request",
    "RequestError",
    "ResolutionCache",
    "RunOverrides",
    "SERVICE_SCHEMA",
    "ServiceServer",
    "TERMINAL_STATES",
    "error_response",
    "ok_response",
    "parse_request",
    "resolution_key",
    "serve_stdio",
]
