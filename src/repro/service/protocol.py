"""The ``repro-service/1`` wire protocol: JSON requests and responses.

One request/response vocabulary is shared by both transports (HTTP and
stdio JSON lines), so the parsing and validation live here, away from
any socket code.  Like the bench schema in
:mod:`repro.experiments.persistence`, validation is by hand (stdlib
only) and every rejection names the offending field; a malformed request
becomes a structured error response, never a traceback on the server.

Operations
----------
``run``
    Enqueue one benchmark job: a scenario (a registered name or an
    inline scenario object) plus run overrides (``trials``, ``seed``,
    ``seed_batches``, ``workers``, ``include_reference``,
    ``timeout_seconds``).
``sweep``
    Enqueue one job per registered scenario matching ``match``/``tag``
    (bounded by ``limit``), sharing the run overrides.
``status``
    One job's state, progress and (when finished) merged result.
``cancel``
    Cancel a queued job, or request cooperative cancellation of a
    running one (takes effect at the next batch boundary).
``stats``
    Server counters: resolution-cache hits/misses/evictions, queue
    depth, jobs by state.
``ping``
    Liveness probe.

Error codes
-----------
``bad-request`` (malformed JSON or fields), ``unknown-scenario``,
``unknown-job``, ``queue-full`` (backpressure: the bounded job queue
rejected the submission -- HTTP maps this to 429), ``internal``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional

from repro.errors import ConfigurationError
from repro.experiments.scenarios import Scenario

#: Protocol identifier, echoed in every response envelope.
SERVICE_SCHEMA = "repro-service/1"

#: The operations a request may name.
OPERATIONS = ("run", "sweep", "status", "cancel", "stats", "ping")

#: Machine-readable error codes (the HTTP transport maps them to status
#: codes; stdio clients switch on them directly).
ERROR_CODES = (
    "bad-request",
    "unknown-scenario",
    "unknown-job",
    "queue-full",
    "internal",
)

#: Run-override fields accepted by ``run`` and ``sweep`` requests, with
#: their expected types (bool is checked strictly -- JSON ``true``, not
#: a truthy number).
_OVERRIDE_FIELDS = {
    "trials": int,
    "seed": int,
    "seed_batches": int,
    "workers": int,
    "include_reference": bool,
    "timeout_seconds": (int, float),
}


class RequestError(ConfigurationError):
    """A request that cannot be served, with a protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code


@dataclasses.dataclass(frozen=True)
class RunOverrides:
    """Validated run-level options shared by ``run`` and ``sweep``."""

    trials: Optional[int] = None
    seed: Optional[int] = None
    seed_batches: Optional[int] = None
    workers: Optional[int] = None
    include_reference: bool = False
    timeout_seconds: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class Request:
    """One parsed, validated protocol request."""

    op: str
    scenario: Optional[Scenario] = None
    overrides: RunOverrides = RunOverrides()
    job: Optional[str] = None
    match: Optional[str] = None
    tag: Optional[str] = None
    limit: Optional[int] = None
    #: Client-chosen correlation id, echoed verbatim in the response
    #: (how stdio clients pair pipelined requests with replies).
    id: Optional[str] = None


def parse_request(payload: Any, *, registry) -> Request:
    """Validate one decoded JSON request against the protocol.

    Parameters
    ----------
    payload:
        The decoded JSON value (must be an object).
    registry:
        The :class:`~repro.experiments.scenarios.ScenarioRegistry` used
        to resolve scenario *names*; inline scenario objects are built
        through :meth:`Scenario.from_dict` and need no registration.

    Raises
    ------
    RequestError
        With code ``bad-request`` or ``unknown-scenario``.
    """
    if not isinstance(payload, Mapping):
        raise RequestError(
            "bad-request", "request must be a JSON object"
        )
    op = payload.get("op")
    if op not in OPERATIONS:
        raise RequestError(
            "bad-request",
            f"op must be one of {OPERATIONS}, got {op!r}",
        )
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise RequestError("bad-request", "id must be a string")

    if op in ("status", "cancel"):
        job = payload.get("job")
        if not isinstance(job, str) or not job:
            raise RequestError(
                "bad-request", f"op {op!r} requires a 'job' id string"
            )
        return Request(op=op, job=job, id=request_id)

    if op in ("stats", "ping"):
        return Request(op=op, id=request_id)

    overrides = _parse_overrides(payload)
    if op == "run":
        scenario = _parse_scenario(payload.get("scenario"), registry)
        return Request(
            op=op, scenario=scenario, overrides=overrides, id=request_id
        )

    # op == "sweep"
    match = payload.get("match")
    tag = payload.get("tag")
    limit = payload.get("limit")
    if match is not None and not isinstance(match, str):
        raise RequestError("bad-request", "match must be a string")
    if tag is not None and not isinstance(tag, str):
        raise RequestError("bad-request", "tag must be a string")
    if limit is not None and (
        isinstance(limit, bool) or not isinstance(limit, int) or limit < 1
    ):
        raise RequestError("bad-request", "limit must be an integer >= 1")
    return Request(
        op=op, match=match, tag=tag, limit=limit, overrides=overrides,
        id=request_id,
    )


def _parse_scenario(value: Any, registry) -> Scenario:
    if isinstance(value, str) and value:
        try:
            return registry.get(value)
        except ConfigurationError:
            raise RequestError(
                "unknown-scenario",
                f"scenario {value!r} is not registered",
            ) from None
    if isinstance(value, Mapping):
        try:
            return Scenario.from_dict(value)
        except (ConfigurationError, KeyError, TypeError, ValueError) as error:
            raise RequestError(
                "bad-request", f"invalid inline scenario: {error}"
            ) from None
    raise RequestError(
        "bad-request",
        "run requires 'scenario': a registered name or a scenario object",
    )


def _parse_overrides(payload: Mapping[str, Any]) -> RunOverrides:
    values: dict[str, Any] = {}
    for field, types in _OVERRIDE_FIELDS.items():
        value = payload.get(field)
        if value is None:
            continue
        if types is not bool and isinstance(value, bool):
            raise RequestError(
                "bad-request", f"{field} must not be a boolean"
            )
        if not isinstance(value, types):
            raise RequestError(
                "bad-request",
                f"{field} has wrong type {type(value).__name__}",
            )
        values[field] = value
    for field in ("trials", "seed_batches", "workers"):
        if field in values and values[field] < 1:
            raise RequestError(
                "bad-request", f"{field} must be >= 1, got {values[field]}"
            )
    if "timeout_seconds" in values:
        values["timeout_seconds"] = float(values["timeout_seconds"])
        if not values["timeout_seconds"] > 0:
            raise RequestError(
                "bad-request", "timeout_seconds must be > 0"
            )
    return RunOverrides(**values)


def ok_response(
    payload: Mapping[str, Any], *, request_id: Optional[str] = None
) -> dict[str, Any]:
    """The success envelope: ``{"schema", "ok": true, **payload}``."""
    response: dict[str, Any] = {"schema": SERVICE_SCHEMA, "ok": True}
    if request_id is not None:
        response["id"] = request_id
    response.update(payload)
    return response


def error_response(
    code: str, message: str, *, request_id: Optional[str] = None
) -> dict[str, Any]:
    """The failure envelope, with a machine-readable ``error.code``."""
    if code not in ERROR_CODES:
        code = "internal"
    response: dict[str, Any] = {
        "schema": SERVICE_SCHEMA,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response
