"""``python -m repro.service.loadgen``: drive a server, record artifacts.

A stdlib-only load driver for the HTTP transport.  It either targets a
running server (``--url``) or spawns one itself on an ephemeral port
(``--spawn``, the CI path), then:

1. pushes a *mixed* workload through the queue -- several ``run``
   requests plus a ``sweep`` over the smoke tag -- and polls every job
   to a terminal state;
2. runs the cold/warm cache probe: ``service-cold`` on a fresh cache
   (the resolver compiles), then ``service-warm`` -- a scenario with the
   identical execution identity and topology digest -- which must hit
   the LRU;
3. writes ``BENCH_service-cold.json`` / ``BENCH_service-warm.json``:
   the jobs' benchmark payloads (already valid ``repro-bench/1``
   documents, since the service runs the same
   :func:`~repro.experiments.bench.run_benchmark` path), each extended
   with a ``service`` block recording the resolve outcome and latency
   plus queue/cache statistics.  ``--min-speedup`` turns the cold/warm
   resolve ratio into an exit-code assertion (CI uses 5).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Mapping, Optional

from repro.errors import SimulationError
from repro.experiments.persistence import write_bench

#: How long to poll a job before declaring the driver stuck.
_POLL_DEADLINE_SECONDS = 900.0
_POLL_INTERVAL_SECONDS = 0.2


class ServiceClient:
    """A minimal blocking JSON client for the HTTP transport."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url.rstrip("/")

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Any]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            # Protocol errors (400/404/429/500) still carry a JSON
            # envelope; surface it instead of the bare status.
            detail = error.read().decode("utf-8", errors="replace")
            raise SimulationError(
                f"{method} {path} -> HTTP {error.code}: {detail}"
            ) from None

    def run(self, scenario: str, **overrides: Any) -> str:
        response = self.request(
            "POST", "/v1/run", {"scenario": scenario, **overrides}
        )
        return response["job"]

    def sweep(self, **fields: Any) -> list[str]:
        response = self.request("POST", "/v1/sweep", fields)
        return [entry["job"] for entry in response["jobs"]]

    def status(self, job: str) -> dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job}")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/v1/stats")["stats"]

    def wait(self, job: str) -> dict[str, Any]:
        """Poll ``job`` to a terminal state and return its final status."""
        deadline = time.monotonic() + _POLL_DEADLINE_SECONDS
        while True:
            status = self.status(job)
            if status["state"] in ("done", "failed", "cancelled", "timeout"):
                if status["state"] != "done":
                    raise SimulationError(
                        f"job {job} ended {status['state']}: "
                        f"{status.get('error', '(no error recorded)')}"
                    )
                return status
            if time.monotonic() > deadline:
                raise SimulationError(
                    f"job {job} still {status['state']} after "
                    f"{_POLL_DEADLINE_SECONDS:.0f}s"
                )
            time.sleep(_POLL_INTERVAL_SECONDS)


def spawn_server(extra_args: Optional[list[str]] = None):
    """Start ``python -m repro.service`` on an ephemeral port.

    Returns ``(process, base_url)`` once the server prints its
    ``listening on host:port`` line.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"]
        + (extra_args or []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    if not line.startswith("listening on "):
        process.kill()
        raise SimulationError(
            f"server did not report its address, got {line!r}"
        )
    return process, "http://" + line[len("listening on "):]


def drive_mixed_load(client: ServiceClient, *, trials: int) -> int:
    """Queue several runs plus a smoke sweep; wait for all. Returns count."""
    jobs = [
        client.run("broadcast-path-n32", trials=trials),
        client.run("broadcast-grid-n64", trials=trials, seed_batches=2),
        client.run("election-complete-n32", trials=trials),
    ]
    jobs += client.sweep(tag="smoke", limit=3, trials=trials)
    for job in jobs:
        client.wait(job)
    return len(jobs)


def run_probe(
    client: ServiceClient, scenario: str, *, trials: Optional[int]
) -> dict[str, Any]:
    """Run one cache-probe scenario to completion; return its status."""
    overrides: dict[str, Any] = {}
    if trials is not None:
        overrides["trials"] = trials
    return client.wait(client.run(scenario, **overrides))


def attach_service_block(
    status: Mapping[str, Any], stats: Mapping[str, Any]
) -> dict[str, Any]:
    """The job's bench payload with the ``service`` sidecar block.

    ``validate_bench`` ignores unknown top-level fields, so the extended
    payload still validates under ``repro-bench/1``.
    """
    payload = dict(status["result"])
    payload["service"] = {
        "schema": "repro-service/1",
        "job": status["job"],
        "resolve": dict(status["resolve"]),
        "wall_seconds": status["wall_seconds"],
        "queue": dict(stats["queue"]),
        "cache": {
            key: stats["cache"][key]
            for key in ("hits", "misses", "evictions", "entries", "compiles")
        },
    }
    return payload


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Drive a repro.service server and record the "
                    "cold/warm cache-probe artifacts.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running server")
    target.add_argument("--spawn", action="store_true",
                        help="spawn a private server on an ephemeral port")
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_service-*.json "
                             "(omit to skip writing)")
    parser.add_argument("--trials", type=int, default=None,
                        help="override trials for every request")
    parser.add_argument("--mixed-trials", type=int, default=2,
                        help="trials for the mixed-load phase "
                             "(default: %(default)s)")
    parser.add_argument("--skip-mixed", action="store_true",
                        help="run only the cold/warm probe")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless cold/warm resolve ratio is at "
                             "least this (CI uses 5)")
    args = parser.parse_args(argv)

    process = None
    try:
        if args.spawn:
            process, base_url = spawn_server()
        else:
            base_url = args.url
        client = ServiceClient(base_url)
        client.request("GET", "/healthz")

        if not args.skip_mixed:
            count = drive_mixed_load(client, trials=args.mixed_trials)
            print(f"mixed load: {count} jobs done")

        cold = run_probe(client, "service-cold", trials=args.trials)
        warm = run_probe(client, "service-warm", trials=args.trials)
        stats = client.stats()

        cold_s = cold["resolve"]["seconds"]
        warm_s = warm["resolve"]["seconds"]
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        print(
            f"cold resolve ({cold['resolve']['outcome']}): {cold_s:.4f}s  "
            f"warm resolve ({warm['resolve']['outcome']}): {warm_s:.6f}s  "
            f"speedup: {speedup:.1f}x"
        )

        if args.out is not None:
            out = pathlib.Path(args.out)
            for status in (cold, warm):
                path = write_bench(attach_service_block(status, stats), out)
                print(f"wrote {path}")

        if warm["resolve"]["outcome"] != "hit":
            print("error: warm probe did not hit the resolution cache",
                  file=sys.stderr)
            return 1
        if args.min_speedup is not None and speedup < args.min_speedup:
            print(
                f"error: cold/warm speedup {speedup:.1f}x below required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
        return 0
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
