"""The resolution cache: compiled executions served warm.

Every cold benchmark run pays topology construction, the exact-diameter
summary, round-budget derivation, strategy-schedule compilation and the
CSR adjacency build before the first trial draws a bit
(:func:`repro.experiments.bench.prepare_scenario`).  The service
amortises that over repeated requests with a small LRU keyed by
:meth:`repro.api.ExecutionConfig.cache_key` -- the config's execution
identity joined with a :func:`repro.api.topology_digest` of the
scenario's topology description -- so two requests share an entry
exactly when they would compile the identical resolution, and two
configs that execute identically on *different* graphs never collide.

:class:`ResolutionCache` is the synchronous LRU (usable on its own);
:class:`CachedResolver` is the ``asyncio`` facade the server uses,
adding single-flight coalescing: concurrent requests for the same key
await one shared compile instead of stampeding the executor.
"""

from __future__ import annotations

import asyncio
import collections
import time
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.api import ExecutionConfig, topology_digest
from repro.experiments.bench import PreparedScenario, prepare_scenario
from repro.experiments.scenarios import Scenario

#: Default number of compiled resolutions kept warm.  Entries hold the
#: full graph + schedule, so the budget is deliberately modest; size it
#: to the working set of distinct (config, topology) pairs, not to the
#: request volume.
DEFAULT_CACHE_CAPACITY = 32


def resolution_key(scenario: Scenario, config: ExecutionConfig) -> str:
    """The cache key for running ``scenario`` under ``config``."""
    return config.cache_key(
        topology_digest(scenario.family, scenario.topology_args)
    )


class ResolutionCache:
    """A synchronous LRU of :class:`PreparedScenario` entries."""

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._entries: collections.OrderedDict[str, PreparedScenario] = (
            collections.OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[PreparedScenario]:
        """The entry for ``key`` (refreshed as most-recently-used), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: str, prepared: PreparedScenario) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = prepared
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def stats(self) -> dict[str, int]:
        """Counters for the ``stats`` endpoint (and the tests)."""
        return {
            "capacity": self._capacity,
            "entries": len(self._entries),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }


class CachedResolver:
    """Single-flight async resolution over a :class:`ResolutionCache`.

    ``resolve`` returns ``(prepared, outcome, seconds)`` where
    ``outcome`` is ``"hit"`` (served from the LRU), ``"miss"`` (this
    call compiled) or ``"coalesced"`` (another in-flight call for the
    same key compiled; this one awaited it), and ``seconds`` is the time
    this caller spent obtaining the resolution -- the number the
    ``BENCH_service-*`` artifacts report as cold-vs-warm resolve
    latency.
    """

    def __init__(
        self,
        cache: Optional[ResolutionCache] = None,
        *,
        compile: Callable[
            [Scenario, ExecutionConfig], PreparedScenario
        ] = prepare_scenario,
    ) -> None:
        self._cache = cache if cache is not None else ResolutionCache()
        self._compile = compile
        self._inflight: dict[str, asyncio.Future] = {}
        self._compiles = 0
        self._coalesced = 0

    @property
    def cache(self) -> ResolutionCache:
        return self._cache

    def stats(self) -> dict[str, int]:
        return dict(
            self._cache.stats(),
            compiles=self._compiles,
            coalesced=self._coalesced,
            inflight=len(self._inflight),
        )

    async def resolve(
        self, scenario: Scenario, config: Optional[ExecutionConfig] = None
    ) -> tuple[PreparedScenario, str, float]:
        if config is None:
            config = scenario.execution_config()
        key = resolution_key(scenario, config)
        started = time.perf_counter()
        prepared = self._cache.get(key)
        if prepared is not None:
            return prepared, "hit", time.perf_counter() - started

        pending = self._inflight.get(key)
        if pending is not None:
            self._coalesced += 1
            prepared = await asyncio.shield(pending)
            return prepared, "coalesced", time.perf_counter() - started

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        try:
            self._compiles += 1
            prepared = await loop.run_in_executor(
                None, self._compile, scenario, config
            )
        except BaseException as error:
            future.set_exception(error)
            # A coalesced awaiter that never retrieves the exception
            # would log noise at teardown; mark it retrieved.
            future.exception()
            raise
        else:
            future.set_result(prepared)
            self._cache.put(key, prepared)
            return prepared, "miss", time.perf_counter() - started
        finally:
            del self._inflight[key]
