"""The paper's core contribution: Compete, broadcasting, leader election.

* :mod:`repro.core.parameters` -- validated ``(n, D)``-derived schedule
  lengths (:class:`CompeteParameters`).
* :mod:`repro.core.compete` -- the Compete primitive: candidate messages
  race via interleaved Decay rounds until the highest one saturates the
  network.
* :mod:`repro.core.clustering` -- the cluster decomposition (BFS-grown
  clusters with leaders and contention bounds) behind the Lemma 2.3
  cost-charged schedules.
* :mod:`repro.core.broadcast` -- single-source broadcasting as the
  one-candidate instance of Compete, with spontaneous transmissions on
  by default.
* :mod:`repro.core.leader_election` -- candidates self-select with
  probability ``~1/n`` and Compete on random identifiers; retried until
  a unique leader saturates.

Every algorithm accepts two orthogonal axes:

* ``strategy`` selects the inner loop's transmission schedule:
  ``"skeleton"`` (the classical uniform ``O((D + log n) · log n)`` Decay
  schedule) or ``"clustered"`` (the cluster-decomposed, Lemma 2.3
  cost-charged schedule that removes the multiplicative ``log n``
  wherever contention is below the global worst case).  Custom
  strategies plug in as :class:`~repro.core.compete.CompeteStrategy`
  instances.
* ``backend`` selects how rounds are executed: ``"reference"`` (the
  default) drives one :class:`~repro.network.protocol.NodeProtocol` per
  node through the pure-Python
  :class:`~repro.simulation.runner.ProtocolRunner`, while
  ``"vectorized"`` runs the same dynamics through the NumPy batch engine
  (:class:`~repro.simulation.vectorized.VectorizedCompeteEngine`).

For every strategy, the backends are **round-exact equivalents**: given
the same graph, candidates and seed they produce identical results --
same winner, same per-node reception rounds, same metric counters -- so
the vectorized backend can stand in wherever throughput matters (see
:mod:`repro.experiments`), and :meth:`Compete.run_batch` runs many seeded
trials as one batched computation.
"""

from repro.core.parameters import DEFAULT_MARGIN, CompeteParameters
from repro.core.clustering import Cluster, ClusterDecomposition, decompose
from repro.core.compete import (
    BACKENDS,
    DEFAULT_CLUSTER_RADIUS,
    STRATEGIES,
    CandidateSpec,
    ClusteredStrategy,
    Compete,
    CompeteNodeState,
    CompeteProtocol,
    CompeteResult,
    CompeteStrategy,
    SkeletonStrategy,
    compete,
    resolve_strategy,
)
from repro.core.broadcast import BroadcastResult, broadcast, broadcast_batch
from repro.core.decay_broadcast import (
    DecayBroadcastResult,
    DecayRelayProtocol,
    decay_broadcast,
    decay_broadcast_batch,
)
from repro.core.leader_election import LeaderElectionResult, elect_leader

__all__ = [
    "DEFAULT_MARGIN",
    "CompeteParameters",
    "Cluster",
    "ClusterDecomposition",
    "decompose",
    "BACKENDS",
    "DEFAULT_CLUSTER_RADIUS",
    "STRATEGIES",
    "CandidateSpec",
    "ClusteredStrategy",
    "Compete",
    "CompeteNodeState",
    "CompeteProtocol",
    "CompeteResult",
    "CompeteStrategy",
    "SkeletonStrategy",
    "compete",
    "resolve_strategy",
    "BroadcastResult",
    "broadcast",
    "broadcast_batch",
    "DecayBroadcastResult",
    "DecayRelayProtocol",
    "decay_broadcast",
    "decay_broadcast_batch",
    "LeaderElectionResult",
    "elect_leader",
]
