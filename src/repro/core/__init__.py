"""The paper's core contribution: Compete, broadcasting, leader election.

* :mod:`repro.core.parameters` -- validated ``(n, D)``-derived schedule
  lengths (:class:`CompeteParameters`).
* :mod:`repro.core.compete` -- the Compete primitive: candidate messages
  race via interleaved Decay rounds until the highest one saturates the
  network.
* :mod:`repro.core.broadcast` -- single-source broadcasting as the
  one-candidate instance of Compete, with spontaneous transmissions on
  by default.
* :mod:`repro.core.leader_election` -- candidates self-select with
  probability ``~1/n`` and Compete on random identifiers; retried until
  a unique leader saturates.
"""

from repro.core.parameters import DEFAULT_MARGIN, CompeteParameters
from repro.core.compete import (
    CandidateSpec,
    Compete,
    CompeteNodeState,
    CompeteProtocol,
    CompeteResult,
    compete,
)
from repro.core.broadcast import BroadcastResult, broadcast
from repro.core.leader_election import LeaderElectionResult, elect_leader

__all__ = [
    "DEFAULT_MARGIN",
    "CompeteParameters",
    "CandidateSpec",
    "Compete",
    "CompeteNodeState",
    "CompeteProtocol",
    "CompeteResult",
    "compete",
    "BroadcastResult",
    "broadcast",
    "LeaderElectionResult",
    "elect_leader",
]
