"""The paper's core contribution: Compete, broadcasting, leader election.

* :mod:`repro.core.parameters` -- validated ``(n, D)``-derived schedule
  lengths (:class:`CompeteParameters`).
* :mod:`repro.core.compete` -- the Compete primitive: candidate messages
  race via interleaved Decay rounds until the highest one saturates the
  network.
* :mod:`repro.core.broadcast` -- single-source broadcasting as the
  one-candidate instance of Compete, with spontaneous transmissions on
  by default.
* :mod:`repro.core.leader_election` -- candidates self-select with
  probability ``~1/n`` and Compete on random identifiers; retried until
  a unique leader saturates.

Every algorithm accepts a ``backend`` argument selecting how its rounds
are executed: ``"reference"`` (the default) drives one
:class:`~repro.network.protocol.NodeProtocol` per node through the
pure-Python :class:`~repro.simulation.runner.ProtocolRunner`, while
``"vectorized"`` runs the same dynamics through the NumPy batch engine
(:class:`~repro.simulation.vectorized.VectorizedCompeteEngine`).  The
backends are **round-exact equivalents**: given the same graph,
candidates and seed they produce identical results -- same winner, same
per-node reception rounds, same metric counters -- so the vectorized
backend can stand in wherever throughput matters (see
:mod:`repro.experiments`), and :meth:`Compete.run_batch` runs many seeded
trials as one batched computation.
"""

from repro.core.parameters import DEFAULT_MARGIN, CompeteParameters
from repro.core.compete import (
    CandidateSpec,
    Compete,
    CompeteNodeState,
    CompeteProtocol,
    CompeteResult,
    compete,
)
from repro.core.broadcast import BroadcastResult, broadcast
from repro.core.leader_election import LeaderElectionResult, elect_leader

__all__ = [
    "DEFAULT_MARGIN",
    "CompeteParameters",
    "CandidateSpec",
    "Compete",
    "CompeteNodeState",
    "CompeteProtocol",
    "CompeteResult",
    "compete",
    "BroadcastResult",
    "broadcast",
    "LeaderElectionResult",
    "elect_leader",
]
