"""The Compete primitive: candidate messages race until one saturates.

Compete is the paper's workhorse: several *candidate* nodes inject
messages, every informed node relays the **highest** message it has heard
so far using interleaved Decay rounds (Algorithm 5), and -- because the
message order is total (Section 4) -- the globally highest candidate
message eventually floods the whole network while every lower message
dies out.  Broadcasting is Compete with one candidate; leader election is
Compete on random candidate identifiers.

The *spontaneous transmissions* of the paper's title appear here as the
``spontaneous`` flag: when set, nodes that were given no candidate
message still participate from round 0 with a dummy message ranked below
every real candidate.  Uninformed nodes therefore transmit before ever
hearing from a source -- the behaviour that separates this model from the
classical one where only informed nodes may speak.

The simulated schedule runs ``⌈margin · (D + log2 n)⌉`` Decay rounds
(:class:`~repro.core.parameters.CompeteParameters`); by Lemma 3.1 each
round pushes the frontier of the eventual winner past any listener with
constant probability, so the winner saturates the network with
overwhelming probability.  This is the ``O((D + log n) · log n)``-round
skeleton of the paper's algorithms; the clustering machinery that removes
the multiplicative ``log n`` is future work (see ``DESIGN.md``).

Two interchangeable backends execute the schedule: ``"reference"`` drives
one :class:`CompeteProtocol` per node through the pure-Python
:class:`~repro.simulation.runner.ProtocolRunner`, and ``"vectorized"``
replays the identical dynamics through
:class:`~repro.simulation.vectorized.VectorizedCompeteEngine` as dense
array operations.  Both produce the same :class:`CompeteResult` round for
round under a shared seed; :meth:`Compete.run_batch` additionally runs
many seeded trials at once on the vectorized backend.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message, highest_message
from repro.network.metrics import NetworkMetrics
from repro.network.protocol import Action, NodeProtocol
from repro.network.radio import CollisionModel, RadioNetwork
from repro.schedules.decay import decay_transmit_step
from repro.simulation.runner import ProtocolRunner, spawn_node_rngs
from repro.simulation.vectorized import (
    NO_MESSAGE,
    VectorizedCompeteEngine,
    rank_messages,
)
from repro.topology.validation import validate_radio_topology
from repro.core.parameters import DEFAULT_MARGIN, CompeteParameters

#: Candidate specifications accepted by :meth:`Compete.run`: a mapping
#: from node to either a ready-made :class:`Message` or a plain integer
#: value (wrapped into ``Message(value, source=node)``).
CandidateSpec = Mapping[Any, Union[Message, int]]

#: The execution backends of :meth:`Compete.run`.
BACKENDS = ("reference", "vectorized")


@dataclasses.dataclass(frozen=True)
class CompeteNodeState:
    """A node's local state at the end of a Compete run.

    Attributes
    ----------
    best:
        The highest message the node knows (``None`` if it never heard
        one and had none of its own).
    adopted_round:
        The global round number in which ``best`` was adopted; ``-1``
        means the node knew it before the first round (it was a
        candidate), ``None`` means it knows nothing.
    """

    best: Optional[Message]
    adopted_round: Optional[int]


class CompeteProtocol(NodeProtocol):
    """Per-node program of Compete: relay the highest known message.

    Each round the node either listens (if it knows nothing) or applies
    the Decay step rule to decide whether to transmit its current best
    message.  The Decay step index is derived from the *global* round
    number, so all participants stay aligned within each Decay round --
    the alignment Lemma 3.1's analysis assumes.
    """

    def __init__(
        self,
        node_id: Any,
        num_nodes: int,
        diameter: int,
        rng: np.random.Generator,
        decay_steps: int,
        initial: Optional[Message] = None,
    ) -> None:
        super().__init__(node_id, num_nodes, diameter)
        self._rng = rng
        self._decay_steps = decay_steps
        self.best: Optional[Message] = initial
        self.adopted_round: Optional[int] = None if initial is None else -1

    def act(self, round_number: int) -> Action:
        if self.best is None:
            return Action.listen()
        step_in_round = (round_number % self._decay_steps) + 1
        if decay_transmit_step(step_in_round, self._rng):
            return Action.transmit(self.best)
        return Action.listen()

    def receive(self, round_number: int, heard: Any) -> None:
        if isinstance(heard, Message) and heard.beats(self.best):
            self.best = heard
            self.adopted_round = round_number

    def output(self) -> CompeteNodeState:
        return CompeteNodeState(best=self.best, adopted_round=self.adopted_round)


@dataclasses.dataclass(frozen=True)
class CompeteResult:
    """Outcome of one Compete run.

    Attributes
    ----------
    success:
        True when there was at least one candidate and every node ended
        the run knowing the winning message.
    winner:
        The highest candidate message (``None`` when no candidates were
        supplied).
    rounds:
        Simulator rounds actually executed (the run stops early once the
        winner has saturated the network).
    num_candidates:
        How many real candidates entered the race.
    reception_rounds:
        Per-node adoption time of the winner: the global round number in
        which the node adopted it, ``-1`` for nodes that held it from the
        start, or ``None`` for nodes that never learned it.
    final_messages:
        The highest message each node knew when the run ended (dummy
        messages from spontaneous participation included).
    metrics:
        Round/transmission accounting for this run.
    parameters:
        The schedule the run used.
    """

    success: bool
    winner: Optional[Message]
    rounds: int
    num_candidates: int
    reception_rounds: Mapping[Any, Optional[int]]
    final_messages: Mapping[Any, Optional[Message]]
    metrics: NetworkMetrics
    parameters: CompeteParameters

    @property
    def informed_fraction(self) -> float:
        """Fraction of nodes that ended the run knowing the winner."""
        total = len(self.final_messages)
        if total == 0 or self.winner is None:
            return 0.0
        informed = sum(
            1 for best in self.final_messages.values() if best == self.winner
        )
        return informed / total


class Compete:
    """The Compete primitive bound to one network topology.

    Parameters
    ----------
    graph:
        A connected radio-network topology
        (:func:`~repro.topology.validation.validate_radio_topology` is
        applied eagerly).
    parameters:
        Explicit schedule lengths; derived from the graph via
        :meth:`CompeteParameters.from_graph` when omitted.
    margin:
        Margin for the derived schedule (ignored when ``parameters`` is
        given).
    collision_model:
        Collision semantics for the underlying network.
    backend:
        ``"reference"`` (default) drives per-node protocols through
        :class:`~repro.simulation.runner.ProtocolRunner`; ``"vectorized"``
        runs the round-exact equivalent array simulation
        (:class:`~repro.simulation.vectorized.VectorizedCompeteEngine`).
        Either way the same seed yields the same :class:`CompeteResult`.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        parameters: Optional[CompeteParameters] = None,
        margin: float = DEFAULT_MARGIN,
        collision_model: CollisionModel = CollisionModel.NO_DETECTION,
        backend: str = "reference",
    ) -> None:
        validate_radio_topology(graph)
        if parameters is None:
            parameters = CompeteParameters.from_graph(graph, margin=margin)
        elif parameters.num_nodes != graph.num_nodes:
            raise ConfigurationError(
                f"parameters are for n={parameters.num_nodes} but the graph "
                f"has n={graph.num_nodes}"
            )
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self._graph = graph
        self._parameters = parameters
        self._collision_model = collision_model
        self._backend = backend
        self._engine: Optional[VectorizedCompeteEngine] = None
        self._engine_adjacency: Optional[Mapping] = None

    @property
    def parameters(self) -> CompeteParameters:
        """The schedule this instance runs."""
        return self._parameters

    @property
    def backend(self) -> str:
        """The default execution backend of :meth:`run`."""
        return self._backend

    def run(
        self,
        candidates: CandidateSpec,
        *,
        seed: Optional[int] = None,
        spontaneous: bool = False,
        backend: Optional[str] = None,
    ) -> CompeteResult:
        """Race the candidate messages until one saturates the network.

        Parameters
        ----------
        candidates:
            Mapping from candidate node to its message (a
            :class:`~repro.network.messages.Message` or a plain integer
            value).  May be empty, in which case the full (silent or
            dummy-only) schedule is still charged and the run reports
            failure -- this is how a failed leader-election attempt
            spends its rounds.
        seed:
            Seed for the per-node random generators.
        spontaneous:
            When True, non-candidate nodes participate from round 0 with
            a dummy message ranked strictly below every candidate.
        backend:
            Override the instance's execution backend for this run.
        """
        if backend is None:
            backend = self._backend
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if backend == "vectorized":
            return self.run_batch(
                candidates, seeds=[seed], spontaneous=spontaneous
            )[0]

        messages = self._normalise_candidates(candidates)
        winner = highest_message(*messages.values())
        graph = self._graph
        params = self._parameters
        initial = self._initial_messages(messages, spontaneous)

        rngs = spawn_node_rngs(graph, seed)
        protocols = {
            node: CompeteProtocol(
                node,
                graph.num_nodes,
                params.diameter,
                rngs[node],
                params.decay_steps,
                initial=initial[node],
            )
            for node in graph.nodes()
        }

        network = RadioNetwork(graph, self._collision_model)

        def saturated() -> bool:
            return winner is not None and all(
                protocol.best == winner for protocol in protocols.values()
            )

        if saturated():
            # Degenerate cases (single node, or every node a candidate
            # holding the winner) need no communication at all.
            run_rounds = 0
            metrics = network.metrics.copy()
        else:
            runner = ProtocolRunner(
                network,
                protocols,
                max_rounds=params.total_rounds,
                stop_when=lambda outcome, protos: saturated(),
            )
            run_result = runner.run()
            run_rounds = run_result.rounds
            metrics = run_result.metrics

        reception_rounds: dict[Any, Optional[int]] = {}
        final_messages: dict[Any, Optional[Message]] = {}
        for node, protocol in protocols.items():
            final_messages[node] = protocol.best
            if winner is not None and protocol.best == winner:
                reception_rounds[node] = protocol.adopted_round
            else:
                reception_rounds[node] = None

        return CompeteResult(
            success=saturated(),
            winner=winner,
            rounds=run_rounds,
            num_candidates=len(messages),
            reception_rounds=reception_rounds,
            final_messages=final_messages,
            metrics=metrics,
            parameters=params,
        )

    def run_batch(
        self,
        candidates: CandidateSpec,
        *,
        seeds: Iterable[Optional[int]],
        spontaneous: bool = False,
    ) -> list[CompeteResult]:
        """Run one seeded trial per entry of ``seeds``, batched.

        All trials share the candidate set and race simultaneously through
        the vectorized engine (one extra array axis, not one Python loop
        per trial).  Each returned :class:`CompeteResult` is identical to
        what ``run(candidates, seed=s, backend="reference")`` would have
        produced for the corresponding seed.
        """
        seed_list = list(seeds)
        if not seed_list:
            return []
        messages = self._normalise_candidates(candidates)
        winner = highest_message(*messages.values())
        params = self._parameters
        initial = self._initial_messages(messages, spontaneous)

        rank_of = rank_messages(
            message for message in initial.values() if message is not None
        )
        message_of = {rank: message for message, rank in rank_of.items()}
        winner_rank = rank_of[winner] if winner is not None else None

        engine = self._vectorized_engine()
        initial_row = np.array(
            [
                NO_MESSAGE if initial[node] is None else rank_of[initial[node]]
                for node in engine.nodes
            ],
            dtype=np.int64,
        )
        initial_ranks = np.tile(initial_row, (len(seed_list), 1))
        outcome = engine.run_batch(initial_ranks, winner_rank, seed_list)

        results = []
        for trial in range(outcome.num_trials):
            reception_rounds: dict[Any, Optional[int]] = {}
            final_messages: dict[Any, Optional[Message]] = {}
            for index, node in enumerate(engine.nodes):
                rank = int(outcome.final_ranks[trial, index])
                final_messages[node] = message_of.get(rank)
                if winner_rank is not None and rank == winner_rank:
                    reception_rounds[node] = int(
                        outcome.adopted_rounds[trial, index]
                    )
                else:
                    reception_rounds[node] = None
            results.append(
                CompeteResult(
                    success=bool(outcome.saturated[trial]),
                    winner=winner,
                    rounds=int(outcome.rounds[trial]),
                    num_candidates=len(messages),
                    reception_rounds=reception_rounds,
                    final_messages=final_messages,
                    metrics=outcome.metrics(trial),
                    parameters=params,
                )
            )
        return results

    def _initial_messages(
        self, messages: Mapping[Any, Message], spontaneous: bool
    ) -> dict[Any, Optional[Message]]:
        """Each node's message before round 0 (dummies included)."""
        initial: dict[Any, Optional[Message]] = {
            node: messages.get(node) for node in self._graph.nodes()
        }
        if spontaneous:
            dummy_value = min(
                (message.value for message in messages.values()), default=0
            ) - 1
            for node in self._graph.nodes():
                if initial[node] is None:
                    initial[node] = Message(value=dummy_value, source=node)
        return initial

    def _vectorized_engine(self) -> VectorizedCompeteEngine:
        """The lazily built (graph-and-schedule-bound) vectorized engine.

        The engine densifies the adjacency matrix, so the cache is keyed
        on an adjacency snapshot: mutating the graph between runs rebuilds
        the engine rather than silently simulating a stale topology (the
        reference backend always reads the live graph).
        """
        adjacency = self._graph.adjacency()
        if self._engine is None or adjacency != self._engine_adjacency:
            self._engine = VectorizedCompeteEngine(
                self._graph,
                decay_steps=self._parameters.decay_steps,
                max_rounds=self._parameters.total_rounds,
            )
            self._engine_adjacency = adjacency
        return self._engine

    def _normalise_candidates(
        self, candidates: CandidateSpec
    ) -> dict[Any, Message]:
        if not isinstance(candidates, Mapping):
            raise ConfigurationError(
                "candidates must be a mapping from node to Message or int, "
                f"got {type(candidates).__name__}"
            )
        messages: dict[Any, Message] = {}
        for node, value in candidates.items():
            if node not in self._graph:
                raise ConfigurationError(
                    f"candidate node {node!r} is not in the graph"
                )
            if isinstance(value, Message):
                messages[node] = value
            elif isinstance(value, int) and not isinstance(value, bool):
                messages[node] = Message(value=value, source=node)
            else:
                raise ConfigurationError(
                    f"candidate value for node {node!r} must be a Message "
                    f"or int, got {type(value).__name__}"
                )
        return messages


def compete(
    graph: Graph,
    candidates: CandidateSpec,
    *,
    seed: Optional[int] = None,
    spontaneous: bool = False,
    parameters: Optional[CompeteParameters] = None,
    margin: float = DEFAULT_MARGIN,
    collision_model: CollisionModel = CollisionModel.NO_DETECTION,
    backend: str = "reference",
) -> CompeteResult:
    """One-shot convenience wrapper around :class:`Compete`.

    >>> from repro import topology
    >>> result = compete(topology.star_graph(8), {1: 10, 2: 20}, seed=0)
    >>> result.success and result.winner.value == 20
    True

    The two backends agree round for round under a shared seed:

    >>> fast = compete(topology.star_graph(8), {1: 10, 2: 20}, seed=0,
    ...                backend="vectorized")
    >>> (fast.rounds, fast.winner) == (result.rounds, result.winner)
    True
    """
    primitive = Compete(
        graph,
        parameters=parameters,
        margin=margin,
        collision_model=collision_model,
        backend=backend,
    )
    return primitive.run(candidates, seed=seed, spontaneous=spontaneous)
