"""The Compete primitive: candidate messages race until one saturates.

Compete is the paper's workhorse: several *candidate* nodes inject
messages, every informed node relays the **highest** message it has heard
so far using interleaved Decay rounds (Algorithm 5), and -- because the
message order is total (Section 4) -- the globally highest candidate
message eventually floods the whole network while every lower message
dies out.  Broadcasting is Compete with one candidate; leader election is
Compete on random candidate identifiers.

The *spontaneous transmissions* of the paper's title appear here as the
``spontaneous`` flag: when set, nodes that were given no candidate
message still participate from round 0 with a dummy message ranked below
every real candidate.  Uninformed nodes therefore transmit before ever
hearing from a source -- the behaviour that separates this model from the
classical one where only informed nodes may speak.

The inner loop is a pluggable **strategy** deciding how informed nodes
schedule their transmissions, selected orthogonally to the execution
backend:

* ``strategy="skeleton"`` (:class:`SkeletonStrategy`) runs the classical
  uniform schedule of ``⌈margin · (D + log2 n)⌉`` Decay rounds
  (:class:`~repro.core.parameters.CompeteParameters`); by Lemma 3.1 each
  round pushes the winner's frontier past any listener with constant
  probability, which is the ``O((D + log n) · log n)`` regime.
* ``strategy="clustered"`` (:class:`ClusteredStrategy`) first decomposes
  the graph into BFS-grown clusters
  (:mod:`repro.core.clustering`) and runs the Lemma 2.3 cost-charged
  schedule (:mod:`repro.schedules.cluster`): each node's Decay cycle is
  priced by its cluster neighbourhood's contention bound instead of by
  ``n``, removing the multiplicative ``log n`` wherever contention is
  below the global worst case (paths, grids and other bounded-degree
  topologies; on graphs whose certified contention approaches ``n`` --
  stars, but also e.g. ``G(n, p)`` deployments with near-``log n``-length
  cycles already -- the schedule correctly falls back to skeleton
  length).

Two interchangeable backends execute either strategy: ``"reference"``
drives one :class:`CompeteProtocol` per node through the pure-Python
:class:`~repro.simulation.runner.ProtocolRunner`, and ``"vectorized"``
replays the identical dynamics through
:class:`~repro.simulation.vectorized.VectorizedCompeteEngine` as dense
array operations.  Both consume the same
:class:`~repro.schedules.transmission.TransmissionSchedule` and produce
the same :class:`CompeteResult` round for round under a shared seed, for
every (strategy, backend) cell of the matrix;
:meth:`Compete.run_batch` additionally runs many seeded trials at once on
the vectorized backend.  The vectorized backend itself has two
bit-for-bit equivalent kernel **engines** -- the dense adjacency-matrix
path and the sparse CSR path, which ``engine="auto"`` selects above
~10^3 nodes on sparse topologies and which opens the ``n >= 10^4``
scenarios -- a third orthogonal axis (see :mod:`repro.simulation.sparse`).

All three axes, together with the collision model and the round-budget
margin, are carried by one :class:`~repro.api.config.ExecutionConfig`
passed as ``Compete(graph, config=...)``; the old per-axis keyword
arguments remain as deprecation shims for one release.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message, highest_message
from repro.network.metrics import NetworkMetrics
from repro.network.protocol import Action, NodeProtocol
from repro.network.radio import CollisionModel, RadioNetwork
from repro.core.clustering import (
    DEFAULT_CLUSTER_RADIUS,
    ClusterDecomposition,
    decompose,
)
from repro.schedules.cluster import cluster_schedule
from repro.schedules.transmission import (
    TransmissionSchedule,
    uniform_decay_schedule,
)
from repro.simulation.runner import ProtocolRunner, spawn_node_rngs
from repro.simulation.vectorized import (
    NO_MESSAGE,
    VectorizedCompeteEngine,
    rank_messages,
)
from repro.core.parameters import CompeteParameters

#: Candidate specifications accepted by :meth:`Compete.run`: a mapping
#: from node to either a ready-made :class:`Message` or a plain integer
#: value (wrapped into ``Message(value, source=node)``).
CandidateSpec = Mapping[Any, Union[Message, int]]

#: The execution backends of :meth:`Compete.run`.
BACKENDS = ("reference", "vectorized")

#: The built-in inner-loop strategies of :class:`Compete`.
STRATEGIES = ("skeleton", "clustered")


class CompeteStrategy(abc.ABC):
    """How Compete's inner loop schedules transmissions.

    A strategy compiles the static inputs of a run -- the graph and its
    ``(n, D)``-derived :class:`~repro.core.parameters.CompeteParameters`
    -- into a per-node
    :class:`~repro.schedules.transmission.TransmissionSchedule`, which
    both execution backends then consume identically.  Strategies are
    stateless with respect to individual runs, so one instance can be
    shared across Compete instances and seeds.

    Custom strategies plug in by subclassing: pass an instance (instead
    of a registered name) as ``Compete(strategy=...)``.
    """

    #: Short identifier recorded on results and benchmark artifacts.
    name: str = "custom"

    @abc.abstractmethod
    def build_schedule(
        self, graph: Graph, parameters: CompeteParameters
    ) -> TransmissionSchedule:
        """Compile the transmission schedule for one topology."""


class SkeletonStrategy(CompeteStrategy):
    """The classical uniform-Decay inner loop (Lemma 3.1 regime).

    Every node cycles through the same ``⌈log2 n⌉``-step Decay
    probabilities, globally aligned -- the ``O((D + log n) · log n)``
    skeleton the paper starts from.
    """

    name = "skeleton"

    def build_schedule(
        self, graph: Graph, parameters: CompeteParameters
    ) -> TransmissionSchedule:
        return uniform_decay_schedule(
            graph.nodes(), parameters.decay_steps, name=self.name
        )


class ClusteredStrategy(CompeteStrategy):
    """The cluster-decomposed inner loop (Lemma 2.3 cost charging).

    Decomposes the graph into BFS-grown clusters of hop radius
    ``radius`` (:func:`~repro.core.clustering.decompose`) and gives each
    node a Decay cycle priced by the contention bound of its own and
    neighbouring clusters (:func:`~repro.schedules.cluster.cluster_schedule`)
    -- amortising Decay steps across clusters instead of paying
    ``⌈log2 n⌉`` everywhere.

    Parameters
    ----------
    radius:
        BFS growth radius of the decomposition (>= 0).  Contention
        bounds -- and therefore the schedule -- depend on cluster
        membership only through member degrees, so moderate radii trade
        decomposition granularity against schedule coarseness.
    """

    name = "clustered"

    def __init__(self, radius: int = DEFAULT_CLUSTER_RADIUS) -> None:
        if radius < 0:
            raise ConfigurationError(f"radius must be >= 0, got {radius}")
        self._radius = radius

    @property
    def radius(self) -> int:
        """The decomposition's BFS growth radius."""
        return self._radius

    def decompose(self, graph: Graph) -> ClusterDecomposition:
        """The cluster decomposition this strategy derives for ``graph``."""
        return decompose(graph, radius=self._radius)

    def build_schedule(
        self, graph: Graph, parameters: CompeteParameters
    ) -> TransmissionSchedule:
        return cluster_schedule(self.decompose(graph), name=self.name)


def resolve_strategy(
    strategy: Union[str, CompeteStrategy]
) -> CompeteStrategy:
    """Turn a strategy name or instance into a :class:`CompeteStrategy`."""
    if isinstance(strategy, CompeteStrategy):
        return strategy
    if strategy == "skeleton":
        return SkeletonStrategy()
    if strategy == "clustered":
        return ClusteredStrategy()
    raise ConfigurationError(
        f"strategy must be one of {STRATEGIES} or a CompeteStrategy "
        f"instance, got {strategy!r}"
    )


@dataclasses.dataclass(frozen=True)
class CompeteNodeState:
    """A node's local state at the end of a Compete run.

    Attributes
    ----------
    best:
        The highest message the node knows (``None`` if it never heard
        one and had none of its own).
    adopted_round:
        The global round number in which ``best`` was adopted; ``-1``
        means the node knew it before the first round (it was a
        candidate), ``None`` means it knows nothing.
    """

    best: Optional[Message]
    adopted_round: Optional[int]


class CompeteProtocol(NodeProtocol):
    """Per-node program of Compete: relay the highest known message.

    Each round the node either listens (if it knows nothing) or consults
    its periodic transmission-probability cycle -- assigned by the
    strategy's :class:`~repro.schedules.transmission.TransmissionSchedule`
    -- to decide whether to transmit its current best message.  The cycle
    position is derived from the *global* round number, so all
    participants stay aligned within each Decay round -- the alignment
    Lemma 3.1's analysis assumes (power-of-two cycle lengths preserve it
    across the clustered strategy's heterogeneous cycles).
    """

    def __init__(
        self,
        node_id: Any,
        num_nodes: int,
        diameter: int,
        rng: np.random.Generator,
        probabilities: Sequence[float],
        initial: Optional[Message] = None,
    ) -> None:
        super().__init__(node_id, num_nodes, diameter)
        if not probabilities:
            raise ConfigurationError(
                f"node {node_id!r} needs a non-empty probability cycle"
            )
        self._rng = rng
        self._probabilities = tuple(probabilities)
        self.best: Optional[Message] = initial
        self.adopted_round: Optional[int] = None if initial is None else -1

    def act(self, round_number: int) -> Action:
        if self.best is None:
            return Action.listen()
        cycle = self._probabilities
        probability = cycle[round_number % len(cycle)]
        if self._rng.random() < probability:
            return Action.transmit(self.best)
        return Action.listen()

    def receive(self, round_number: int, heard: Any) -> None:
        if isinstance(heard, Message) and heard.beats(self.best):
            self.best = heard
            self.adopted_round = round_number

    def output(self) -> CompeteNodeState:
        return CompeteNodeState(best=self.best, adopted_round=self.adopted_round)


@dataclasses.dataclass(frozen=True)
class CompeteResult:
    """Outcome of one Compete run.

    Attributes
    ----------
    success:
        True when there was at least one candidate and every node ended
        the run knowing the winning message.
    winner:
        The highest candidate message (``None`` when no candidates were
        supplied).
    rounds:
        Simulator rounds actually executed (the run stops early once the
        winner has saturated the network).
    num_candidates:
        How many real candidates entered the race.
    reception_rounds:
        Per-node adoption time of the winner: the global round number in
        which the node adopted it, ``-1`` for nodes that held it from the
        start, or ``None`` for nodes that never learned it.
    final_messages:
        The highest message each node knew when the run ended (dummy
        messages from spontaneous participation included).
    metrics:
        Round/transmission accounting for this run.
    parameters:
        The schedule the run used.
    strategy:
        Name of the inner-loop strategy that scheduled transmissions.
    """

    success: bool
    winner: Optional[Message]
    rounds: int
    num_candidates: int
    reception_rounds: Mapping[Any, Optional[int]]
    final_messages: Mapping[Any, Optional[Message]]
    metrics: NetworkMetrics
    parameters: CompeteParameters
    strategy: str = "skeleton"

    @property
    def informed_fraction(self) -> float:
        """Fraction of nodes that ended the run knowing the winner."""
        total = len(self.final_messages)
        if total == 0 or self.winner is None:
            return 0.0
        informed = sum(
            1 for best in self.final_messages.values() if best == self.winner
        )
        return informed / total


class Compete:
    """The Compete primitive bound to one network topology.

    Parameters
    ----------
    graph:
        A connected radio-network topology
        (:func:`~repro.topology.validation.validate_radio_topology` is
        applied eagerly).
    config:
        The :class:`~repro.api.config.ExecutionConfig` describing every
        execution axis -- backend, vectorized kernel (engine), strategy,
        collision model, round-budget margin and seed policy.  ``None``
        means all defaults (reference backend, auto engine, skeleton
        strategy, no collision detection).
    parameters:
        Explicit schedule lengths, overriding both the config's
        ``parameters`` field and the graph-derived budget; useful when
        the caller already knows the diameter.
    margin / collision_model / strategy / backend / engine:
        **Deprecated** -- the pre-``ExecutionConfig`` keyword arguments,
        kept working for one release.  Passing any of them emits a
        single :class:`DeprecationWarning` and builds the equivalent
        config (results are seed-identical); mixing them with
        ``config=`` is an error.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        config=None,
        parameters: Optional[CompeteParameters] = None,
        margin: Optional[float] = None,
        collision_model: Optional[CollisionModel] = None,
        strategy: Optional[Union[str, CompeteStrategy]] = None,
        backend: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> None:
        # api sits above core in the layering, so the import is local.
        from repro.api.config import coerce_execution_config, resolve_execution

        config = coerce_execution_config(
            config,
            where="Compete",
            margin=margin,
            collision_model=collision_model,
            strategy=strategy,
            backend=backend,
            engine=engine,
        )
        self._resolve_execution = resolve_execution
        self._graph = graph
        self._config = config
        resolved = resolve_execution(graph, config, parameters=parameters)
        self._parameters = resolved.parameters
        self._strategy = resolved.strategy
        self._collision_model = resolved.collision_model
        # The strategy's schedule and the vectorized engine both depend
        # on the topology, so the resolution is cached against an
        # adjacency snapshot: mutating the graph between runs re-resolves
        # rather than silently simulating a stale topology.
        self._cache_adjacency: Optional[Mapping] = graph.adjacency()
        self._cache_resolved = resolved
        self._cache_engine: Optional[VectorizedCompeteEngine] = None

    @property
    def config(self):
        """The :class:`~repro.api.config.ExecutionConfig` this runs under."""
        return self._config

    @property
    def parameters(self) -> CompeteParameters:
        """The schedule this instance runs."""
        return self._parameters

    @property
    def strategy(self) -> CompeteStrategy:
        """The inner-loop strategy scheduling transmissions."""
        return self._strategy

    @property
    def backend(self) -> str:
        """The default execution backend of :meth:`run`."""
        return self._config.backend

    @property
    def engine(self) -> str:
        """The requested vectorized kernel (possibly ``"auto"``)."""
        return self._config.engine

    def selected_engine(self) -> str:
        """The kernel the vectorized backend resolves to for this graph.

        Resolves ``"auto"`` through the shared density heuristic without
        building the engine (construction densifies the matrix, which is
        exactly what the heuristic may be avoiding).
        """
        return self._resolved().engine

    def run(
        self,
        candidates: CandidateSpec,
        *,
        seed: Optional[int] = None,
        spontaneous: bool = False,
        backend: Optional[str] = None,
    ) -> CompeteResult:
        """Race the candidate messages until one saturates the network.

        Parameters
        ----------
        candidates:
            Mapping from candidate node to its message (a
            :class:`~repro.network.messages.Message` or a plain integer
            value).  May be empty, in which case the full (silent or
            dummy-only) schedule is still charged and the run reports
            failure -- this is how a failed leader-election attempt
            spends its rounds.
        seed:
            Seed for the per-node random generators.
        spontaneous:
            When True, non-candidate nodes participate from round 0 with
            a dummy message ranked strictly below every candidate.
        backend:
            **Deprecated** per-run backend override; construct the
            instance with ``config=ExecutionConfig(backend=...)``
            instead.
        """
        if backend is None:
            backend = self._config.backend
        else:
            import warnings

            warnings.warn(
                "Compete.run(backend=...) is deprecated; construct Compete "
                "with config=ExecutionConfig(backend=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if backend == "vectorized":
            return self.run_batch(
                candidates, seeds=[seed], spontaneous=spontaneous
            )[0]

        messages = self._normalise_candidates(candidates)
        winner = highest_message(*messages.values())
        graph = self._graph
        params = self._parameters
        schedule = self._schedule()
        initial = self._initial_messages(messages, spontaneous)

        rngs = spawn_node_rngs(graph, seed)
        protocols = {
            node: CompeteProtocol(
                node,
                graph.num_nodes,
                params.diameter,
                rngs[node],
                schedule.probabilities(node),
                initial=initial[node],
            )
            for node in graph.nodes()
        }

        # The resolved fault schedule (None on static configs) rides the
        # same channel masks the vectorized engines apply, and every run
        # starts it back at round 0 via its replay cursor.
        network = RadioNetwork(
            graph,
            self._collision_model,
            dynamics=self._resolved().fault_schedule,
        )

        def saturated() -> bool:
            return winner is not None and all(
                protocol.best == winner for protocol in protocols.values()
            )

        if saturated():
            # Degenerate cases (single node, or every node a candidate
            # holding the winner) need no communication at all.
            run_rounds = 0
            metrics = network.metrics.copy()
        else:
            runner = ProtocolRunner(
                network,
                protocols,
                max_rounds=params.total_rounds,
                stop_when=lambda outcome, protos: saturated(),
            )
            run_result = runner.run()
            run_rounds = run_result.rounds
            metrics = run_result.metrics

        reception_rounds: dict[Any, Optional[int]] = {}
        final_messages: dict[Any, Optional[Message]] = {}
        for node, protocol in protocols.items():
            final_messages[node] = protocol.best
            if winner is not None and protocol.best == winner:
                reception_rounds[node] = protocol.adopted_round
            else:
                reception_rounds[node] = None

        return CompeteResult(
            success=saturated(),
            winner=winner,
            rounds=run_rounds,
            num_candidates=len(messages),
            reception_rounds=reception_rounds,
            final_messages=final_messages,
            metrics=metrics,
            parameters=params,
            strategy=self._strategy.name,
        )

    def run_batch(
        self,
        candidates: CandidateSpec,
        *,
        seeds: Iterable[Optional[int]],
        spontaneous: bool = False,
    ) -> list[CompeteResult]:
        """Run one seeded trial per entry of ``seeds``, batched.

        All trials share the candidate set and race simultaneously through
        the vectorized engine (one extra array axis, not one Python loop
        per trial).  Each returned :class:`CompeteResult` is identical to
        what ``run(candidates, seed=s, backend="reference")`` would have
        produced for the corresponding seed.
        """
        seed_list = list(seeds)
        if not seed_list:
            return []
        messages = self._normalise_candidates(candidates)
        winner = highest_message(*messages.values())
        params = self._parameters
        initial = self._initial_messages(messages, spontaneous)

        rank_of = rank_messages(
            message for message in initial.values() if message is not None
        )
        message_of = {rank: message for message, rank in rank_of.items()}
        winner_rank = rank_of[winner] if winner is not None else None

        engine = self._vectorized_engine()
        initial_row = np.array(
            [
                NO_MESSAGE if initial[node] is None else rank_of[initial[node]]
                for node in engine.nodes
            ],
            dtype=np.int64,
        )
        initial_ranks = np.tile(initial_row, (len(seed_list), 1))
        outcome = engine.run_batch(initial_ranks, winner_rank, seed_list)

        results = []
        for trial in range(outcome.num_trials):
            reception_rounds: dict[Any, Optional[int]] = {}
            final_messages: dict[Any, Optional[Message]] = {}
            for index, node in enumerate(engine.nodes):
                rank = int(outcome.final_ranks[trial, index])
                final_messages[node] = message_of.get(rank)
                if winner_rank is not None and rank == winner_rank:
                    reception_rounds[node] = int(
                        outcome.adopted_rounds[trial, index]
                    )
                else:
                    reception_rounds[node] = None
            results.append(
                CompeteResult(
                    success=bool(outcome.saturated[trial]),
                    winner=winner,
                    rounds=int(outcome.rounds[trial]),
                    num_candidates=len(messages),
                    reception_rounds=reception_rounds,
                    final_messages=final_messages,
                    metrics=outcome.metrics(trial),
                    parameters=params,
                    strategy=self._strategy.name,
                )
            )
        return results

    def _initial_messages(
        self, messages: Mapping[Any, Message], spontaneous: bool
    ) -> dict[Any, Optional[Message]]:
        """Each node's message before round 0 (dummies included)."""
        initial: dict[Any, Optional[Message]] = {
            node: messages.get(node) for node in self._graph.nodes()
        }
        if spontaneous:
            dummy_value = min(
                (message.value for message in messages.values()), default=0
            ) - 1
            for node in self._graph.nodes():
                if initial[node] is None:
                    initial[node] = Message(value=dummy_value, source=node)
        return initial

    def _resolved(self):
        """The config resolved against the graph's *current* topology."""
        adjacency = self._graph.adjacency()
        if adjacency != self._cache_adjacency:
            self._cache_resolved = self._resolve_execution(
                self._graph, self._config, parameters=self._parameters
            )
            self._cache_adjacency = adjacency
            self._cache_engine = None
        return self._cache_resolved

    def _schedule(self) -> TransmissionSchedule:
        """The strategy's schedule for the graph's *current* topology."""
        return self._resolved().schedule

    def _vectorized_engine(self) -> VectorizedCompeteEngine:
        """The lazily built (graph-and-schedule-bound) vectorized engine."""
        resolved = self._resolved()
        if self._cache_engine is None:
            self._cache_engine = resolved.build_engine()
        return self._cache_engine

    def _normalise_candidates(
        self, candidates: CandidateSpec
    ) -> dict[Any, Message]:
        if not isinstance(candidates, Mapping):
            raise ConfigurationError(
                "candidates must be a mapping from node to Message or int, "
                f"got {type(candidates).__name__}"
            )
        messages: dict[Any, Message] = {}
        for node, value in candidates.items():
            if node not in self._graph:
                raise ConfigurationError(
                    f"candidate node {node!r} is not in the graph"
                )
            if isinstance(value, Message):
                messages[node] = value
            elif isinstance(value, int) and not isinstance(value, bool):
                messages[node] = Message(value=value, source=node)
            else:
                raise ConfigurationError(
                    f"candidate value for node {node!r} must be a Message "
                    f"or int, got {type(value).__name__}"
                )
        return messages


def compete(
    graph: Graph,
    candidates: CandidateSpec,
    *,
    seed: Optional[int] = None,
    spontaneous: bool = False,
    config=None,
    parameters: Optional[CompeteParameters] = None,
    margin: Optional[float] = None,
    collision_model: Optional[CollisionModel] = None,
    strategy: Optional[Union[str, CompeteStrategy]] = None,
    backend: Optional[str] = None,
    engine: Optional[str] = None,
) -> CompeteResult:
    """One-shot convenience wrapper around :class:`Compete`.

    >>> from repro import topology
    >>> result = compete(topology.star_graph(8), {1: 10, 2: 20}, seed=0)
    >>> result.success and result.winner.value == 20
    True

    How the race executes is one :class:`~repro.api.config.ExecutionConfig`
    -- the backends agree round for round under a shared seed:

    >>> from repro.api import ExecutionConfig
    >>> fast = compete(topology.star_graph(8), {1: 10, 2: 20}, seed=0,
    ...                config=ExecutionConfig(backend="vectorized"))
    >>> (fast.rounds, fast.winner) == (result.rounds, result.winner)
    True

    ...and so do the strategies, each with its own schedule:

    >>> clustered = compete(topology.star_graph(8), {1: 10, 2: 20}, seed=0,
    ...                     config=ExecutionConfig(strategy="clustered"))
    >>> clustered.success and clustered.strategy
    'clustered'

    The ``margin``/``collision_model``/``strategy``/``backend``/``engine``
    keywords are the deprecated pre-config spelling (one
    ``DeprecationWarning``, identical results).
    """
    from repro.api.config import coerce_execution_config

    config = coerce_execution_config(
        config,
        where="compete()",
        margin=margin,
        collision_model=collision_model,
        strategy=strategy,
        backend=backend,
        engine=engine,
    )
    primitive = Compete(graph, config=config, parameters=parameters)
    return primitive.run(candidates, seed=seed, spontaneous=spontaneous)
