"""Single-source broadcasting built on Compete.

Broadcasting is the one-candidate instance of Compete: the source injects
its message, and -- when ``spontaneous`` is left on -- every other node
participates from round 0 with a lower-ranked dummy message, exercising
the spontaneous transmissions the paper's title refers to.  The source's
message outranks every dummy, so it is the unique possible winner; the
run succeeds exactly when every node has adopted it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.network.metrics import NetworkMetrics
from repro.network.radio import CollisionModel
from repro.core.compete import Compete, CompeteResult, CompeteStrategy
from repro.core.parameters import CompeteParameters


@dataclasses.dataclass(frozen=True)
class BroadcastResult:
    """Outcome of a broadcast run.

    Attributes
    ----------
    success:
        True when every node learned the source's message.
    source:
        The broadcasting node.
    message:
        The message that was broadcast.
    rounds:
        Simulator rounds executed (the run stops as soon as every node is
        informed).
    reception_rounds:
        Per-node round in which the source message was adopted (``-1``
        for the source itself, ``None`` for nodes left uninformed).
    num_informed:
        How many nodes ended the run informed.
    metrics:
        Round/transmission accounting for the run.
    parameters:
        The Compete schedule used.
    compete_result:
        The underlying :class:`~repro.core.compete.CompeteResult` with
        the full per-node state.
    """

    success: bool
    source: Any
    message: Message
    rounds: int
    reception_rounds: Mapping[Any, Optional[int]]
    num_informed: int
    metrics: NetworkMetrics
    parameters: CompeteParameters
    compete_result: CompeteResult


def broadcast(
    graph: Graph,
    source: Any,
    *,
    seed: Optional[int] = None,
    spontaneous: bool = True,
    config=None,
    parameters: Optional[CompeteParameters] = None,
    margin: Optional[float] = None,
    collision_model: Optional[CollisionModel] = None,
    strategy: Optional[Union[str, CompeteStrategy]] = None,
    backend: Optional[str] = None,
    engine: Optional[str] = None,
) -> BroadcastResult:
    """Broadcast a message from ``source`` to every node of ``graph``.

    Parameters
    ----------
    graph:
        A connected radio-network topology.
    source:
        The node injecting the message.
    seed:
        Seed for the per-node random generators (runs are deterministic
        given the seed).
    spontaneous:
        When True (the default, and the paper's model), uninformed nodes
        also transmit dummy messages from round 0; set False for the
        classical conservative model where only informed nodes speak.
    config:
        The :class:`~repro.api.config.ExecutionConfig` selecting
        backend, vectorized kernel, strategy, collision model and round
        budget; ``None`` means all defaults.
    parameters:
        Explicit schedule lengths, overriding the config's derived
        budget.
    margin / collision_model / strategy / backend / engine:
        **Deprecated** pre-config keywords (one ``DeprecationWarning``
        per call, seed-identical results); see
        :func:`repro.api.config.coerce_execution_config`.

    >>> from repro import topology
    >>> result = broadcast(topology.star_graph(8), source=0, seed=1)
    >>> result.success
    True
    """
    from repro.api.config import coerce_execution_config

    config = coerce_execution_config(
        config,
        where="broadcast()",
        margin=margin,
        collision_model=collision_model,
        strategy=strategy,
        backend=backend,
        engine=engine,
    )
    if source not in graph:
        raise ConfigurationError(f"source node {source!r} is not in the graph")
    primitive = Compete(graph, config=config, parameters=parameters)
    message = Message(value=1, source=source)
    compete_result = primitive.run(
        {source: message}, seed=seed, spontaneous=spontaneous
    )
    return _wrap(source, message, compete_result)


def broadcast_batch(
    graph: Graph,
    source: Any,
    *,
    seeds,
    spontaneous: bool = True,
    config=None,
    parameters: Optional[CompeteParameters] = None,
) -> list[BroadcastResult]:
    """One seeded broadcast per entry of ``seeds``, batched.

    All trials run simultaneously through the vectorized engine
    (regardless of ``config.backend``, which only governs single-seed
    :func:`broadcast` calls); each returned :class:`BroadcastResult` is
    identical to the corresponding single-seed reference run.
    """
    from repro.api.config import coerce_execution_config

    config = coerce_execution_config(config, where="broadcast_batch()")
    if source not in graph:
        raise ConfigurationError(f"source node {source!r} is not in the graph")
    primitive = Compete(graph, config=config, parameters=parameters)
    message = Message(value=1, source=source)
    compete_results = primitive.run_batch(
        {source: message}, seeds=seeds, spontaneous=spontaneous
    )
    return [_wrap(source, message, result) for result in compete_results]


def _wrap(source: Any, message: Message, compete_result: CompeteResult
          ) -> BroadcastResult:
    """Interpret one Compete outcome as a broadcast outcome."""
    num_informed = sum(
        1
        for best in compete_result.final_messages.values()
        if best == message
    )
    return BroadcastResult(
        success=compete_result.success,
        source=source,
        message=message,
        rounds=compete_result.rounds,
        reception_rounds=compete_result.reception_rounds,
        num_informed=num_informed,
        metrics=compete_result.metrics,
        parameters=compete_result.parameters,
        compete_result=compete_result,
    )
