"""Cluster decomposition of the communication graph (Section 2, Lemma 2.3).

The paper's optimised algorithms do not run Decay uniformly over the
whole network: they first *decompose* the graph into low-radius clusters,
each grown around a node that transmits spontaneously in the opening
rounds, and then charge the cost of contention resolution to clusters
instead of to the global parameter ``n``.  This module provides that
decomposition as a reusable artefact:

* :func:`decompose` grows clusters by BFS layers: the first uncovered
  node (by default in the graph's deterministic insertion order -- in the
  spontaneous model *any* node may seed a cluster, so the seeds stand in
  for the paper's spontaneous transmitters) becomes a *cluster leader*,
  absorbs every uncovered node within ``radius`` hops layer by layer, and
  the growth repeats until the clusters partition the node set.
* :class:`Cluster` records one cluster's leader, members and BFS layers.
* :class:`ClusterDecomposition` answers the structural queries the
  cost-charged schedules of :mod:`repro.schedules.cluster` need: which
  clusters are adjacent, which members sit on a cluster's boundary, and
  -- the quantity the Lemma 2.3 charging argument is built on -- each
  cluster's *contention bound*, the maximum degree among its members.

The decomposition is purely combinatorial (graph in, clusters out) and
deterministic for a fixed graph, so both simulation backends derive the
identical clustered schedule from it.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

from repro.errors import ConfigurationError, GraphError
from repro.network.graph import Graph, NodeId

#: Default BFS growth radius of :func:`decompose` -- shared with
#: :class:`~repro.core.compete.ClusteredStrategy` so that the manual
#: ``cluster_schedule(decompose(graph))`` route and
#: ``strategy="clustered"`` build the identical decomposition.
DEFAULT_CLUSTER_RADIUS = 2


@dataclasses.dataclass(frozen=True)
class Cluster:
    """One cluster of a :class:`ClusterDecomposition`.

    Attributes
    ----------
    index:
        Position of the cluster in its decomposition (0-based, in growth
        order).
    leader:
        The node the cluster was grown from.  In the paper's algorithms
        this is a spontaneous transmitter that seeds the cluster in the
        opening rounds; here it doubles as the cluster's coordination
        point for schedule construction.
    members:
        All nodes of the cluster (the leader included).
    layers:
        BFS layers of the growth, ``layers[d]`` holding the members at
        hop distance exactly ``d`` from the leader *within the uncovered
        region the cluster grew over*.  ``layers[0] == (leader,)``.
    """

    index: int
    leader: NodeId
    members: frozenset
    layers: tuple[tuple, ...]

    @property
    def radius(self) -> int:
        """Hop radius actually realised by the growth (``len(layers) - 1``)."""
        return len(self.layers) - 1

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members


class ClusterDecomposition:
    """A partition of a graph's nodes into BFS-grown clusters.

    Built by :func:`decompose`; holds the graph it was derived from and
    exposes the adjacency/boundary/contention queries the cluster
    schedules are assembled from.  All derived quantities are cached, so
    repeated schedule builds over the same decomposition stay cheap.
    """

    def __init__(self, graph: Graph, clusters: Sequence[Cluster]) -> None:
        covered: dict[NodeId, int] = {}
        for cluster in clusters:
            for node in cluster.members:
                if node in covered:
                    raise ConfigurationError(
                        f"node {node!r} belongs to clusters "
                        f"{covered[node]} and {cluster.index}"
                    )
                covered[node] = cluster.index
        missing = [node for node in graph if node not in covered]
        if missing:
            raise ConfigurationError(
                f"clusters do not cover the graph; first uncovered node: "
                f"{missing[0]!r}"
            )
        if len(covered) != graph.num_nodes:
            raise ConfigurationError(
                "clusters mention nodes outside the graph"
            )
        self._graph = graph
        self._clusters = tuple(clusters)
        self._cluster_of = covered
        self._contention: dict[int, int] = {}
        self._adjacent: dict[int, frozenset] = {}

    @property
    def graph(self) -> Graph:
        """The graph the decomposition partitions."""
        return self._graph

    @property
    def clusters(self) -> tuple[Cluster, ...]:
        """All clusters, in growth order."""
        return self._clusters

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    def cluster_of(self, node: NodeId) -> Cluster:
        """The unique cluster containing ``node``."""
        try:
            return self._clusters[self._cluster_of[node]]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def leaders(self) -> tuple:
        """Every cluster leader, in growth order."""
        return tuple(cluster.leader for cluster in self._clusters)

    def boundary_nodes(self, index: int) -> frozenset:
        """Members of cluster ``index`` with a neighbour in another cluster."""
        cluster = self._clusters[index]
        return frozenset(self._graph.boundary_nodes(cluster.members))

    def adjacent_clusters(self, index: int) -> frozenset:
        """Indices of clusters sharing at least one edge with ``index``."""
        if index not in self._adjacent:
            cluster = self._clusters[index]
            neighbours = {
                self._cluster_of[other]
                for node in cluster.members
                for other in self._graph.neighbors(node)
            }
            neighbours.discard(index)
            self._adjacent[index] = frozenset(neighbours)
        return self._adjacent[index]

    def contention(self, index: int) -> int:
        """Cluster ``index``'s contention bound: its maximum member degree.

        A listener inside (or adjacent to) the cluster can have at most
        this many transmitting neighbours drawn from the cluster, so a
        Decay-style schedule whose length covers this bound resolves all
        contention the cluster can cause -- the quantity each unit of
        schedule length is charged against in the Lemma 2.3 argument.
        """
        if index not in self._contention:
            cluster = self._clusters[index]
            self._contention[index] = max(
                self._graph.degree(node) for node in cluster.members
            )
        return self._contention[index]

    def charged_contention(self, node: NodeId) -> int:
        """The contention bound ``node``'s schedule must be charged for.

        The maximum contention over the node's own cluster (the
        *intra-cluster* charge) and every cluster owning one of its
        neighbours (the *inter-cluster* charge).  Every listener ``u``
        adjacent to ``node`` lives in one of those clusters, and
        ``contention(cluster(u)) >= degree(u)`` by definition, so a
        schedule covering this bound covers the contention at every
        listener the node can reach -- the per-node form of the Lemma 2.3
        cost-charging.
        """
        charged = {self._cluster_of[node]}
        for neighbour in self._graph.neighbors(node):
            charged.add(self._cluster_of[neighbour])
        return max(self.contention(index) for index in charged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterDecomposition(n={self._graph.num_nodes}, "
            f"clusters={self.num_clusters})"
        )


def decompose(
    graph: Graph,
    radius: int = DEFAULT_CLUSTER_RADIUS,
    seeds: Optional[Iterable[NodeId]] = None,
) -> ClusterDecomposition:
    """Partition ``graph`` into clusters of hop radius at most ``radius``.

    Growth is greedy and deterministic: the first still-uncovered seed
    becomes a leader and absorbs the uncovered nodes within ``radius``
    hops of it, one BFS layer at a time (layers never cross already
    covered nodes, so clusters stay connected and disjoint); then the
    next uncovered seed grows, and so on until every node is covered.

    Parameters
    ----------
    graph:
        The communication graph (must be non-empty).
    radius:
        Maximum hop radius of a cluster (>= 0; radius 0 makes every node
        its own cluster).
    seeds:
        Candidate leaders in priority order; defaults to the graph's
        insertion order.  In the spontaneous model any node may seed a
        cluster, so callers may pass e.g. the candidate set of a Compete
        run to grow clusters from the actual spontaneous transmitters.
        Nodes not covered by any seed's growth fall back to the insertion
        order, so the result is always a full partition.
    """
    if graph.num_nodes == 0:
        raise ConfigurationError("cannot decompose an empty graph")
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")

    order: list[NodeId] = []
    seen: set[NodeId] = set()
    if seeds is not None:
        for node in seeds:
            if node not in graph:
                raise ConfigurationError(
                    f"seed node {node!r} is not in the graph"
                )
            if node not in seen:
                seen.add(node)
                order.append(node)
    for node in graph.nodes():
        if node not in seen:
            seen.add(node)
            order.append(node)

    # Neighbour sets iterate in hash order; rank them by insertion order
    # so layer contents are identical on every platform.
    rank = {node: position for position, node in enumerate(graph.nodes())}

    covered: set[NodeId] = set()
    clusters: list[Cluster] = []
    for seed in order:
        if seed in covered:
            continue
        layers: list[tuple] = [(seed,)]
        covered.add(seed)
        frontier = [seed]
        for _ in range(radius):
            next_layer = []
            for node in frontier:
                for neighbour in sorted(
                    graph.neighbors(node), key=rank.__getitem__
                ):
                    if neighbour not in covered:
                        covered.add(neighbour)
                        next_layer.append(neighbour)
            if not next_layer:
                break
            layers.append(tuple(next_layer))
            frontier = next_layer
        members = frozenset(
            node for layer in layers for node in layer
        )
        clusters.append(
            Cluster(
                index=len(clusters),
                leader=seed,
                members=members,
                layers=tuple(layers),
            )
        )
    return ClusterDecomposition(graph, clusters)
