"""Schedule parameters for the Compete primitive.

The paper states its bounds in terms of ``n`` (nodes) and ``D``
(diameter), both of which the model assumes every node knows.  The
simulated Compete schedule is a fixed number of interleaved Decay rounds:
each Decay round is ``⌈log2 n⌉`` time steps (Algorithm 5), and the number
of Decay rounds is ``⌈margin · (D + ⌈log2 n⌉)⌉``.  By Lemma 3.1 each Decay
round advances the frontier of the currently-highest message past any
listener with constant probability, so a margin of a few multiples of
``1/(2e)⁻¹ ≈ 5.4`` makes saturation overwhelmingly likely; the default
margin of 8 keeps the Monte-Carlo suites comfortably above their bounds.

All validation happens eagerly at construction
(:class:`~repro.errors.ConfigurationError`), so a long simulation never
dies halfway through on a bad value.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.schedules.decay import decay_round_length

#: Default multiplier on ``D + log2 n`` for the number of Decay rounds.
DEFAULT_MARGIN = 8.0


@dataclasses.dataclass(frozen=True)
class CompeteParameters:
    """Validated, ``(n, D)``-derived schedule lengths for Compete.

    Attributes
    ----------
    num_nodes:
        The global parameter ``n``.
    diameter:
        The global parameter ``D`` (0 only for the single-node network).
    decay_steps:
        Time steps per Decay round, ``⌈log2 n⌉`` (at least 1).
    num_decay_rounds:
        How many Decay rounds the schedule runs.
    """

    num_nodes: int
    diameter: int
    decay_steps: int
    num_decay_rounds: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {self.num_nodes}"
            )
        if self.diameter < 0:
            raise ConfigurationError(
                f"diameter must be >= 0, got {self.diameter}"
            )
        if self.num_nodes == 1 and self.diameter != 0:
            raise ConfigurationError(
                "a single-node network has diameter 0, got "
                f"diameter={self.diameter}"
            )
        if self.num_nodes > 1 and self.diameter < 1:
            raise ConfigurationError(
                f"a network with {self.num_nodes} nodes has diameter >= 1"
            )
        if self.diameter > self.num_nodes - 1 and self.num_nodes > 1:
            raise ConfigurationError(
                f"diameter {self.diameter} impossible with "
                f"{self.num_nodes} nodes (max {self.num_nodes - 1})"
            )
        if self.decay_steps < 1:
            raise ConfigurationError(
                f"decay_steps must be >= 1, got {self.decay_steps}"
            )
        if self.num_decay_rounds < 1:
            raise ConfigurationError(
                f"num_decay_rounds must be >= 1, got {self.num_decay_rounds}"
            )

    @property
    def total_rounds(self) -> int:
        """The schedule's length in simulator rounds (= time steps)."""
        return self.decay_steps * self.num_decay_rounds

    @classmethod
    def derive(
        cls,
        num_nodes: int,
        diameter: int,
        margin: float = DEFAULT_MARGIN,
    ) -> "CompeteParameters":
        """Derive schedule lengths from ``n`` and ``D``.

        ``decay_steps = ⌈log2 n⌉`` and
        ``num_decay_rounds = ⌈margin · (D + decay_steps)⌉``.
        """
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        if not margin > 0:
            raise ConfigurationError(f"margin must be > 0, got {margin}")
        decay_steps = decay_round_length(num_nodes)
        num_decay_rounds = max(1, math.ceil(margin * (diameter + decay_steps)))
        return cls(
            num_nodes=num_nodes,
            diameter=diameter,
            decay_steps=decay_steps,
            num_decay_rounds=num_decay_rounds,
        )

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        diameter: Optional[int] = None,
        margin: float = DEFAULT_MARGIN,
    ) -> "CompeteParameters":
        """Derive parameters for a concrete graph.

        ``diameter`` may be passed to skip the (possibly expensive) exact
        computation on large graphs.
        """
        if graph.num_nodes == 0:
            raise ConfigurationError("cannot derive parameters for an empty graph")
        if diameter is None:
            diameter = graph.diameter()
        return cls.derive(graph.num_nodes, diameter, margin)
