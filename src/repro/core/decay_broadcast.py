"""Classical repeated-Decay broadcast -- the baseline the paper improves on.

Before Czumaj & Davies, the standard broadcasting protocol for radio
networks without collision detection was Bar-Yehuda--Goldreich--Itai's
repeated Decay: *informed* nodes relay the source message through
globally aligned Decay cycles, uninformed nodes stay silent until they
hear it, and after ``O((D + log n) · log n)`` rounds the message has
flooded the network with high probability.  There is no candidate race,
no message ranking, no spontaneous participation -- none of the Compete
machinery; just the one message and the classical schedule.

The module exists primarily as the proof plugin of the
:mod:`repro.api.registry` seam: a complete baseline algorithm --
reference backend, vectorized backend, batch API, capability
declaration -- in well under a hundred lines, registered under
``"decay-broadcast"`` so scenarios and the CLI dispatch to it by name.
Benchmarked against ``broadcast`` (Compete with spontaneous
transmissions) it is the regime comparison the paper's Table 1 makes.

Both backends are round-exact equivalent here for the same reason they
are for Compete: an informed node consumes exactly one uniform draw per
round against the same per-node Decay cycle, so the vectorized engine's
``DrawStreams`` replay reproduces the reference runner decision for
decision.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.network.metrics import NetworkMetrics
from repro.network.protocol import Action, NodeProtocol
from repro.network.radio import RadioNetwork
from repro.core.parameters import CompeteParameters
from repro.simulation.runner import ProtocolRunner, spawn_node_rngs
from repro.simulation.vectorized import NO_MESSAGE


@dataclasses.dataclass(frozen=True)
class DecayBroadcastResult:
    """Outcome of one classical repeated-Decay broadcast run.

    Attributes mirror :class:`~repro.core.broadcast.BroadcastResult`
    minus the Compete-specific pieces: ``success`` is True when every
    node heard the source message, ``reception_rounds`` maps each node
    to the round it first heard it (``-1`` for the source, ``None`` if
    never), and ``metrics`` / ``parameters`` carry the accounting and
    the classical schedule that was run.
    """

    success: bool
    source: Any
    message: Message
    rounds: int
    reception_rounds: Mapping[Any, Optional[int]]
    num_informed: int
    metrics: NetworkMetrics
    parameters: CompeteParameters


class DecayRelayProtocol(NodeProtocol):
    """Per-node program: relay the source message via uniform Decay.

    Informed nodes transmit with probability ``2^-((r mod k) + 1)`` in
    global round ``r`` (``k = ⌈log2 n⌉`` steps per Decay cycle);
    uninformed nodes listen silently -- the classical conservative model
    with no spontaneous transmissions.
    """

    def __init__(
        self,
        node_id: Any,
        num_nodes: int,
        diameter: int,
        rng: np.random.Generator,
        probabilities: Sequence[float],
        initial: Optional[Message] = None,
    ) -> None:
        super().__init__(node_id, num_nodes, diameter)
        self._rng = rng
        self._probabilities = tuple(probabilities)
        self.message: Optional[Message] = initial
        self.adopted_round: Optional[int] = None if initial is None else -1

    def act(self, round_number: int) -> Action:
        if self.message is None:
            return Action.listen()
        cycle = self._probabilities
        if self._rng.random() < cycle[round_number % len(cycle)]:
            return Action.transmit(self.message)
        return Action.listen()

    def receive(self, round_number: int, heard: Any) -> None:
        if self.message is None and isinstance(heard, Message):
            self.message = heard
            self.adopted_round = round_number


def _resolve(graph: Graph, config, parameters):
    """Shared per-call resolution (lazy api import: api sits above core)."""
    from repro.api.config import ExecutionConfig, resolve_execution

    if config is None:
        config = ExecutionConfig()
    if config.strategy_name != "skeleton":
        raise ConfigurationError(
            "decay_broadcast is the classical uniform-Decay baseline and "
            f"supports only strategy='skeleton', got {config.strategy_name!r}"
        )
    return resolve_execution(graph, config, parameters=parameters)


def decay_broadcast(
    graph: Graph,
    source: Any,
    *,
    seed: Optional[int] = None,
    spontaneous: bool = False,
    config=None,
    parameters: Optional[CompeteParameters] = None,
) -> DecayBroadcastResult:
    """Broadcast from ``source`` with the classical repeated-Decay protocol.

    Accepts the same :class:`~repro.api.config.ExecutionConfig` as the
    paper's algorithms (backend and engine axes apply; the strategy axis
    does not -- this baseline *is* the uniform Decay schedule).
    ``spontaneous=True`` is rejected: uninformed nodes staying silent is
    what defines the classical model.

    >>> from repro import topology
    >>> result = decay_broadcast(topology.star_graph(8), source=0, seed=1)
    >>> result.success
    True
    """
    if spontaneous:
        raise ConfigurationError(
            "decay_broadcast models the classical regime: uninformed nodes "
            "never transmit (spontaneous=True is not supported)"
        )
    if source not in graph:
        raise ConfigurationError(f"source node {source!r} is not in the graph")
    resolved = _resolve(graph, config, parameters)
    if resolved.backend == "vectorized":
        return _run_batch(graph, source, resolved, [seed])[0]

    params = resolved.parameters
    message = Message(value=1, source=source)
    rngs = spawn_node_rngs(graph, seed)
    cycle = resolved.schedule.probabilities(next(iter(graph.nodes())))
    protocols = {
        node: DecayRelayProtocol(
            node,
            graph.num_nodes,
            params.diameter,
            rngs[node],
            cycle,
            initial=message if node == source else None,
        )
        for node in graph.nodes()
    }
    network = RadioNetwork(
        graph, resolved.collision_model, dynamics=resolved.fault_schedule
    )

    def informed() -> bool:
        return all(p.message is not None for p in protocols.values())

    if informed():
        run_rounds = 0
        metrics = network.metrics.copy()
    else:
        runner = ProtocolRunner(
            network,
            protocols,
            max_rounds=params.total_rounds,
            stop_when=lambda outcome, protos: informed(),
        )
        run_result = runner.run()
        run_rounds = run_result.rounds
        metrics = run_result.metrics

    reception = {
        node: protocol.adopted_round for node, protocol in protocols.items()
    }
    num_informed = sum(
        1 for protocol in protocols.values() if protocol.message is not None
    )
    return DecayBroadcastResult(
        success=informed(),
        source=source,
        message=message,
        rounds=run_rounds,
        reception_rounds=reception,
        num_informed=num_informed,
        metrics=metrics,
        parameters=params,
    )


def decay_broadcast_batch(
    graph: Graph,
    source: Any,
    *,
    seeds: Sequence[Optional[int]],
    spontaneous: bool = False,
    config=None,
    parameters: Optional[CompeteParameters] = None,
) -> list[DecayBroadcastResult]:
    """One seeded trial per entry of ``seeds``, batched on the engine.

    Each result is identical to what ``decay_broadcast(..., seed=s)``
    produces on the reference backend for the corresponding seed.
    """
    if spontaneous:
        raise ConfigurationError(
            "decay_broadcast models the classical regime: uninformed nodes "
            "never transmit (spontaneous=True is not supported)"
        )
    if source not in graph:
        raise ConfigurationError(f"source node {source!r} is not in the graph")
    resolved = _resolve(graph, config, parameters)
    return _run_batch(graph, source, resolved, list(seeds))


def _run_batch(graph, source, resolved, seeds) -> list[DecayBroadcastResult]:
    if not seeds:
        return []
    engine = resolved.build_engine()
    message = Message(value=1, source=source)
    initial_row = np.array(
        [1 if node == source else NO_MESSAGE for node in engine.nodes],
        dtype=np.int64,
    )
    outcome = engine.run_batch(
        np.tile(initial_row, (len(seeds), 1)), 1, seeds
    )
    results = []
    for trial in range(outcome.num_trials):
        reception: dict[Any, Optional[int]] = {}
        for index, node in enumerate(engine.nodes):
            if int(outcome.final_ranks[trial, index]) == 1:
                reception[node] = int(outcome.adopted_rounds[trial, index])
            else:
                reception[node] = None
        num_informed = sum(1 for round_ in reception.values()
                           if round_ is not None)
        results.append(
            DecayBroadcastResult(
                success=bool(outcome.saturated[trial]),
                source=source,
                message=message,
                rounds=int(outcome.rounds[trial]),
                reception_rounds=reception,
                num_informed=num_informed,
                metrics=outcome.metrics(trial),
                parameters=resolved.parameters,
            )
        )
    return results
