"""Leader election built on Compete.

The paper's reduction: every node self-selects as a *candidate* with
probability ``~1/n`` (so a constant expected number of candidates arise),
candidates draw random identifiers, and a Compete run floods the highest
identifier through the network.  When the run saturates, the highest
identifier's origin is the unique leader and every node knows it.  An
attempt can fail -- most commonly because no node self-selected -- and
the protocol retries with fresh randomness; each attempt succeeds with
constant probability, so ``O(log n)`` attempts suffice with high
probability.  Note that this reproduction detects attempt failure at the
*observer* level (the simulator checks global saturation); a faithful
distributed termination rule -- nodes inferring failure from hearing no
candidate message for the whole fixed schedule -- only works in the
non-spontaneous variant and is not implemented yet (see ``DESIGN.md``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.network.metrics import NetworkMetrics
from repro.network.radio import CollisionModel
from repro.core.compete import Compete, CompeteResult, CompeteStrategy
from repro.core.parameters import CompeteParameters


@dataclasses.dataclass(frozen=True)
class LeaderElectionResult:
    """Outcome of a leader-election run.

    Attributes
    ----------
    success:
        True when some attempt ended with every node knowing the same
        winning candidate.
    leader:
        The elected node (``None`` on failure).
    attempts:
        Number of Compete attempts executed (including the successful
        one, if any).
    rounds:
        Total simulator rounds across all attempts.
    num_candidates:
        Number of candidates in the final attempt.
    reception_rounds:
        Per-node adoption round of the winning identifier within the
        final attempt (see
        :attr:`~repro.core.compete.CompeteResult.reception_rounds`).
    metrics:
        Accounting merged across all attempts.
    parameters:
        The Compete schedule each attempt used.
    compete_result:
        The final attempt's full :class:`~repro.core.compete.CompeteResult`.
    """

    success: bool
    leader: Optional[Any]
    attempts: int
    rounds: int
    num_candidates: int
    reception_rounds: Mapping[Any, Optional[int]]
    metrics: NetworkMetrics
    parameters: CompeteParameters
    compete_result: Optional[CompeteResult]


def elect_leader(
    graph: Graph,
    *,
    seed: Optional[int] = None,
    candidate_probability: Optional[float] = None,
    max_attempts: Optional[int] = None,
    spontaneous: bool = False,
    config=None,
    parameters: Optional[CompeteParameters] = None,
    margin: Optional[float] = None,
    collision_model: Optional[CollisionModel] = None,
    strategy: Optional[Union[str, CompeteStrategy]] = None,
    backend: Optional[str] = None,
    engine: Optional[str] = None,
) -> LeaderElectionResult:
    """Elect a unique leader known to every node of ``graph``.

    Parameters
    ----------
    graph:
        A connected radio-network topology.
    seed:
        Master seed; candidate selection, identifier draws and every
        Compete attempt derive their randomness from it, so runs are
        exactly reproducible.
    candidate_probability:
        Per-node self-selection probability; defaults to ``1/n``.
    max_attempts:
        Retry budget; defaults to ``max(8, ⌈3 · log2 n⌉)``, which makes
        overall failure vanishingly unlikely.
    spontaneous:
        Forwarded to Compete (non-candidates transmitting dummies).
    config:
        The :class:`~repro.api.config.ExecutionConfig` governing every
        Compete attempt; all strategy/backend/engine cells yield
        identical elections for the same master seed (per strategy).
    parameters:
        Explicit schedule lengths, overriding the config's derived
        budget.
    margin / collision_model / strategy / backend / engine:
        **Deprecated** pre-config keywords (one ``DeprecationWarning``
        per call, seed-identical results).

    >>> from repro import topology
    >>> result = elect_leader(topology.complete_graph(16), seed=3)
    >>> result.success and result.leader in topology.complete_graph(16)
    True
    """
    from repro.api.config import coerce_execution_config

    config = coerce_execution_config(
        config,
        where="elect_leader()",
        margin=margin,
        collision_model=collision_model,
        strategy=strategy,
        backend=backend,
        engine=engine,
    )
    num_nodes = graph.num_nodes
    if candidate_probability is None:
        candidate_probability = 1.0 / max(num_nodes, 1)
    if not 0.0 < candidate_probability <= 1.0:
        raise ConfigurationError(
            "candidate_probability must be in (0, 1], got "
            f"{candidate_probability}"
        )
    if max_attempts is None:
        max_attempts = max(8, math.ceil(3 * math.log2(max(num_nodes, 2))))
    if max_attempts < 1:
        raise ConfigurationError(
            f"max_attempts must be >= 1, got {max_attempts}"
        )

    primitive = Compete(graph, config=config, parameters=parameters)
    # The identifier space is polynomial in n, so identifiers collide only
    # with polynomially small probability; Message's source tie-break keeps
    # the winner unique even if they do.
    id_space = max(num_nodes, 2) ** 3
    seed_sequence = np.random.SeedSequence(seed)

    total_rounds = 0
    total_metrics = NetworkMetrics()
    last_result: Optional[CompeteResult] = None

    for attempt in range(1, max_attempts + 1):
        selection_seq, compete_seq = seed_sequence.spawn(2)
        selection_rng = np.random.default_rng(selection_seq)
        candidates: dict[Any, Message] = {}
        for node in graph.nodes():
            if selection_rng.random() < candidate_probability:
                identifier = int(selection_rng.integers(1, id_space + 1))
                candidates[node] = Message(value=identifier, source=node)

        compete_seed = int(
            np.random.default_rng(compete_seq).integers(0, 2**63)
        )
        result = primitive.run(
            candidates, seed=compete_seed, spontaneous=spontaneous
        )
        total_rounds += result.rounds
        total_metrics = total_metrics.merge(result.metrics)
        last_result = result

        if result.success:
            assert result.winner is not None
            return LeaderElectionResult(
                success=True,
                leader=result.winner.source,
                attempts=attempt,
                rounds=total_rounds,
                num_candidates=result.num_candidates,
                reception_rounds=result.reception_rounds,
                metrics=total_metrics,
                parameters=primitive.parameters,
                compete_result=result,
            )

    assert last_result is not None
    return LeaderElectionResult(
        success=False,
        leader=None,
        attempts=max_attempts,
        rounds=total_rounds,
        num_candidates=last_result.num_candidates,
        reception_rounds=last_result.reception_rounds,
        metrics=total_metrics,
        parameters=primitive.parameters,
        compete_result=last_result,
    )
