"""Random graph families modelling ad-hoc radio deployments.

All generators take an explicit ``seed`` (or a ``numpy`` Generator) so
that experiments are exactly reproducible, and all guarantee connectivity
-- the paper assumes the network is connected so that global propagation
is possible.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.topology.generators import path_graph

SeedLike = Union[int, np.random.Generator, None]


def _as_rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _connect_components(graph: Graph, rng: np.random.Generator) -> None:
    """Add a minimal set of random edges to make ``graph`` connected."""
    components = graph.connected_components()
    while len(components) > 1:
        first = sorted(components[0])
        second = sorted(components[1])
        u = first[int(rng.integers(len(first)))]
        v = second[int(rng.integers(len(second)))]
        graph.add_edge(u, v)
        components = graph.connected_components()


#: Above this node count :func:`connected_gnp_graph` samples the edge
#: *set* (Binomial edge count + distinct uniform pairs) instead of
#: flipping all ``n(n-1)/2`` coins.  The two procedures draw from the
#: same ``G(n, p)`` distribution but give different graphs for the same
#: seed, so the cutoff sits above every seeded topology persisted in a
#: committed ``BENCH_*.json`` -- those must keep rebuilding exactly.
_GNP_FAST_PATH_MIN_NODES = 16384


def connected_gnp_graph(
    num_nodes: int, edge_probability: float, seed: SeedLike = None
) -> Graph:
    """Return a connected Erdos-Renyi ``G(n, p)`` sample.

    Connectivity is enforced by joining leftover components with single
    random edges, which changes the distribution negligibly for
    ``p >= (1 + ε) ln n / n`` (the usual regime for these graphs).

    Above ``n = 16384`` the sampler switches from per-pair coin flips
    (``Θ(n²)`` draws) to the exactly equivalent two-stage form: draw the
    edge count ``m ~ Binomial(n(n-1)/2, p)``, then ``m`` distinct
    unordered pairs uniformly at random.  Same distribution, ``O(n + m)``
    time -- but a *different* stream consumption, so the same seed gives
    different (equally distributed) graphs on either side of the cutoff.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    rng = _as_rng(seed)
    graph = Graph(nodes=range(num_nodes))
    if num_nodes > _GNP_FAST_PATH_MIN_NODES:
        _sample_gnp_edges_fast(graph, num_nodes, edge_probability, rng)
    else:
        # Sample the upper triangle in vectorised blocks for speed.
        for u in range(num_nodes - 1):
            count = num_nodes - u - 1
            mask = rng.random(count) < edge_probability
            for offset in np.nonzero(mask)[0]:
                graph.add_edge(u, int(u + 1 + offset))
    _connect_components(graph, rng)
    return graph


def _sample_gnp_edges_fast(
    graph: Graph,
    num_nodes: int,
    edge_probability: float,
    rng: np.random.Generator,
) -> None:
    """Add ``G(n, p)`` edges by sampling the edge set directly.

    ``m ~ Binomial(n(n-1)/2, p)`` distinct unordered pairs, drawn by
    rejection: oversample uniform pairs, keep the first occurrence of
    each (in draw order, so the result is exchangeable), repeat until
    ``m`` are accumulated.  Each accepted pair is uniform over the
    remaining pairs, which is exactly the ``G(n, p)`` edge set law.
    """
    num_pairs = num_nodes * (num_nodes - 1) // 2
    target = int(rng.binomial(num_pairs, edge_probability))
    chosen: dict[int, None] = {}  # insertion-ordered pair codes
    while len(chosen) < target:
        need = target - len(chosen)
        # Oversample a little so one round usually suffices (collisions
        # are rare while target << num_pairs, the sparse regime this
        # path exists for).
        batch = max(16, int(need * 1.05))
        u = rng.integers(0, num_nodes, size=batch, dtype=np.int64)
        v = rng.integers(0, num_nodes - 1, size=batch, dtype=np.int64)
        # Classic distinct-pair trick: v skips u, so (u, v) is uniform
        # over ordered distinct pairs; canonicalise to unordered.
        v = np.where(v >= u, v + 1, v)
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        for code in (lo * num_nodes + hi).tolist():
            if code not in chosen:
                chosen[code] = None
                if len(chosen) == target:
                    break
    for code in chosen:
        graph.add_edge(int(code // num_nodes), int(code % num_nodes))


def random_geometric_graph(
    num_nodes: int,
    radius: Optional[float] = None,
    seed: SeedLike = None,
    side_length: float = 1.0,
) -> Graph:
    """Return a connected random geometric graph on the unit square.

    Nodes are placed uniformly at random in a ``side_length`` square and
    joined when within ``radius``.  This is the standard abstraction of a
    wireless ad-hoc deployment.  When ``radius`` is omitted it defaults to
    the connectivity threshold ``side_length * sqrt(2 ln n / (π n))``
    scaled by 1.2, which empirically yields connected graphs with a wide
    range of diameters.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"num_nodes must be >= 2, got {num_nodes}")
    rng = _as_rng(seed)
    if radius is None:
        radius = 1.2 * side_length * math.sqrt(
            2.0 * math.log(num_nodes) / (math.pi * num_nodes)
        )
    positions = rng.random((num_nodes, 2)) * side_length
    graph = Graph(nodes=range(num_nodes))
    # Grid-bucket the points so neighbour search is near-linear.
    cell = max(radius, 1e-9)
    buckets: dict[tuple[int, int], list[int]] = {}
    for index in range(num_nodes):
        key = (int(positions[index, 0] // cell), int(positions[index, 1] // cell))
        buckets.setdefault(key, []).append(index)
    radius_sq = radius * radius
    for (cx, cy), members in buckets.items():
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                candidates.extend(buckets.get((cx + dx, cy + dy), ()))
        for u in members:
            for v in candidates:
                if v <= u:
                    continue
                delta = positions[u] - positions[v]
                if float(delta @ delta) <= radius_sq:
                    graph.add_edge(u, v)
    _connect_components(graph, rng)
    return graph


def random_tree_graph(num_nodes: int, seed: SeedLike = None) -> Graph:
    """Return a uniformly random labelled tree (via a random Prüfer-like
    attachment process).

    Trees are the sparsest connected graphs and stress the clustering
    (every edge is a cut edge candidate).
    """
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
    rng = _as_rng(seed)
    graph = Graph(nodes=range(num_nodes))
    for node in range(1, num_nodes):
        parent = int(rng.integers(node))
        graph.add_edge(node, parent)
    return graph


def clustered_graph(
    num_clusters: int,
    cluster_size: int,
    intra_probability: float = 0.5,
    extra_inter_edges: int = 0,
    seed: SeedLike = None,
) -> Graph:
    """Return a graph of dense random clusters arranged along a chain.

    Each cluster is an internal ``G(cluster_size, intra_probability)``
    made connected; consecutive clusters are joined by one edge, plus
    ``extra_inter_edges`` random long-range edges.  This mimics the
    multi-cell deployments that motivate the coarse/fine clustering of
    the Compete algorithm.
    """
    if num_clusters < 1 or cluster_size < 1:
        raise ConfigurationError("num_clusters and cluster_size must be >= 1")
    rng = _as_rng(seed)
    graph = Graph(nodes=range(num_clusters * cluster_size))
    for cluster_index in range(num_clusters):
        base = cluster_index * cluster_size
        members = list(range(base, base + cluster_size))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < intra_probability:
                    graph.add_edge(u, v)
        # Make the cluster internally connected with a spanning path.
        for u, v in zip(members, members[1:]):
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
        if cluster_index > 0:
            graph.add_edge(base - cluster_size, base)
    for _ in range(extra_inter_edges):
        u = int(rng.integers(graph.num_nodes))
        v = int(rng.integers(graph.num_nodes))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def diameter_controlled_graph(
    num_nodes: int,
    target_diameter: int,
    seed: SeedLike = None,
) -> Graph:
    """Return a connected graph with ``num_nodes`` nodes and diameter close
    to ``target_diameter``.

    The construction places a backbone path of ``target_diameter + 1``
    nodes and attaches the remaining nodes to random backbone positions
    (plus a few random chords between attached nodes sharing a backbone
    neighbourhood).  The realised diameter is within a small additive
    constant of the target; callers that need the exact value should read
    it back via :meth:`repro.network.graph.Graph.diameter`.
    """
    if target_diameter < 1:
        raise ConfigurationError(f"target_diameter must be >= 1, got {target_diameter}")
    if num_nodes < target_diameter + 1:
        raise ConfigurationError(
            "num_nodes must be at least target_diameter + 1 "
            f"(got n={num_nodes}, D={target_diameter})"
        )
    rng = _as_rng(seed)
    backbone_size = target_diameter + 1
    graph = path_graph(backbone_size)
    for node in range(backbone_size, num_nodes):
        anchor = int(rng.integers(backbone_size))
        graph.add_node(node)
        graph.add_edge(node, anchor)
        # Occasionally add a second edge to a nearby anchor so the graph
        # is not a pure caterpillar.
        if rng.random() < 0.3:
            nearby = min(backbone_size - 1, max(0, anchor + int(rng.integers(-1, 2))))
            if nearby != node and not graph.has_edge(node, nearby):
                graph.add_edge(node, nearby)
    return graph
