"""Validation and summarisation of candidate radio-network topologies.

Every experiment validates its input graphs once up front: the paper's
model requires a connected, simple, undirected graph, and the cost
formulas need ``n`` and ``D``.  :func:`summarize_topology` computes the
quantities the reporting layer prints alongside each experiment row.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import GraphError
from repro.network.graph import Graph


def validate_radio_topology(graph: Graph) -> None:
    """Check that ``graph`` is a legal radio-network topology.

    Raises
    ------
    GraphError
        If the graph is empty or disconnected.  (Self-loops and parallel
        edges cannot occur by construction of :class:`Graph`.)
    """
    if graph.num_nodes == 0:
        raise GraphError("a radio network must have at least one node")
    if not graph.is_connected():
        raise GraphError(
            "the radio network model requires a connected graph; "
            f"found {len(graph.connected_components())} components"
        )


@dataclasses.dataclass(frozen=True)
class TopologySummary:
    """Key parameters of a topology, as used by the cost formulas.

    Attributes
    ----------
    num_nodes:
        ``n``.
    num_edges:
        ``|E|``.
    diameter:
        ``D`` (exact for small graphs, two-sweep estimate for large ones).
    max_degree:
        The maximum degree ``Δ``.
    log_n:
        ``log2(n)`` (the paper's ``log n``; at least 1.0 to avoid
        degenerate formulas on tiny graphs).
    log_d:
        ``log2(D)`` (at least 1.0).
    """

    num_nodes: int
    num_edges: int
    diameter: int
    max_degree: int
    log_n: float
    log_d: float

    @property
    def is_poly_d(self) -> bool:
        """True when ``n <= D^3``, the regime where the paper's bound is
        ``O(D)`` (using exponent 3 as a proxy for "n polynomial in D")."""
        return self.num_nodes <= max(self.diameter, 2) ** 3


def summarize_topology(graph: Graph, exact_diameter: bool | None = None) -> TopologySummary:
    """Compute a :class:`TopologySummary` for ``graph``.

    Parameters
    ----------
    graph:
        A validated, connected graph.
    exact_diameter:
        Passed through to :meth:`Graph.diameter`.
    """
    validate_radio_topology(graph)
    diameter = graph.diameter(exact=exact_diameter)
    num_nodes = graph.num_nodes
    return TopologySummary(
        num_nodes=num_nodes,
        num_edges=graph.num_edges,
        diameter=diameter,
        max_degree=graph.max_degree(),
        log_n=max(1.0, math.log2(max(num_nodes, 2))),
        log_d=max(1.0, math.log2(max(diameter, 2))),
    )
