"""Topology generators for the benchmark and test workloads.

The paper's bounds are parameterised by ``n`` (nodes) and ``D``
(diameter); the experiments therefore need families of connected graphs
where both parameters can be controlled independently:

* *deterministic* families (paths, cycles, grids, trees, caterpillars,
  dumbbells) with exactly known diameter, and
* *random* families (connected G(n, p), random geometric graphs,
  clustered graphs) that model realistic ad-hoc deployments.
"""

from repro.topology.generators import (
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
    grid_graph,
    binary_tree_graph,
    caterpillar_graph,
    dumbbell_graph,
    lollipop_graph,
    path_of_cliques_graph,
)
from repro.topology.random_graphs import (
    connected_gnp_graph,
    random_geometric_graph,
    clustered_graph,
    random_tree_graph,
    diameter_controlled_graph,
)
from repro.topology.validation import (
    validate_radio_topology,
    TopologySummary,
    summarize_topology,
)

#: Topology families addressable by name.  This is the lookup table the
#: scenario registry of :mod:`repro.experiments` builds graphs from, so a
#: scenario can be persisted to JSON as ``{"family": ..., "args": {...}}``
#: and rebuilt exactly.  Keys are stable identifiers; add new families
#: here when introducing a generator that experiments should reach.
FAMILIES = {
    "path": path_graph,
    "cycle": cycle_graph,
    "star": star_graph,
    "complete": complete_graph,
    "grid": grid_graph,
    "binary-tree": binary_tree_graph,
    "caterpillar": caterpillar_graph,
    "dumbbell": dumbbell_graph,
    "lollipop": lollipop_graph,
    "path-of-cliques": path_of_cliques_graph,
    "gnp": connected_gnp_graph,
    "geometric": random_geometric_graph,
    "clustered": clustered_graph,
    "random-tree": random_tree_graph,
    "diameter-controlled": diameter_controlled_graph,
}


def make_topology(family, **kwargs):
    """Build a graph from a family name and keyword arguments.

    >>> make_topology("path", num_nodes=4).num_nodes
    4

    Raises
    ------
    repro.errors.ConfigurationError
        If ``family`` is not a key of :data:`FAMILIES`.
    """
    from repro.errors import ConfigurationError

    try:
        generator = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ConfigurationError(
            f"unknown topology family {family!r}; known families: {known}"
        ) from None
    return generator(**kwargs)


__all__ = [
    "FAMILIES",
    "make_topology",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "binary_tree_graph",
    "caterpillar_graph",
    "dumbbell_graph",
    "lollipop_graph",
    "path_of_cliques_graph",
    "connected_gnp_graph",
    "random_geometric_graph",
    "clustered_graph",
    "random_tree_graph",
    "diameter_controlled_graph",
    "validate_radio_topology",
    "TopologySummary",
    "summarize_topology",
]
