"""Topology generators for the benchmark and test workloads.

The paper's bounds are parameterised by ``n`` (nodes) and ``D``
(diameter); the experiments therefore need families of connected graphs
where both parameters can be controlled independently:

* *deterministic* families (paths, cycles, grids, trees, caterpillars,
  dumbbells) with exactly known diameter, and
* *random* families (connected G(n, p), random geometric graphs,
  clustered graphs) that model realistic ad-hoc deployments.
"""

from repro.topology.generators import (
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
    grid_graph,
    binary_tree_graph,
    caterpillar_graph,
    dumbbell_graph,
    lollipop_graph,
    path_of_cliques_graph,
)
from repro.topology.random_graphs import (
    connected_gnp_graph,
    random_geometric_graph,
    clustered_graph,
    random_tree_graph,
    diameter_controlled_graph,
)
from repro.topology.validation import (
    validate_radio_topology,
    TopologySummary,
    summarize_topology,
)

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "binary_tree_graph",
    "caterpillar_graph",
    "dumbbell_graph",
    "lollipop_graph",
    "path_of_cliques_graph",
    "connected_gnp_graph",
    "random_geometric_graph",
    "clustered_graph",
    "random_tree_graph",
    "diameter_controlled_graph",
    "validate_radio_topology",
    "TopologySummary",
    "summarize_topology",
]
