"""Deterministic graph families with analytically known diameters.

These are the workhorses of the scaling experiments: the paper's bounds
are stated in terms of ``n`` and ``D``, and deterministic families let the
benchmarks place ``(n, D)`` exactly where a regime of interest lies (for
example ``n = Θ(D)`` for the optimal-``O(D)`` regime of Theorem 5.1, or
``n = D^2`` for the grid).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.network.graph import Graph


def _require_positive(name: str, value: int, minimum: int = 1) -> None:
    if not isinstance(value, int) or value < minimum:
        raise ConfigurationError(f"{name} must be an integer >= {minimum}, got {value!r}")


def path_graph(num_nodes: int) -> Graph:
    """Return the path ``0 - 1 - ... - (n-1)``.

    Diameter ``n - 1``; the extreme case ``n = D + 1`` where the paper's
    bound is ``O(D)`` and prior bounds are ``O(D log D)``-ish.
    """
    _require_positive("num_nodes", num_nodes)
    graph = Graph(nodes=range(num_nodes))
    for node in range(num_nodes - 1):
        graph.add_edge(node, node + 1)
    return graph


def cycle_graph(num_nodes: int) -> Graph:
    """Return the cycle on ``num_nodes`` nodes (diameter ``⌊n/2⌋``)."""
    _require_positive("num_nodes", num_nodes, minimum=3)
    graph = path_graph(num_nodes)
    graph.add_edge(num_nodes - 1, 0)
    return graph


def star_graph(num_leaves: int) -> Graph:
    """Return a star: centre node ``0`` joined to ``num_leaves`` leaves.

    Diameter 2.  Used by the Decay experiments (Lemma 3.1), where the
    number of simultaneously contending neighbours is the key parameter.
    """
    _require_positive("num_leaves", num_leaves)
    graph = Graph(nodes=range(num_leaves + 1))
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_graph(num_nodes: int) -> Graph:
    """Return the complete graph on ``num_nodes`` nodes (diameter 1)."""
    _require_positive("num_nodes", num_nodes, minimum=2)
    graph = Graph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            graph.add_edge(u, v)
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` grid (diameter ``rows + cols - 2``).

    Nodes are integers ``r * cols + c``.  The square grid gives the
    natural ``n = Θ(D^2)`` regime.
    """
    _require_positive("rows", rows)
    _require_positive("cols", cols)
    graph = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def binary_tree_graph(depth: int) -> Graph:
    """Return the complete binary tree of the given depth.

    ``n = 2^(depth+1) - 1`` and diameter ``2 * depth``; the regime where
    ``D = Θ(log n)`` and the additive polylog term dominates.
    """
    _require_positive("depth", depth, minimum=0)
    num_nodes = 2 ** (depth + 1) - 1
    graph = Graph(nodes=range(num_nodes))
    for node in range(1, num_nodes):
        graph.add_edge(node, (node - 1) // 2)
    return graph


def caterpillar_graph(spine_length: int, legs_per_node: int) -> Graph:
    """Return a caterpillar: a path spine with pendant leaves on each node.

    Diameter ``spine_length + 1`` (for ``legs_per_node >= 1``); lets the
    experiments grow ``n`` while keeping ``D`` essentially fixed.
    Spine nodes are ``0 .. spine_length - 1``.
    """
    _require_positive("spine_length", spine_length, minimum=2)
    _require_positive("legs_per_node", legs_per_node, minimum=0)
    graph = path_graph(spine_length)
    next_id = spine_length
    for spine_node in range(spine_length):
        for _ in range(legs_per_node):
            graph.add_edge(spine_node, next_id)
            next_id += 1
    return graph


def dumbbell_graph(clique_size: int, bridge_length: int) -> Graph:
    """Return two cliques joined by a path of ``bridge_length`` edges.

    A classic hard case for clustering-based algorithms: the bridge forces
    messages through a thin cut.  Diameter ``bridge_length + 2``.
    """
    _require_positive("clique_size", clique_size, minimum=2)
    _require_positive("bridge_length", bridge_length, minimum=1)
    graph = Graph()
    left = list(range(clique_size))
    right = list(range(clique_size, 2 * clique_size))
    for group in (left, right):
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v)
    bridge = list(range(2 * clique_size, 2 * clique_size + bridge_length - 1))
    chain = [left[0]] + bridge + [right[0]]
    for u, v in zip(chain, chain[1:]):
        graph.add_edge(u, v)
    return graph


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """Return a clique with a path attached (the "lollipop").

    Diameter ``path_length + 1``.  Exercises the asymmetric case where a
    dense region feeds a long thin region.
    """
    _require_positive("clique_size", clique_size, minimum=2)
    _require_positive("path_length", path_length, minimum=1)
    graph = Graph()
    clique = list(range(clique_size))
    for i, u in enumerate(clique):
        for v in clique[i + 1 :]:
            graph.add_edge(u, v)
    previous = clique[0]
    for offset in range(path_length):
        node = clique_size + offset
        graph.add_edge(previous, node)
        previous = node
    return graph


def path_of_cliques_graph(num_cliques: int, clique_size: int) -> Graph:
    """Return ``num_cliques`` cliques chained by single edges.

    Diameter ``2 * num_cliques - 1`` (one hop across each clique plus the
    connecting edges); models a corridor of dense cells, the shape that
    motivates the paper's "rapidly expanding layer" analysis in Section 6.
    """
    _require_positive("num_cliques", num_cliques, minimum=1)
    _require_positive("clique_size", clique_size, minimum=2)
    graph = Graph()
    for index in range(num_cliques):
        base = index * clique_size
        members = list(range(base, base + clique_size))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
        if index > 0:
            # Join the previous clique's last node to this clique's first.
            graph.add_edge(base - 1, base)
    return graph
