"""NumPy-vectorized batch simulation of Compete-style message floods.

:class:`~repro.simulation.runner.ProtocolRunner` advances one node at a
time in pure Python -- ideal for auditing the model, far too slow for the
benchmark sweeps the ROADMAP calls for.  This module is the fast path:
one synchronous round of the whole network (and of a whole *batch* of
independent trials) is computed as a handful of dense array operations on
the graph's adjacency matrix.

The engine exploits a structural fact about the Compete dynamics
(:mod:`repro.core.compete`): the only messages ever on the air are the
initial candidate/dummy messages, and nodes compare them through the
total order of :meth:`repro.network.messages.Message.sort_key`.  Ranking
the messages once up front therefore reduces every node's state to a
single integer -- the *rank* of the best message it knows (0 = knows
nothing) -- and one round becomes:

* ``transmit = informed & (uniform_draw < p[round])``  (the per-node
  transmission schedule; the classical uniform Decay rule
  ``p = 2^-step`` is one instance),
* ``counts   = transmit @ A``                          (transmitting
  neighbours per listener),
* a listener with ``counts == 1`` receives the unique transmitter's
  rank, obtained from ``(transmit * rank) @ A``,
* ``rank = max(rank, received_rank)``                  (adopt-if-higher).

All three are batched over an additional leading *trial* axis, so many
seeded trials run simultaneously through the same matrix products.

Two interchangeable kernel **engines** execute the reception step, chosen
by the ``engine`` argument (``"auto"`` applies the edge-density heuristic
of :func:`repro.simulation.sparse.select_engine`):

* ``"dense"`` densifies the adjacency matrix once and computes ``counts``
  and the rank sums as matrix products -- unbeatable below a few thousand
  nodes, ``O(n²)`` memory and per-round work above that;
* ``"sparse"`` keeps the graph in CSR form
  (:class:`repro.simulation.sparse.CSRAdjacency`) and computes the same
  two quantities as integer segment sums over the ``O(n + m)`` edge
  structure -- this is what opens the ``n >= 10^4`` scenarios the
  ROADMAP calls for.

Both engines evaluate the identical collision rule on exactly the same
draws, so they agree bit for bit; the engine axis is orthogonal to the
strategy axis and invisible in every result.

Round-exact equivalence with the reference runner
-------------------------------------------------
The engine is a *drop-in* backend, not an approximation: for the same
graph, candidates and seed it reproduces the reference simulation round
for round -- same transmissions, same receptions, same adoption rounds,
same metric counters.  The one subtle requirement is randomness: the
reference gives each node a private generator from
``SeedSequence(seed).spawn(n)`` (:func:`~repro.simulation.runner.spawn_node_rngs`)
and a node consumes exactly one uniform draw per round *while it holds a
message* (uninformed nodes listen without drawing).  :class:`DrawStreams`
replays those per-node streams from identically-spawned generators,
pre-drawing blocks per node and consuming them one element per informed
round, so the k-th decision of every node matches the reference's k-th
decision exactly.  ``tests/test_vectorized.py`` pins this equivalence on
path/star/grid/random topologies.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.metrics import NetworkMetrics
from repro.schedules.transmission import decay_probabilities
from repro.simulation.rng import RNG_MODES, DecoupledStreams
from repro.simulation.sparse import CSRAdjacency, ENGINE_KINDS, resolve_engine

#: Rank value meaning "this node knows no message yet".
NO_MESSAGE = 0

#: Engine selectors: the concrete kernels plus the density heuristic.
ENGINES = ("auto",) + ENGINE_KINDS

#: Default number of uniform draws pre-fetched per (trial, node) stream.
#: Larger blocks amortise the per-generator Python call over more rounds
#: at the cost of ``trials * n * block * 8`` bytes of buffer.
DEFAULT_DRAW_BLOCK = 128


class DrawStreams:
    """Replays the reference runner's per-node uniform draw streams, batched.

    One stream per (trial, node) pair, seeded exactly like
    :func:`~repro.simulation.runner.spawn_node_rngs`: trial ``t`` spawns
    ``SeedSequence(seeds[t]).spawn(num_nodes)`` and stream ``i`` draws from
    ``default_rng`` of the i-th child.  :meth:`take` hands out the next
    element of each requested stream; streams that are not requested in a
    round advance by nothing, mirroring a listening (uninformed) node.
    """

    def __init__(
        self,
        seeds: Sequence[Optional[int]],
        num_nodes: int,
        block: int = DEFAULT_DRAW_BLOCK,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        if block < 1:
            raise ConfigurationError(f"block must be >= 1, got {block}")
        self._block = block
        self._generators: list[np.random.Generator] = []
        for seed in seeds:
            children = np.random.SeedSequence(seed).spawn(num_nodes)
            self._generators.extend(np.random.default_rng(c) for c in children)
        count = len(self._generators)
        self._buffer = np.empty((count, block), dtype=np.float64)
        for row, generator in enumerate(self._generators):
            self._buffer[row] = generator.random(block)
        self._position = np.zeros(count, dtype=np.int64)

    def take(self, wanted: np.ndarray) -> np.ndarray:
        """Return the next draw of every stream where ``wanted`` is True.

        ``wanted`` is a flat boolean array over the ``trials * num_nodes``
        streams.  The result has the same shape, with ``nan`` in positions
        that were not requested (callers use the draws only in comparisons,
        where ``nan`` compares False).
        """
        indices = np.nonzero(wanted)[0]
        exhausted = indices[self._position[indices] == self._block]
        for row in exhausted:
            self._buffer[row] = self._generators[row].random(self._block)
            self._position[row] = 0
        draws = np.full(wanted.shape, np.nan)
        draws[indices] = self._buffer[indices, self._position[indices]]
        self._position[indices] += 1
        return draws


@dataclasses.dataclass(frozen=True)
class BatchOutcome:
    """Per-trial outcome arrays of one :meth:`VectorizedCompeteEngine.run_batch`.

    All arrays share the trial axis; per-node arrays are aligned with
    :attr:`nodes` (the graph's insertion order).

    Attributes
    ----------
    nodes:
        Node order of the per-node axes.
    rounds:
        Rounds executed per trial (a trial stops as soon as it saturates).
    saturated:
        Whether every node ended the trial holding ``winner_rank``.
    final_ranks:
        Each node's final best-message rank (:data:`NO_MESSAGE` = none).
    adopted_rounds:
        Round in which each node adopted its final rank; ``-1`` for ranks
        held since before round 0.  Meaningful only where ``final_ranks``
        is not :data:`NO_MESSAGE`.
    transmissions / receptions / collisions / idle_listens:
        Per-trial metric counters with exactly the semantics of
        :class:`~repro.network.metrics.NetworkMetrics`.
    suppressed_links / crashed_nodes / jammed_listens:
        Per-trial fault counters (:mod:`repro.dynamics`), all zero on
        static runs.
    """

    nodes: tuple
    rounds: np.ndarray
    saturated: np.ndarray
    final_ranks: np.ndarray
    adopted_rounds: np.ndarray
    transmissions: np.ndarray
    receptions: np.ndarray
    collisions: np.ndarray
    idle_listens: np.ndarray
    suppressed_links: np.ndarray
    crashed_nodes: np.ndarray
    jammed_listens: np.ndarray

    @property
    def num_trials(self) -> int:
        return int(self.rounds.shape[0])

    def metrics(self, trial: int) -> NetworkMetrics:
        """Return one trial's counters as a :class:`NetworkMetrics`."""
        return NetworkMetrics(
            rounds=int(self.rounds[trial]),
            transmissions=int(self.transmissions[trial]),
            receptions=int(self.receptions[trial]),
            collisions=int(self.collisions[trial]),
            idle_listens=int(self.idle_listens[trial]),
            suppressed_links=int(self.suppressed_links[trial]),
            crashed_nodes=int(self.crashed_nodes[trial]),
            jammed_listens=int(self.jammed_listens[trial]),
        )


class VectorizedCompeteEngine:
    """Batch-simulates the Compete dynamics on one fixed topology.

    Parameters
    ----------
    graph:
        The communication graph.  Its adjacency structure is snapshotted
        once at construction -- densified into an ``n x n`` matrix under
        the dense engine, converted to CSR under the sparse one.
    engine:
        ``"dense"``, ``"sparse"``, or ``"auto"`` (the default), which
        picks by the edge-density heuristic of
        :func:`repro.simulation.sparse.select_engine`: dense up to
        :data:`~repro.simulation.sparse.DENSE_NODE_CUTOFF` nodes, sparse
        above it while the density stays below
        :data:`~repro.simulation.sparse.SPARSE_DENSITY_CUTOFF`.  The two
        kernels are bit-for-bit equivalent; only time and memory differ.
    decay_steps:
        Steps per uniform Decay round (``⌈log2 n⌉``); every node's
        transmission probability in global round ``r`` is
        ``2^-((r mod decay_steps) + 1)``, exactly the skeleton schedule
        of :class:`~repro.core.compete.CompeteProtocol`.  Mutually
        exclusive with ``schedule``.
    schedule:
        A :class:`~repro.schedules.transmission.TransmissionSchedule`
        assigning each node its own periodic probability cycle (the
        clustered strategy's cost-charged schedules arrive this way).
        The schedule must cover every node of the graph.  Mutually
        exclusive with ``decay_steps``.
    max_rounds:
        Round budget per trial.
    draw_block:
        Pre-draw block size for :class:`DrawStreams` (replay mode only).
    rng:
        Randomness policy, one of
        :data:`repro.simulation.rng.RNG_MODES`.  ``"replay"`` (the
        default) replays the reference runner's per-node streams via
        :class:`DrawStreams` -- the round-exact parity mode this
        docstring describes.  ``"decoupled"`` evaluates the stateless
        counter-based hash of
        :class:`~repro.simulation.rng.DecoupledStreams` instead (and,
        on the sparse engine, the transmitter-driven reception kernel):
        much faster at large ``n``, still exactly reproducible from the
        seeds, but only *distributionally* equivalent to the reference
        (``tests/test_rng_decoupled.py`` enforces that contract
        statistically).
    dynamics:
        Optional :class:`repro.dynamics.FaultSchedule` bound to this
        graph.  Each round the engine resolves the schedule's fault
        state and applies it to the channel: crashed nodes neither
        transmit nor receive, down links are masked out of the
        adjacency structure (a per-round masked copy under the dense
        kernel, an entry mask under the sparse one), and jammed alive
        listeners receive nothing.  Fault decisions are pure counter
        hashes shared with the reference runner, so the round-exact
        equivalence contract extends to faulty runs unchanged.
    config:
        An :class:`~repro.api.config.ExecutionConfig` describing the
        whole run: the strategy is compiled to the schedule, the round
        budget derived from the graph (or the config's explicit
        ``parameters``), and ``engine="auto"`` resolved through the
        shared :func:`~repro.api.config.resolve_execution` path.
        Mutually exclusive with every other keyword.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        decay_steps: Optional[int] = None,
        schedule=None,
        max_rounds: Optional[int] = None,
        draw_block: int = DEFAULT_DRAW_BLOCK,
        engine: str = "auto",
        rng: str = "replay",
        dynamics=None,
        config=None,
    ) -> None:
        if config is not None:
            if (decay_steps is not None or schedule is not None
                    or max_rounds is not None or engine != "auto"
                    or draw_block != DEFAULT_DRAW_BLOCK
                    or rng != "replay" or dynamics is not None):
                raise ConfigurationError(
                    "pass either config= or the explicit decay_steps/"
                    "schedule/max_rounds/engine/draw_block/rng/dynamics "
                    "keywords, not both (the config carries its own "
                    "engine, draw_block, rng and dynamics)"
                )
            # api sits above simulation in the layering, so the import
            # is local; resolution applies the density heuristic once.
            from repro.api.config import resolve_execution

            resolved = resolve_execution(graph, config)
            schedule = resolved.schedule
            max_rounds = resolved.parameters.total_rounds
            engine = resolved.engine
            draw_block = config.draw_block
            rng = config.rng
            dynamics = resolved.fault_schedule
        if max_rounds is None:
            raise ConfigurationError(
                "max_rounds is required when no config is given"
            )
        if (decay_steps is None) == (schedule is None):
            raise ConfigurationError(
                "exactly one of decay_steps and schedule must be given"
            )
        if decay_steps is not None and decay_steps < 1:
            raise ConfigurationError(f"decay_steps must be >= 1, got {decay_steps}")
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
        if rng not in RNG_MODES:
            raise ConfigurationError(
                f"rng must be one of {RNG_MODES}, got {rng!r}"
            )
        self._rng = rng
        self._engine = engine = resolve_engine(
            engine, graph.num_nodes, graph.num_edges
        )
        self._csr: Optional[CSRAdjacency] = None
        self._adjacency: Optional[np.ndarray] = None
        if engine == "sparse":
            self._csr, nodes = CSRAdjacency.from_graph(graph)
        else:
            matrix, nodes = graph.adjacency_matrix()
            # float32 matmuls are ~2x faster and remain exact as long as
            # every intermediate integer stays below 2^24: neighbour counts
            # are <= n and rank sums are <= n * n (ranks are dense, so < n).
            dtype = np.float32 if len(nodes) ** 2 < 2**24 else np.float64
            self._adjacency = matrix.astype(dtype)
        self._nodes = tuple(nodes)
        self._dynamics = dynamics
        if dynamics is not None and tuple(dynamics.nodes) != self._nodes:
            raise ConfigurationError(
                "dynamics was compiled for a different node order; "
                "build the FaultSchedule from the same graph as the "
                "engine"
            )
        if schedule is not None:
            # One row of per-node probabilities per round of the cycle;
            # the run loop indexes row ``round % cycle_length``.
            self._probabilities = schedule.probability_matrix(nodes)
        else:
            assert decay_steps is not None
            self._probabilities = np.tile(
                np.array(decay_probabilities(decay_steps))[:, None],
                (1, len(nodes)),
            )
        self._max_rounds = max_rounds
        self._draw_block = draw_block
        if rng == "decoupled":
            # Pre-scale the probability cycle to integer thresholds so
            # the hot loop compares the raw hash words directly: with
            # draw mantissa ``m = bits >> 11``, ``m * 2**-53 < p`` iff
            # ``m < t = ceil(p * 2**53)`` iff ``bits < t << 11``.  The
            # one inexact corner is ``p >= 1`` (threshold saturates at
            # 2**64 - 1, missing the all-ones word with probability
            # 2**-64 per draw); Decay probabilities never exceed 1/2.
            mantissa_thresholds = np.ceil(
                np.clip(self._probabilities, 0.0, 1.0) * 2.0 ** 53
            ).astype(np.uint64)
            self._thresholds = np.where(
                mantissa_thresholds >= np.uint64(2 ** 53),
                np.iinfo(np.uint64).max,
                mantissa_thresholds << np.uint64(11),
            )
        else:
            self._thresholds = None

    @property
    def nodes(self) -> tuple:
        """Node order of the engine's per-node axes."""
        return self._nodes

    @property
    def engine(self) -> str:
        """The kernel actually selected: ``"dense"`` or ``"sparse"``."""
        return self._engine

    @property
    def rng(self) -> str:
        """The randomness policy: ``"replay"`` or ``"decoupled"``."""
        return self._rng

    def _round_reception(
        self, transmit: np.ndarray, ranks: np.ndarray, faults=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One round's reception outcome under the selected kernel.

        Returns ``(unique, collided, received)``: per (trial, node)
        whether exactly one / two-or-more neighbours transmitted, and
        the transmitted-rank sum (meaningful only where ``unique``).
        Silent air is the complement of the two masks.  Both kernels
        compute identical values -- the dense one as float matrix
        products (exact below the dtype's integer range, see
        ``__init__``), the sparse one as int64 segment sums.

        ``faults`` (a :class:`repro.dynamics.RoundFaults`) masks churned
        links out of the structure for this round: the dense kernel
        multiplies against a copy with the down pairs zeroed, the sparse
        kernels drop the down CSR entries.  Both see the identical
        ``edge_up`` array, so they keep agreeing bit for bit.
        """
        if self._engine == "dense":
            adjacency = self._adjacency
            if faults is not None and faults.edge_up is not None:
                down = ~faults.edge_up
                if down.any():
                    lo, hi = self._dynamics.edge_endpoints
                    adjacency = adjacency.copy()
                    adjacency[lo[down], hi[down]] = 0
                    adjacency[hi[down], lo[down]] = 0
            transmit_f = transmit.astype(adjacency.dtype)
            counts = transmit_f @ adjacency
            received = (
                (transmit_f * ranks.astype(adjacency.dtype)) @ adjacency
            ).astype(np.int64)
            return counts == 1.0, counts >= 2.0, received
        entry_mask = None
        if faults is not None and faults.edge_up is not None:
            entry_mask = faults.edge_up[self._dynamics.entry_edge_ids]
        if self._rng == "decoupled":
            # The decoupled fast mode pairs the hash RNG with the
            # transmitter-driven kernel (identical values, far less
            # gather work); replay keeps the original all-edges kernel
            # so the reference-parity path stays byte-identical.
            counts, received = self._csr.transmitter_counts_and_rank_sums(
                transmit, ranks, entry_mask
            )
        else:
            counts, received = self._csr.counts_and_rank_sums(
                transmit, ranks, entry_mask
            )
        return counts == 1, counts >= 2, received

    def run_batch(
        self,
        initial_ranks: np.ndarray,
        winner_rank: Optional[int],
        seeds: Sequence[Optional[int]],
    ) -> BatchOutcome:
        """Run one seeded trial per row of ``initial_ranks``.

        Parameters
        ----------
        initial_ranks:
            Integer array of shape ``(trials, n)``: each node's starting
            message rank (:data:`NO_MESSAGE` for nodes that know nothing),
            aligned with :attr:`nodes`.
        winner_rank:
            The rank whose saturation ends a trial early, or ``None`` to
            always run the full budget (the no-candidate case, where the
            reference run can never succeed either).
        seeds:
            One seed per trial, consumed exactly like the reference
            runner's ``seed`` argument.
        """
        ranks = np.asarray(initial_ranks, dtype=np.int64)
        if ranks.ndim != 2 or ranks.shape[1] != len(self._nodes):
            raise ConfigurationError(
                "initial_ranks must have shape (trials, "
                f"{len(self._nodes)}), got {ranks.shape}"
            )
        num_trials = ranks.shape[0]
        if len(seeds) != num_trials:
            raise ConfigurationError(
                f"got {len(seeds)} seeds for {num_trials} trials"
            )
        if (ranks < NO_MESSAGE).any():
            raise ConfigurationError("ranks must be >= 0 (0 = no message)")

        ranks = ranks.copy()
        adopted = np.full(ranks.shape, -1, dtype=np.int64)
        rounds = np.zeros(num_trials, dtype=np.int64)
        transmissions = np.zeros(num_trials, dtype=np.int64)
        receptions = np.zeros(num_trials, dtype=np.int64)
        collisions = np.zeros(num_trials, dtype=np.int64)
        idle_listens = np.zeros(num_trials, dtype=np.int64)
        suppressed_links = np.zeros(num_trials, dtype=np.int64)
        crashed_nodes = np.zeros(num_trials, dtype=np.int64)
        jammed_listens = np.zeros(num_trials, dtype=np.int64)

        def saturated_now() -> np.ndarray:
            if winner_rank is None:
                return np.zeros(num_trials, dtype=bool)
            return (ranks == winner_rank).all(axis=1)

        saturated = saturated_now()
        active = ~saturated

        # A trial with no informed node can never transmit again (ranks
        # only grow through receptions), so its whole remaining schedule
        # is provably silent: charge it in one step -- every node idles
        # every round, exactly what the reference runner would simulate.
        # This makes candidate-less leader-election attempts near-free.
        silent = active & ~(ranks > NO_MESSAGE).any(axis=1)
        if silent.any():
            rounds[silent] = self._max_rounds
            if self._dynamics is None:
                idle_listens[silent] += self._max_rounds * len(self._nodes)
            else:
                # Fault-aware silent charge: nobody ever transmits, but
                # the environment still ticks round by round -- crashed
                # nodes and alive jammed listeners are charged to their
                # own counters, the rest idle, and down links accrue as
                # always.  Scalar per-round totals, shared by every
                # silent trial; the main loop below rewinds the schedule
                # cursor back to round 0 (an O(rounds) hash replay).
                num_nodes = len(self._nodes)
                idle_total = crashed_total = 0
                jammed_total = suppressed_total = 0
                for round_number in range(self._max_rounds):
                    faults = self._dynamics.round_faults(round_number)
                    jam = int((faults.jammed & faults.alive).sum())
                    crashed_total += faults.crashed_count
                    jammed_total += jam
                    idle_total += num_nodes - faults.crashed_count - jam
                    suppressed_total += faults.suppressed
                idle_listens[silent] += idle_total
                crashed_nodes[silent] += crashed_total
                jammed_listens[silent] += jammed_total
                suppressed_links[silent] += suppressed_total
            active &= ~silent

        if not active.any() or self._max_rounds == 0:
            return self._outcome(
                rounds, saturated, ranks, adopted,
                transmissions, receptions, collisions, idle_listens,
                suppressed_links, crashed_nodes, jammed_listens,
            )

        replay = self._rng == "replay"
        if replay:
            streams = DrawStreams(seeds, len(self._nodes), self._draw_block)
        else:
            streams = DecoupledStreams(seeds, len(self._nodes))

        cycle_length = self._probabilities.shape[0]
        num_nodes = len(self._nodes)
        for round_number in range(self._max_rounds):
            probability = self._probabilities[round_number % cycle_length]

            # Masking by ``active`` only matters once some trial has
            # saturated; while all are live the cheap form is identical.
            if active.all():
                informed = ranks > NO_MESSAGE
            else:
                informed = (ranks > NO_MESSAGE) & active[:, None]
            if replay:
                draws = streams.take(informed.ravel()).reshape(informed.shape)
                transmit = informed & (draws < probability[None, :])
            else:
                transmit = informed & (
                    streams.bits(round_number)
                    < self._thresholds[round_number % cycle_length]
                )

            if self._dynamics is not None:
                # Crash suppression happens *after* the draws above were
                # taken: a crashed node's stream still advances exactly
                # as in the reference runner, where the protocol draws
                # and the network drops the transmission.
                faults = self._dynamics.round_faults(round_number)
                alive = faults.alive
                transmit &= alive[None, :]
            else:
                faults = None

            unique, collided, received = self._round_reception(
                transmit, ranks, faults
            )
            # Half-duplex: a transmitter hears nothing this round, so
            # only non-transmitting nodes with a unique transmitting
            # neighbour receive (or, at >= 2, observe a collision).
            # Under faults, crashed and jammed nodes cannot receive
            # (or observe anything) either.
            not_transmitting = ~transmit
            if faults is None:
                eligible = not_transmitting
            else:
                eligible = (
                    not_transmitting & (alive & ~faults.jammed)[None, :]
                )
            receiving = unique & eligible
            received_ranks = np.where(receiving, received, NO_MESSAGE)

            improved = received_ranks > ranks
            if improved.any():
                adopted[improved] = round_number
                np.maximum(ranks, received_ranks, out=ranks)
                saturation_may_change = True
            else:
                # No rank moved: saturation cannot have changed either.
                saturation_may_change = False

            transmit_counts = transmit.sum(axis=1)
            reception_counts = receiving.sum(axis=1)
            collision_counts = (collided & eligible).sum(axis=1)
            rounds[active] += 1
            transmissions += np.where(active, transmit_counts, 0)
            receptions += np.where(active, reception_counts, 0)
            collisions += np.where(active, collision_counts, 0)
            if faults is None:
                # Every non-transmitter listens, and unique/collided/
                # silent air partition what it hears -- so idle listens
                # are the listeners the other two counters did not claim.
                idle_listens += np.where(
                    active,
                    num_nodes - transmit_counts
                    - reception_counts - collision_counts,
                    0,
                )
            else:
                # Faulty partition: transmitters + crashed + jammed
                # alive listeners + receptions + collisions + idle = n,
                # each node in exactly one bucket (crashed beats
                # transmitter beats jammed).
                jam_counts = (
                    (faults.jammed & alive)[None, :] & not_transmitting
                ).sum(axis=1)
                idle_listens += np.where(
                    active,
                    num_nodes - transmit_counts - faults.crashed_count
                    - jam_counts - reception_counts - collision_counts,
                    0,
                )
                suppressed_links += np.where(active, faults.suppressed, 0)
                crashed_nodes += np.where(active, faults.crashed_count, 0)
                jammed_listens += np.where(active, jam_counts, 0)

            if saturation_may_change:
                saturated = saturated_now()
                active &= ~saturated
                if not active.any():
                    break

        return self._outcome(
            rounds, saturated, ranks, adopted,
            transmissions, receptions, collisions, idle_listens,
            suppressed_links, crashed_nodes, jammed_listens,
        )

    def _outcome(
        self,
        rounds: np.ndarray,
        saturated: np.ndarray,
        ranks: np.ndarray,
        adopted: np.ndarray,
        transmissions: np.ndarray,
        receptions: np.ndarray,
        collisions: np.ndarray,
        idle_listens: np.ndarray,
        suppressed_links: np.ndarray,
        crashed_nodes: np.ndarray,
        jammed_listens: np.ndarray,
    ) -> BatchOutcome:
        return BatchOutcome(
            nodes=self._nodes,
            rounds=rounds,
            saturated=saturated,
            final_ranks=ranks,
            adopted_rounds=adopted,
            transmissions=transmissions,
            receptions=receptions,
            collisions=collisions,
            idle_listens=idle_listens,
            suppressed_links=suppressed_links,
            crashed_nodes=crashed_nodes,
            jammed_listens=jammed_listens,
        )


def rank_messages(messages) -> dict:
    """Return the dense rank (1-based) of each distinct message.

    Messages are ranked ascending by
    :meth:`~repro.network.messages.Message.sort_key`, so ``rank(a) >
    rank(b)`` iff ``a.beats(b)`` -- the invariant that lets the engine
    compare integer ranks instead of message objects.  Rank
    :data:`NO_MESSAGE` (0) is reserved for "knows nothing".
    """
    distinct = sorted(set(messages), key=lambda message: message.sort_key())
    return {message: index + 1 for index, message in enumerate(distinct)}
