"""The round-accurate protocol driver.

:class:`ProtocolRunner` is the only place in the package that advances
simulated time: each round it collects every node's
:meth:`~repro.network.protocol.NodeProtocol.act`, applies the collision
semantics via :meth:`~repro.network.radio.RadioNetwork.run_round`, and
reports each node's reception back through
:meth:`~repro.network.protocol.NodeProtocol.receive`.  Protocols therefore
never see the graph or each other -- exactly the information hiding the
ad-hoc model requires.

Randomness is per node: :func:`spawn_node_rngs` derives one independent
``numpy`` generator per node from a single seed via
``numpy.random.SeedSequence.spawn``, so runs are exactly reproducible and
no node's draws depend on the iteration order of another's.
"""

from __future__ import annotations

import types
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.network.graph import Graph
from repro.network.protocol import NodeProtocol
from repro.network.radio import RadioNetwork, RoundOutcome
from repro.simulation.results import RunResult, StopReason

#: A factory that builds the protocol for one node.  Called once per node
#: with ``(node_id, num_nodes, diameter, rng)`` where ``rng`` is that
#: node's private generator.
SeededProtocolFactory = Callable[[Any, int, int, np.random.Generator], NodeProtocol]

#: An observer-level stop predicate, evaluated after every round with the
#: round's outcome and the (mutable) protocol map.  Returning True ends
#: the run with :attr:`StopReason.CONDITION`.
StopPredicate = Callable[[RoundOutcome, Mapping[Any, NodeProtocol]], bool]


def spawn_node_rngs(
    graph: Graph, seed: Optional[int] = None
) -> dict[Any, np.random.Generator]:
    """Return one independent random generator per node of ``graph``.

    Generators are derived from ``numpy.random.SeedSequence(seed)`` in the
    graph's (deterministic) node insertion order, so the same seed always
    yields the same per-node streams.
    """
    seed_sequence = np.random.SeedSequence(seed)
    children = seed_sequence.spawn(graph.num_nodes)
    return {
        node: np.random.default_rng(child)
        for node, child in zip(graph.nodes(), children)
    }


def build_seeded_protocols(
    network: RadioNetwork,
    factory: SeededProtocolFactory,
    seed: Optional[int] = None,
    diameter: Optional[int] = None,
) -> dict[Any, NodeProtocol]:
    """Instantiate one protocol per node with a private seeded generator.

    Parameters
    ----------
    network:
        The network whose nodes need protocols.
    factory:
        Called as ``factory(node_id, num_nodes, diameter, rng)`` per node.
    seed:
        Seed for :func:`spawn_node_rngs`.
    diameter:
        The global parameter ``D`` handed to every protocol; computed from
        the graph when omitted (exact for small graphs, see
        :meth:`~repro.network.graph.Graph.diameter`).
    """
    graph = network.graph
    if diameter is None:
        diameter = graph.diameter()
    rngs = spawn_node_rngs(graph, seed)
    return {
        node: factory(node, graph.num_nodes, diameter, rngs[node])
        for node in graph.nodes()
    }


class ProtocolRunner:
    """Drives per-node protocols against a radio network, round by round.

    Parameters
    ----------
    network:
        The :class:`~repro.network.radio.RadioNetwork` to run on.  Its
        global round counter and metrics keep advancing across runs; the
        returned :class:`~repro.simulation.results.RunResult` carries the
        per-run metrics delta.
    protocols:
        Mapping from node to its :class:`~repro.network.protocol.NodeProtocol`.
        Every key must be a node of the network's graph; nodes without a
        protocol listen passively and receive no callbacks.
    max_rounds:
        The round budget for one :meth:`run` call.
    stop_when:
        Optional predicate evaluated after every round (see
        :data:`StopPredicate`).  This is an *observer-level* condition --
        it may inspect global state the protocols themselves cannot see,
        e.g. "every node has adopted the winning message".
    record_outcomes:
        When True, the per-round :class:`~repro.network.radio.RoundOutcome`
        records are kept and returned on the result (memory-heavy for
        long runs; off by default).
    strict:
        When True, exhausting the round budget raises
        :class:`~repro.errors.SimulationError` (listing the unfinished
        nodes) instead of returning a result.  Protocols that run a fixed
        schedule and never report completion should leave this off.
    """

    def __init__(
        self,
        network: RadioNetwork,
        protocols: Mapping[Any, NodeProtocol],
        *,
        max_rounds: int,
        stop_when: Optional[StopPredicate] = None,
        record_outcomes: bool = False,
        strict: bool = False,
    ) -> None:
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
        for node in protocols:
            if node not in network.graph:
                raise ProtocolError(
                    f"protocol supplied for unknown node {node!r}"
                )
        self._network = network
        self._protocols = dict(protocols)
        self._max_rounds = max_rounds
        self._stop_when = stop_when
        self._record_outcomes = record_outcomes
        self._strict = strict

    @classmethod
    def from_factory(
        cls,
        network: RadioNetwork,
        factory: SeededProtocolFactory,
        *,
        max_rounds: int,
        seed: Optional[int] = None,
        diameter: Optional[int] = None,
        stop_when: Optional[StopPredicate] = None,
        record_outcomes: bool = False,
        strict: bool = False,
    ) -> "ProtocolRunner":
        """Build protocols via :func:`build_seeded_protocols` and wrap them."""
        protocols = build_seeded_protocols(network, factory, seed, diameter)
        return cls(
            network,
            protocols,
            max_rounds=max_rounds,
            stop_when=stop_when,
            record_outcomes=record_outcomes,
            strict=strict,
        )

    @property
    def protocols(self) -> Mapping[Any, NodeProtocol]:
        """The protocol map being driven (a live read-only view)."""
        return types.MappingProxyType(self._protocols)

    def run(self) -> RunResult:
        """Execute rounds until a stop condition fires or the budget ends."""
        network = self._network
        start_metrics = network.metrics.copy()
        first_round: Optional[int] = None
        outcomes: list[RoundOutcome] = []
        rounds_executed = 0
        stop_reason = StopReason.BUDGET_EXHAUSTED

        if self._all_done():
            stop_reason = StopReason.ALL_DONE

        while stop_reason is StopReason.BUDGET_EXHAUSTED and rounds_executed < self._max_rounds:
            round_number = network.current_round
            actions = {
                node: protocol.act(round_number)
                for node, protocol in self._protocols.items()
            }
            outcome = network.run_round(actions)
            for node, protocol in self._protocols.items():
                protocol.receive(round_number, outcome.received[node])
            rounds_executed += 1
            if first_round is None:
                first_round = round_number
            if self._record_outcomes:
                outcomes.append(outcome)
            if self._all_done():
                stop_reason = StopReason.ALL_DONE
            elif self._stop_when is not None and self._stop_when(outcome, self._protocols):
                stop_reason = StopReason.CONDITION

        if stop_reason is StopReason.BUDGET_EXHAUSTED and self._strict:
            unfinished = sorted(
                (repr(node) for node, p in self._protocols.items() if not p.is_done()),
            )
            raise SimulationError(
                f"round budget of {self._max_rounds} exhausted after "
                f"{rounds_executed} rounds; unfinished nodes: "
                f"{', '.join(unfinished) if unfinished else '(none)'}"
            )

        return RunResult(
            stop_reason=stop_reason,
            rounds=rounds_executed,
            first_round=first_round,
            outputs={node: p.output() for node, p in self._protocols.items()},
            metrics=network.metrics.diff(start_metrics),
            outcomes=tuple(outcomes) if self._record_outcomes else None,
        )

    def _all_done(self) -> bool:
        return all(protocol.is_done() for protocol in self._protocols.values())
