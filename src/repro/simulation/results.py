"""Structured results returned by :class:`~repro.simulation.runner.ProtocolRunner`.

A run always terminates for one of three reasons -- every node locally
finished, an observer-level stop condition fired, or the round budget ran
out -- and downstream result objects (``CompeteResult`` and friends) need
to distinguish them, so the reason is an explicit enum rather than a bare
boolean.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Mapping, Optional

from repro.network.metrics import NetworkMetrics
from repro.network.radio import RoundOutcome


class StopReason(enum.Enum):
    """Why a :class:`~repro.simulation.runner.ProtocolRunner` run ended."""

    #: Every protocol reported :meth:`~repro.network.protocol.NodeProtocol.is_done`.
    ALL_DONE = "all-done"
    #: The caller-supplied ``stop_when`` predicate returned True.
    CONDITION = "condition"
    #: ``max_rounds`` rounds were executed without either of the above.
    BUDGET_EXHAUSTED = "budget-exhausted"


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Everything a :class:`~repro.simulation.runner.ProtocolRunner` run produced.

    Attributes
    ----------
    stop_reason:
        Why the run ended.
    rounds:
        Number of rounds executed in *this* run.
    first_round:
        The network's global round number of the first round of this run
        (runs sharing a network keep advancing one global counter), or
        ``None`` if the run executed zero rounds.
    outputs:
        Mapping from node to its protocol's
        :meth:`~repro.network.protocol.NodeProtocol.output`.
    metrics:
        Counters accumulated during this run only (a
        :meth:`~repro.network.metrics.NetworkMetrics.diff` against the
        pre-run snapshot).
    outcomes:
        The per-round :class:`~repro.network.radio.RoundOutcome` records,
        present only when the runner was asked to record them.
    """

    stop_reason: StopReason
    rounds: int
    first_round: Optional[int]
    outputs: Mapping[Any, Any]
    metrics: NetworkMetrics
    outcomes: Optional[tuple[RoundOutcome, ...]] = None

    @property
    def completed(self) -> bool:
        """True unless the run ran out of rounds."""
        return self.stop_reason is not StopReason.BUDGET_EXHAUSTED
