"""Sparse (CSR) adjacency kernels for the vectorized Compete engine.

The dense engine of :mod:`repro.simulation.vectorized` computes one round
as matrix products against the densified adjacency matrix -- ``O(n²)``
memory and ``O(n²)`` work per round regardless of how sparse the topology
is.  That is the right trade below a few thousand nodes (BLAS matmuls on
small dense matrices are extremely fast) and the wrong one above it: a
``16384``-node path would densify into a 1 GiB ``float32`` matrix whose
per-round products are ~10⁴ times more work than its 16383 edges justify.

This module is the ``O(n + m)`` alternative: a minimal pure-NumPy CSR
representation (``indptr``/``indices``, no SciPy dependency) plus the one
kernel the Compete dynamics need per round -- for every listener, the
*number* of transmitting neighbours (the collision rule: receive iff
exactly one) and the *sum* of their ranks (which, at count one, is the
unique transmitter's rank).  Both are integer segment sums over the CSR
structure, batched over the trial axis, and therefore exact: the sparse
engine agrees with the dense engine and the reference runner bit for bit
(``tests/test_engine_equivalence.py`` pins all three pairwise).

:func:`select_engine` is the density heuristic behind ``engine="auto"``:
dense for small graphs, sparse for large sparse ones, dense again for
large graphs so dense that the matmul wins anyway.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph

#: The two concrete kernel implementations an engine can run on.
ENGINE_KINDS = ("dense", "sparse")

#: At or below this node count the dense engine is always selected:
#: the whole matrix fits in cache-friendly memory and BLAS beats the
#: gather/segment-sum kernels.
DENSE_NODE_CUTOFF = 1024

#: Above the node cutoff, the sparse engine is selected while the edge
#: density ``2m / (n(n-1))`` stays below this threshold.  At 1/8 density
#: the CSR gathers touch a quarter of the dense matrix's entries (two
#: int64 reads per edge vs one float32 per pair), which is roughly where
#: the matmul catches back up.
SPARSE_DENSITY_CUTOFF = 0.125


def edge_density(num_nodes: int, num_edges: int) -> float:
    """The fraction ``2m / (n(n-1))`` of possible edges that are present.

    Defined as 1.0 for graphs with fewer than two nodes (they are as
    dense as they can be).

    >>> edge_density(4, 3)  # path on 4 nodes
    0.5
    >>> edge_density(1, 0)
    1.0
    """
    if num_nodes < 0 or num_edges < 0:
        raise ConfigurationError(
            f"num_nodes and num_edges must be >= 0, got "
            f"({num_nodes}, {num_edges})"
        )
    if num_nodes < 2:
        return 1.0
    return 2.0 * num_edges / (num_nodes * (num_nodes - 1))


def sparse_crossover_edges(num_nodes: int) -> int:
    """The edge count at which ``"auto"`` switches back to dense.

    For a graph above :data:`DENSE_NODE_CUTOFF` nodes,
    :func:`select_engine` picks sparse at strictly fewer than this many
    edges and dense at this many or more (the density then reaches
    :data:`SPARSE_DENSITY_CUTOFF`).  This is the *single* canonical
    derivation of the dense/sparse crossover -- tests pin the boundary
    through it instead of re-deriving the density algebra ad hoc.

    >>> sparse_crossover_edges(4096)          # 1/8 of 4096*4095/2
    1048320
    >>> select_engine(4096, sparse_crossover_edges(4096) - 1)
    'sparse'
    >>> select_engine(4096, sparse_crossover_edges(4096))
    'dense'
    """
    if num_nodes < 2:
        raise ConfigurationError(
            f"num_nodes must be >= 2, got {num_nodes}"
        )
    pairs = num_nodes * (num_nodes - 1) / 2.0
    return math.ceil(SPARSE_DENSITY_CUTOFF * pairs)


def select_engine(num_nodes: int, num_edges: int) -> str:
    """The edge-density heuristic behind ``engine="auto"``.

    >>> select_engine(256, 255)        # small: dense regardless of shape
    'dense'
    >>> select_engine(16384, 16383)    # large path: sparse
    'sparse'
    >>> select_engine(4096, 4096 * 2048 // 2)  # large near-complete: dense
    'dense'
    """
    if num_nodes <= DENSE_NODE_CUTOFF:
        return "dense"
    if edge_density(num_nodes, num_edges) < SPARSE_DENSITY_CUTOFF:
        return "sparse"
    return "dense"


def resolve_engine(engine: str, num_nodes: int, num_edges: int) -> str:
    """Resolve an engine selector to the concrete kernel that will run.

    ``"auto"`` applies :func:`select_engine`; a concrete kind passes
    through.  This is the single resolution rule shared by the engine
    constructor, :meth:`repro.core.compete.Compete.selected_engine` and
    the benchmark artifact's ``engine.selected`` field.

    >>> resolve_engine("dense", 16384, 16383)
    'dense'
    >>> resolve_engine("auto", 16384, 16383)
    'sparse'
    """
    if engine == "auto":
        return select_engine(num_nodes, num_edges)
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            f"engine must be 'auto' or one of {ENGINE_KINDS}, got {engine!r}"
        )
    return engine


class CSRAdjacency:
    """A symmetric boolean adjacency structure in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1`` with ``indptr[0] == 0``,
        non-decreasing; row ``i``'s entries live at
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` column indices in ``[0, num_nodes)``.  Rows may be
        empty (isolated nodes); entries are one per directed edge.

    The two arrays are exactly what
    :meth:`repro.network.graph.Graph.adjacency_csr` returns, so
    :meth:`from_graph` is the usual constructor.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1 or indptr[0] != 0:
            raise ConfigurationError(
                "indptr must be a 1-D array starting at 0"
            )
        if (np.diff(indptr) < 0).any():
            raise ConfigurationError("indptr must be non-decreasing")
        if indices.ndim != 1 or indices.size != int(indptr[-1]):
            raise ConfigurationError(
                f"indices must be 1-D with indptr[-1] = {int(indptr[-1])} "
                f"entries, got shape {indices.shape}"
            )
        num_nodes = indptr.size - 1
        if indices.size and (
            indices.min() < 0 or indices.max() >= num_nodes
        ):
            raise ConfigurationError(
                f"indices must lie in [0, {num_nodes})"
            )
        self._indptr = indptr
        self._indices = indices
        # np.add.reduceat mishandles empty segments (it returns the
        # element *at* the start instead of 0), so the segment-sum kernel
        # reduces over the non-empty rows only and scatters the results
        # back.  Consecutive non-empty starts span exactly one row's
        # entries because the rows between them contribute none.
        lengths = np.diff(indptr)
        self._lengths = lengths
        self._nonempty_rows = np.nonzero(lengths)[0]
        self._nonempty_starts = indptr[:-1][self._nonempty_rows]

    @classmethod
    def from_graph(
        cls, graph: Graph, order: Optional[list] = None
    ) -> tuple["CSRAdjacency", list]:
        """Build from a graph; returns ``(csr, nodes)`` like the dense twin."""
        indptr, indices, nodes = graph.adjacency_csr(order=order)
        return cls(indptr, indices), nodes

    @property
    def num_nodes(self) -> int:
        return self._indptr.size - 1

    @property
    def num_entries(self) -> int:
        """Stored entries -- one per directed edge, i.e. ``2m``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    def to_dense(self) -> np.ndarray:
        """The equivalent dense boolean matrix (for tests and round-trips)."""
        n = self.num_nodes
        matrix = np.zeros((n, n), dtype=bool)
        rows = np.repeat(np.arange(n), np.diff(self._indptr))
        matrix[rows, self._indices] = True
        return matrix

    def counts_and_rank_sums(
        self,
        transmit: np.ndarray,
        ranks: np.ndarray,
        entry_mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-listener transmitter counts and transmitted-rank sums.

        Parameters
        ----------
        transmit:
            Boolean array of shape ``(trials, n)``: who transmits this
            round.
        ranks:
            ``int64`` array of the same shape: each node's current rank.
        entry_mask:
            Optional boolean array of shape ``(num_entries,)``: which
            directed CSR entries currently carry signal.  ``False``
            entries (links held down by ``repro.dynamics`` edge churn
            this round) contribute neither counts nor rank sums.  The
            default (``None``) is the static-topology fast path and is
            byte-identical to the pre-dynamics kernel.

        Returns ``(counts, sums)``, both ``int64`` of shape
        ``(trials, n)``: ``counts[t, j]`` is how many neighbours of ``j``
        transmit in trial ``t`` and ``sums[t, j]`` the sum of their
        ranks.  Where ``counts == 1``, ``sums`` *is* the unique
        transmitter's rank -- the only place the engine reads it.  All
        arithmetic is integer, so the results are exact (ranks are
        ``< n`` and sums ``< n²``, far inside int64).
        """
        gathered = transmit[:, self._indices].astype(np.int64)
        weighted = (ranks * transmit)[:, self._indices]
        if entry_mask is not None:
            gathered *= entry_mask[None, :]
            weighted *= entry_mask[None, :]
        return self._segment_sum(gathered), self._segment_sum(weighted)

    def transmitter_counts_and_rank_sums(
        self,
        transmit: np.ndarray,
        ranks: np.ndarray,
        entry_mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Same contract as :meth:`counts_and_rank_sums`, transmitter-driven.

        :meth:`counts_and_rank_sums` gathers the *full* edge structure
        every round (``O(trials * 2m)`` work even when almost nobody
        transmits).  Under the Decay schedules only ``~n / decay_steps``
        nodes transmit in an average round, so this kernel walks the
        problem from the other side: gather only the transmitters' CSR
        rows and scatter-add their contributions onto the listeners with
        ``np.bincount``.  Per round that is ``O(T + sum of transmitter
        degrees)`` gather work -- typically 20-30x less data touched.

        The results are bit-for-bit identical to
        :meth:`counts_and_rank_sums` (``tests/test_sparse.py`` pins
        this): counts are exact small integers, and the weighted
        bincount accumulates rank sums in float64, which is exact
        because every per-listener sum is at most ``max_degree * n <
        2**53`` for any graph this package can represent.

        This is the reception kernel of the ``rng="decoupled"`` fast
        mode; the replay mode keeps the original kernel so the
        long-pinned reference-parity path stays byte-identical.
        """
        trials, n = transmit.shape
        flat_index = np.nonzero(transmit.ravel())[0]
        if flat_index.size == 0:
            zeros = np.zeros((trials, n), dtype=np.int64)
            return zeros, zeros.copy()
        transmitters = flat_index % n
        lengths = self._lengths[transmitters]
        total = int(lengths.sum())
        if total == 0:
            zeros = np.zeros((trials, n), dtype=np.int64)
            return zeros, zeros.copy()
        # Expand each transmitter's CSR slice [start, start+length) into
        # one flat position vector: repeat the slice starts (shifted by
        # the running cumulative offset) and add a global arange.  The
        # three per-edge streams -- slice base, trial offset, rank --
        # ride in one stacked repeat call.
        starts = self._indptr[:-1][transmitters]
        offsets = np.cumsum(lengths) - lengths
        per_edge = np.empty((3, flat_index.size), dtype=np.int64)
        np.subtract(starts, offsets, out=per_edge[0])
        np.multiply(flat_index // n, n, out=per_edge[1])
        per_edge[2] = ranks.ravel()[flat_index]
        expanded = np.repeat(per_edge, lengths, axis=1)
        positions = expanded[0] + np.arange(total)
        listeners = self._indices[positions]
        flat = expanded[1] + listeners
        weights = expanded[2]
        if entry_mask is not None:
            # Drop the contributions riding over down links before the
            # scatter-add; the surviving entries are unchanged, so the
            # masked result equals the gather kernel's bit for bit.
            up = entry_mask[positions]
            flat = flat[up]
            weights = weights[up]
        counts = np.bincount(flat, minlength=trials * n).astype(
            np.int64, copy=False
        ).reshape(trials, n)
        sums = np.bincount(
            flat, weights=weights.astype(np.float64), minlength=trials * n
        ).astype(np.int64).reshape(trials, n)
        return counts, sums

    def _segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum ``values`` (shape ``(trials, num_entries)``) per CSR row."""
        result = np.zeros((values.shape[0], self.num_nodes), dtype=np.int64)
        if self._nonempty_starts.size:
            result[:, self._nonempty_rows] = np.add.reduceat(
                values, self._nonempty_starts, axis=1
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRAdjacency(n={self.num_nodes}, entries={self.num_entries})"
        )
