"""Simulation harness for radio-network protocols: two equivalent backends.

* :mod:`repro.simulation.runner` -- :class:`ProtocolRunner`, the
  *reference* backend: it advances per-node
  :class:`~repro.network.protocol.NodeProtocol` objects one synchronous
  round at a time against
  :meth:`~repro.network.radio.RadioNetwork.run_round`, with per-node
  seedable randomness, a round budget and pluggable stop conditions.
  This is the auditable, information-hiding-faithful implementation of
  the model; every semantic question is settled here.
* :mod:`repro.simulation.vectorized` -- the *vectorized* backend:
  :class:`VectorizedCompeteEngine` computes whole rounds of the Compete
  dynamics (and whole batches of seeded trials) as NumPy operations.
  It exists for the benchmark sweeps in :mod:`repro.experiments`, where
  it is typically one to two orders of magnitude faster per trial, and
  runs one of two bit-for-bit equivalent kernels: the *dense*
  adjacency-matrix path or the *sparse* CSR path of
  :mod:`repro.simulation.sparse`, which drops per-round work and memory
  from ``O(n²)`` to ``O(n + m)`` and opens the ``n >= 10^4`` scenarios
  (``engine="auto"`` picks by edge density).
* :mod:`repro.simulation.results` -- the structured
  :class:`RunResult` / :class:`StopReason` types every run returns.

Equivalence guarantee
---------------------
The vectorized engine is a drop-in backend, not an approximation: for the
same graph, candidate set, transmission schedule and seed it reproduces
the reference runner **round for round** -- identical transmission
decisions, receptions, adoption rounds, stop round and
:class:`~repro.network.metrics.NetworkMetrics` counters.  It achieves
this by replaying the reference's per-node random streams (one
``SeedSequence(seed).spawn(n)`` child per node, one uniform draw per
informed round) in batched form.  The guarantee holds for every Compete
strategy: both backends consume the same per-node
:class:`~repro.schedules.transmission.TransmissionSchedule` (the engine
as a dense ``(cycle, n)`` probability matrix, the runner as per-round
lookups), so the skeleton and clustered inner loops are equally covered.
The guarantee also holds per *engine*: both vectorized kernels evaluate
the identical collision rule on the same replayed draws.  It is pinned
by the three-way (reference / dense / sparse) equivalence harness in
``tests/test_engine_equivalence.py`` and re-checked on every benchmark
run that includes the reference backend.
"""

from repro.simulation.results import RunResult, StopReason
from repro.simulation.runner import (
    ProtocolRunner,
    SeededProtocolFactory,
    build_seeded_protocols,
    spawn_node_rngs,
)
from repro.simulation.sparse import CSRAdjacency, edge_density, select_engine
from repro.simulation.vectorized import (
    ENGINES,
    BatchOutcome,
    DrawStreams,
    VectorizedCompeteEngine,
    rank_messages,
)

__all__ = [
    "RunResult",
    "StopReason",
    "ProtocolRunner",
    "SeededProtocolFactory",
    "build_seeded_protocols",
    "spawn_node_rngs",
    "CSRAdjacency",
    "edge_density",
    "select_engine",
    "ENGINES",
    "BatchOutcome",
    "DrawStreams",
    "VectorizedCompeteEngine",
    "rank_messages",
]
