"""Round-accurate simulation harness for radio-network protocols.

* :mod:`repro.simulation.runner` -- :class:`ProtocolRunner`, the driver
  that advances per-node :class:`~repro.network.protocol.NodeProtocol`
  objects one synchronous round at a time against
  :meth:`~repro.network.radio.RadioNetwork.run_round`, with per-node
  seedable randomness, a round budget and pluggable stop conditions.
* :mod:`repro.simulation.results` -- the structured
  :class:`RunResult` / :class:`StopReason` types every run returns.
"""

from repro.simulation.results import RunResult, StopReason
from repro.simulation.runner import (
    ProtocolRunner,
    SeededProtocolFactory,
    build_seeded_protocols,
    spawn_node_rngs,
)

__all__ = [
    "RunResult",
    "StopReason",
    "ProtocolRunner",
    "SeededProtocolFactory",
    "build_seeded_protocols",
    "spawn_node_rngs",
]
