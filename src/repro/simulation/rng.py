"""Counter-based draw streams: the ``rng="decoupled"`` fast mode.

The vectorized engine's default randomness policy (``rng="replay"``,
:class:`repro.simulation.vectorized.DrawStreams`) replays the reference
runner's per-(trial, node) ``SeedSequence`` streams so that every backend
agrees round for round.  That guarantee costs real time: spawning
``trials * n`` generator objects and refilling their pre-draw blocks is
40% of the wall clock at ``n = 16384`` -- and the streams are inherently
*stateful*, so they cannot be sharded, replayed out of order, or skipped
past silent rounds.

This module is the stateless alternative.  A draw is a pure hash of its
coordinates::

    u(trial, round, node) = bits_to_unit(mix64(mix64(base(trial)
                                         + round_key(round)) + node_key(node)))

where :func:`mix64` is the splitmix64 finalizer (a bijection on 64-bit
words with full avalanche) and the keys are Weyl-sequence increments of
the golden-ratio constant.  No state advances between rounds: any round
of any trial can be evaluated independently, in any process, in one
vectorized pass over the node axis.  The price is the *contract*: a
decoupled run is seed-reproducible against itself (same seed, same
draws, forever -- pinned by golden values in ``tests/test_rng.py``) but
does **not** reproduce the reference runner's draws, so replay-vs-
decoupled agreement is *distributional*, enforced statistically by
``tests/test_rng_decoupled.py`` rather than round-exactly.

Draw quality: splitmix64 passes BigCrush as a sequential generator; used
here as a counter-mode hash, neighbouring counters are separated by one
full avalanche mix, and ``tests/test_rng.py`` smoke-checks uniformity
(chi-squared) and cross-key independence.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Randomness policies of the vectorized engine.  ``"replay"`` replays
#: the reference runner's per-node streams (round-exact backend parity);
#: ``"decoupled"`` evaluates the counter-based hash of this module
#: (distributional parity, statistically enforced).
RNG_MODES = ("replay", "decoupled")

#: 2**64 wrap mask for the pure-Python key arithmetic below.  (NumPy
#: *array* uint64 ops wrap silently; Python-int scalar arithmetic is kept
#: exact and masked, avoiding NumPy's scalar-overflow warnings.)
_MASK64 = (1 << 64) - 1

#: The golden-ratio Weyl increment of splitmix64: multiplying a counter
#: by an odd constant with good bit dispersion keeps successive keys far
#: apart in Hamming distance before the finalizer mixes them.
GOLDEN_GAMMA = 0x9E3779B97F4A7C15

#: Salt folded into the trial seed so that the trial-key sequence is not
#: the plain integers (seed 0 must not hash the raw zero word).
_SEED_SALT = 0x5851F42D4C957F2D


def _mix64_int(value: int) -> int:
    """The splitmix64 finalizer on one Python integer (exact, masked)."""
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def mix64(words: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over a ``uint64`` array.

    A bijection on 64-bit words: every input bit affects every output
    bit (full avalanche), which is what makes nearby counters hash to
    independent-looking draws.  Overflow is the point -- all arithmetic
    is modulo 2**64.
    """
    words = np.asarray(words, dtype=np.uint64)
    with np.errstate(over="ignore"):
        words = (words ^ (words >> np.uint64(30))) * np.uint64(
            0xBF58476D1CE4E5B9
        )
        words = (words ^ (words >> np.uint64(27))) * np.uint64(
            0x94D049BB133111EB
        )
        return words ^ (words >> np.uint64(31))


def bits_to_unit(bits: np.ndarray) -> np.ndarray:
    """Map ``uint64`` words to ``float64`` uniforms in ``[0, 1)``.

    Uses the top 53 bits (the float64 mantissa width), the standard
    construction: every representable value is hit with equal
    probability and the conversion is exact.
    """
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


class DecoupledStreams:
    """Counter-based per-(trial, round, node) uniforms for the engine.

    Drop-in alternative to
    :class:`~repro.simulation.vectorized.DrawStreams` under
    ``rng="decoupled"``: :meth:`uniforms` returns the full
    ``(trials, n)`` draw matrix of any round as a pure function of
    ``(seeds, round, node)`` -- no state advances, so the engine never
    tracks which nodes consumed a draw, and any process computing the
    same coordinates gets the same values.

    Parameters
    ----------
    seeds:
        One seed per trial, with the reference runner's semantics:
        an integer pins the trial's draws forever; ``None`` takes fresh
        OS entropy (the trial is then not reproducible, exactly like
        passing ``seed=None`` to the reference runner).
    num_nodes:
        Width of the node axis; node ``i`` (engine order) uses node key
        ``(i + 1) * GOLDEN_GAMMA``.
    """

    def __init__(
        self, seeds: Sequence[Optional[int]], num_nodes: int
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}"
            )
        bases = []
        for seed in seeds:
            if seed is None:
                seed = int(
                    np.random.SeedSequence().generate_state(1, np.uint64)[0]
                )
            bases.append(_mix64_int(int(seed) ^ _SEED_SALT))
        self._bases = np.array(bases, dtype=np.uint64).reshape(-1, 1)
        self._node_keys = (
            np.arange(1, num_nodes + 1, dtype=np.uint64)
            * np.uint64(GOLDEN_GAMMA)
        ).reshape(1, -1)
        self._num_nodes = num_nodes
        # Reusable output/scratch buffers for :meth:`bits` -- the engine
        # calls it once per round, and recycling the two (trials, n)
        # arrays keeps the hot loop allocation-free.
        self._buffer: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None

    @property
    def num_trials(self) -> int:
        return int(self._bases.shape[0])

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def bits(self, round_number: int) -> np.ndarray:
        """The raw ``uint64`` hash words of one round, ``(trials, n)``.

        Stateless: calling this for any round, any number of times, in
        any order, always returns the same values for the same seeds.
        The returned array is an internal buffer reused by the next
        call -- copy it if you need it to survive.
        """
        if round_number < 0:
            raise ConfigurationError(
                f"round_number must be >= 0, got {round_number}"
            )
        round_key = _mix64_int((round_number + 1) * GOLDEN_GAMMA)
        if self._buffer is None:
            shape = (self.num_trials, self._num_nodes)
            self._buffer = np.empty(shape, dtype=np.uint64)
            self._scratch = np.empty(shape, dtype=np.uint64)
        out, tmp = self._buffer, self._scratch
        with np.errstate(over="ignore"):
            round_states = mix64(self._bases + np.uint64(round_key))
            # The splitmix64 finalizer of :func:`mix64`, unrolled onto
            # the reusable buffers (same values, zero allocations).
            np.add(round_states, self._node_keys, out=out)
            np.right_shift(out, np.uint64(30), out=tmp)
            out ^= tmp
            out *= np.uint64(0xBF58476D1CE4E5B9)
            np.right_shift(out, np.uint64(27), out=tmp)
            out ^= tmp
            out *= np.uint64(0x94D049BB133111EB)
            np.right_shift(out, np.uint64(31), out=tmp)
            out ^= tmp
        return out

    def mantissas(self, round_number: int) -> np.ndarray:
        """One round's draws as 53-bit integers (``uniforms * 2**53``).

        The engine's hot loop compares these against pre-scaled integer
        thresholds ``ceil(p * 2**53)`` -- exactly equivalent to
        ``uniforms(round) < p`` (for ``m`` an integer, ``m * 2**-53 < p``
        iff ``m < ceil(p * 2**53)``) without converting the whole draw
        matrix to float every round.
        """
        return self.bits(round_number) >> np.uint64(11)

    def uniforms(self, round_number: int) -> np.ndarray:
        """The ``(trials, num_nodes)`` uniform draws of one round."""
        return bits_to_unit(self.bits(round_number))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecoupledStreams(trials={self.num_trials}, "
            f"n={self._num_nodes})"
        )
