"""Transmission primitives shared by the paper's algorithms.

* :mod:`repro.schedules.decay` -- the Decay protocol of Bar-Yehuda,
  Goldreich and Itai (Algorithm 5 of the paper) and its single-round
  success guarantee (Lemma 3.1).  The step-level decision rule exported
  here is embedded by the :class:`~repro.core.compete.Compete` primitive.

Future PRs will add the clustering-based schedules of the paper's
polylog-optimised algorithms (the Lemma 2.3 cost-charged cluster
schedule); see ``DESIGN.md`` for the reproduced-vs-planned breakdown.
"""

from repro.schedules.decay import (
    DECAY_DEFAULT_CONSTANT,
    decay_round_length,
    decay_transmit_step,
    DecayTransmitter,
    simulate_decay_round,
    decay_success_probability_lower_bound,
)

__all__ = [
    "DECAY_DEFAULT_CONSTANT",
    "decay_round_length",
    "decay_transmit_step",
    "DecayTransmitter",
    "simulate_decay_round",
    "decay_success_probability_lower_bound",
]
