"""Transmission primitives and intra-cluster schedules.

* :mod:`repro.schedules.decay` -- the Decay protocol of Bar-Yehuda,
  Goldreich and Itai (Algorithm 5 of the paper) and its single-round
  success guarantee (Lemma 3.1).
* :mod:`repro.schedules.bfs_schedule` -- a round-accurate intra-cluster
  broadcast/gather schedule built from BFS layers and Decay, which runs
  on the radio simulator.
* :mod:`repro.schedules.cluster_schedule` -- the cost-charged schedule
  object implementing the Lemma 2.3 contract (delivery within distance
  ``ℓ`` of the cluster centre at a cost of ``ℓ + O(polylog n)`` rounds),
  used by the cluster-granular execution mode of ``Compete``.
"""

from repro.schedules.decay import (
    DECAY_DEFAULT_CONSTANT,
    decay_round_length,
    decay_transmit_step,
    DecayTransmitter,
    simulate_decay_round,
    decay_success_probability_lower_bound,
)
from repro.schedules.bfs_schedule import BfsClusterSchedule, ScheduleDeliveryReport
from repro.schedules.cluster_schedule import ClusterSchedule, ScheduleCostModel

__all__ = [
    "DECAY_DEFAULT_CONSTANT",
    "decay_round_length",
    "decay_transmit_step",
    "DecayTransmitter",
    "simulate_decay_round",
    "decay_success_probability_lower_bound",
    "BfsClusterSchedule",
    "ScheduleDeliveryReport",
    "ClusterSchedule",
    "ScheduleCostModel",
]
