"""Transmission primitives shared by the paper's algorithms.

* :mod:`repro.schedules.decay` -- the Decay protocol of Bar-Yehuda,
  Goldreich and Itai (Algorithm 5 of the paper) and its single-round
  success guarantee (Lemma 3.1).  The step-level decision rule exported
  here is embedded by the :class:`~repro.core.compete.Compete` primitive.
* :mod:`repro.schedules.transmission` -- per-node periodic transmission
  schedules (:class:`TransmissionSchedule`), the contract both Compete
  strategies compile to and both execution backends consume; includes
  the uniform skeleton Decay cycle.
* :mod:`repro.schedules.cluster` -- the Lemma 2.3 cost-charged cluster
  schedule: per-node Decay cycles priced by cluster contention bounds
  instead of by ``n`` (built over a
  :class:`~repro.core.clustering.ClusterDecomposition`).
"""

from repro.schedules.decay import (
    DECAY_DEFAULT_CONSTANT,
    decay_round_length,
    decay_transmit_step,
    DecayTransmitter,
    simulate_decay_round,
    decay_success_probability_lower_bound,
)
from repro.schedules.transmission import (
    MAX_CYCLE_LENGTH,
    TransmissionSchedule,
    decay_probabilities,
    next_power_of_two,
    uniform_decay_schedule,
)
from repro.schedules.cluster import charged_cycle_steps, cluster_schedule

__all__ = [
    "DECAY_DEFAULT_CONSTANT",
    "decay_round_length",
    "decay_transmit_step",
    "DecayTransmitter",
    "simulate_decay_round",
    "decay_success_probability_lower_bound",
    "MAX_CYCLE_LENGTH",
    "TransmissionSchedule",
    "decay_probabilities",
    "next_power_of_two",
    "uniform_decay_schedule",
    "charged_cycle_steps",
    "cluster_schedule",
]
