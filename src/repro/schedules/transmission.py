"""Per-node periodic transmission schedules.

Every Compete strategy ultimately reduces to the same contract: each
node, while it holds a message, transmits in round ``r`` with a
probability drawn from a short periodic sequence private to that node.
The skeleton strategy gives every node the identical
``(2^-1, ..., 2^-⌈log2 n⌉)`` Decay cycle; the clustered strategy gives
each node a cycle whose length is charged to its cluster's contention
bound instead of to ``n``.  :class:`TransmissionSchedule` is that
contract as a value object, consumed identically by both execution
backends:

* the reference :class:`~repro.core.compete.CompeteProtocol` asks for
  one node's probability in one round
  (:meth:`TransmissionSchedule.probability`), and
* the vectorized engine materialises the whole schedule as a
  ``(cycle_length, n)`` matrix once
  (:meth:`TransmissionSchedule.probability_matrix`) and indexes rows by
  ``round % cycle_length``.

Because both backends read the *same* per-node probability for the same
round and consume exactly one uniform draw per informed node per round,
round-exact backend agreement is preserved for every schedule this class
can express -- the strategy axis never weakens the equivalence
guarantee.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

#: Safety cap on the schedule cycle length (the lcm of all per-node
#: periods).  The built-in strategies produce uniform or power-of-two
#: periods whose lcm equals the maximum period; the cap catches a
#: pathological mix of coprime periods before it materialises a huge
#: probability matrix.
MAX_CYCLE_LENGTH = 1 << 16


def decay_probabilities(num_steps: int) -> tuple[float, ...]:
    """The classical Decay cycle ``(2^-1, ..., 2^-num_steps)``.

    >>> decay_probabilities(3)
    (0.5, 0.25, 0.125)
    """
    if num_steps < 1:
        raise ConfigurationError(f"num_steps must be >= 1, got {num_steps}")
    return tuple(2.0 ** (-step) for step in range(1, num_steps + 1))


def next_power_of_two(value: int) -> int:
    """The smallest power of two ``>= value`` (``value`` must be >= 1).

    Power-of-two cycle lengths *nest*: whenever a node with a longer
    cycle is at step ``s`` within the first half of its cycle, every node
    whose (shorter, dividing) cycle contains step ``s`` is at exactly the
    same step.  The clustered schedule relies on this to keep contenders
    with heterogeneous cycle lengths aligned at the steps the Lemma 3.1
    argument needs.

    >>> [next_power_of_two(k) for k in (1, 2, 3, 5, 8, 9)]
    [1, 2, 4, 8, 8, 16]
    """
    if value < 1:
        raise ConfigurationError(f"value must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


class TransmissionSchedule:
    """Immutable per-node periodic transmission probabilities.

    Parameters
    ----------
    node_probabilities:
        Mapping from node to its probability cycle (a non-empty sequence
        of values in ``(0, 1]``).  Node ``v`` transmits in round ``r``
        (while informed) with probability ``cycle_v[r % len(cycle_v)]``.
    name:
        Label of the strategy that built the schedule (recorded for
        diagnostics).
    """

    def __init__(
        self,
        node_probabilities: Mapping[object, Sequence[float]],
        name: str = "",
    ) -> None:
        if not node_probabilities:
            raise ConfigurationError(
                "node_probabilities must cover at least one node"
            )
        cycles: dict[object, tuple[float, ...]] = {}
        cycle_length = 1
        for node, probabilities in node_probabilities.items():
            cycle = tuple(float(p) for p in probabilities)
            if not cycle:
                raise ConfigurationError(
                    f"node {node!r} has an empty probability cycle"
                )
            for probability in cycle:
                if not 0.0 < probability <= 1.0:
                    raise ConfigurationError(
                        f"node {node!r} has transmission probability "
                        f"{probability}, outside (0, 1]"
                    )
            cycles[node] = cycle
            cycle_length = math.lcm(cycle_length, len(cycle))
            if cycle_length > MAX_CYCLE_LENGTH:
                raise ConfigurationError(
                    f"combined cycle length exceeds {MAX_CYCLE_LENGTH}; "
                    "use nesting (power-of-two) period lengths"
                )
        self._cycles = cycles
        self._cycle_length = cycle_length
        self._name = name

    @property
    def name(self) -> str:
        """Label of the strategy that built the schedule."""
        return self._name

    @property
    def cycle_length(self) -> int:
        """Rounds after which every node's cycle repeats (lcm of periods)."""
        return self._cycle_length

    @property
    def nodes(self) -> tuple:
        """The nodes the schedule covers, in mapping order."""
        return tuple(self._cycles)

    def period(self, node) -> int:
        """Length of ``node``'s probability cycle."""
        return len(self._probabilities_of(node))

    def max_period(self) -> int:
        """The longest per-node cycle in the schedule."""
        return max(len(cycle) for cycle in self._cycles.values())

    def probabilities(self, node) -> tuple[float, ...]:
        """``node``'s full probability cycle."""
        return self._probabilities_of(node)

    def probability(self, node, round_number: int) -> float:
        """``node``'s transmission probability in global ``round_number``."""
        cycle = self._probabilities_of(node)
        return cycle[round_number % len(cycle)]

    def _probabilities_of(self, node) -> tuple[float, ...]:
        try:
            return self._cycles[node]
        except KeyError:
            raise ConfigurationError(
                f"node {node!r} is not covered by this schedule"
            ) from None

    def probability_matrix(self, order: Iterable):
        """The schedule as a dense ``(cycle_length, n)`` float64 matrix.

        ``matrix[r % cycle_length, i]`` is node ``order[i]``'s
        transmission probability in round ``r`` -- the layout the
        vectorized engine indexes one row per round.  Every node of
        ``order`` must be covered by the schedule.
        """
        import numpy as np

        nodes = list(order)
        matrix = np.empty((self._cycle_length, len(nodes)), dtype=np.float64)
        for column, node in enumerate(nodes):
            cycle = self._probabilities_of(node)
            for row in range(self._cycle_length):
                matrix[row, column] = cycle[row % len(cycle)]
        return matrix

    def __eq__(self, other) -> bool:
        if not isinstance(other, TransmissionSchedule):
            return NotImplemented
        return self._cycles == other._cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransmissionSchedule(name={self._name!r}, "
            f"nodes={len(self._cycles)}, cycle={self._cycle_length})"
        )


def uniform_decay_schedule(
    nodes: Iterable, decay_steps: int, name: str = "skeleton"
) -> TransmissionSchedule:
    """The skeleton schedule: every node runs the same global Decay cycle.

    >>> schedule = uniform_decay_schedule([0, 1], 2)
    >>> schedule.probability(0, 0), schedule.probability(1, 3)
    (0.5, 0.25)
    """
    cycle = decay_probabilities(decay_steps)
    return TransmissionSchedule(
        {node: cycle for node in nodes}, name=name
    )
