"""The Decay transmission primitive (Algorithm 5, Lemma 3.1).

Decay, introduced by Bar-Yehuda, Goldreich and Itai (1992), is the basic
contention-resolution tool of randomized radio-network algorithms.  One
*round of Decay* at a participating node ``v`` consists of ``⌈log2 n⌉``
time steps; in step ``i`` (1-based) the node transmits its message with
probability ``2^-i`` and stays silent otherwise.

Lemma 3.1 of the paper (quoting [3]): after a single round of Decay, a
listening node with at least one participating neighbour receives a
message with constant probability.  The intuition is that some step has a
transmission probability within a factor two of ``1/k`` where ``k`` is the
number of participating neighbours, and at that step exactly one of the
``k`` transmits with constant probability.

This module provides the step-level decision rule (shared by every
protocol that embeds Decay), a convenience simulator used by the Lemma 3.1
regression tests, and the analytic lower bound the tests compare against.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.messages import Message
from repro.network.protocol import Action
from repro.network.radio import RadioNetwork

#: The constant-probability guarantee of Lemma 3.1 is usually quoted with
#: success probability at least 1/(2e); we expose it for the analytic
#: comparison in the Lemma 3.1 regression tests (``tests/test_compete.py``).
DECAY_DEFAULT_CONSTANT = 1.0 / (2.0 * math.e)


def decay_round_length(num_nodes: int) -> int:
    """Number of time steps in one round of Decay, ``⌈log2 n⌉`` (at least 1)."""
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
    return max(1, math.ceil(math.log2(max(num_nodes, 2))))


def decay_transmit_step(step_index: int, rng: np.random.Generator) -> bool:
    """Return True if a participant transmits in the given Decay step.

    ``step_index`` is 1-based; the transmission probability is
    ``2^-step_index`` as in Algorithm 5.
    """
    if step_index < 1:
        raise ConfigurationError(f"step_index must be >= 1, got {step_index}")
    return bool(rng.random() < 2.0 ** (-step_index))


@dataclasses.dataclass
class DecayTransmitter:
    """Per-node helper that tracks position within repeated Decay rounds.

    Protocols embed one of these per node: each call to :meth:`decide`
    advances one time step and reports whether to transmit.  After
    ``round_length`` steps the pattern restarts (a fresh round of Decay).

    Attributes
    ----------
    round_length:
        Number of steps per Decay round (``⌈log2 n⌉``).
    rng:
        The node's private random generator.
    """

    round_length: int
    rng: np.random.Generator
    _step: int = dataclasses.field(default=0, init=False)

    def decide(self) -> bool:
        """Advance one time step and return whether to transmit."""
        step_in_round = (self._step % self.round_length) + 1
        self._step += 1
        return decay_transmit_step(step_in_round, self.rng)

    @property
    def steps_elapsed(self) -> int:
        """Total number of time steps consumed so far."""
        return self._step

    def reset(self) -> None:
        """Restart the Decay pattern from step 1."""
        self._step = 0


def simulate_decay_round(
    network: RadioNetwork,
    participants: Mapping[Any, Message],
    rng: np.random.Generator,
    listeners: Optional[Iterable[Any]] = None,
) -> dict[Any, Message]:
    """Simulate one full round of Decay on the radio network.

    Parameters
    ----------
    network:
        The radio network to run on.  Its round counter and metrics
        advance by ``⌈log2 n⌉`` rounds.
    participants:
        Mapping from each participating node to the message it is trying
        to deliver.  All other nodes listen.
    rng:
        Source of randomness (a single generator is fine: the decisions
        are still independent across nodes because each node's draw is a
        separate call).
    listeners:
        Nodes whose receptions should be reported; defaults to every
        non-participant.

    Returns
    -------
    dict
        Mapping from listener to the first message it received during the
        Decay round (listeners that heard nothing are absent).
    """
    graph = network.graph
    num_steps = decay_round_length(graph.num_nodes)
    if listeners is None:
        listeners = [node for node in graph if node not in participants]
    heard: dict[Any, Message] = {}
    for step in range(1, num_steps + 1):
        actions: dict[Any, Action] = {}
        for node, message in participants.items():
            if decay_transmit_step(step, rng):
                actions[node] = Action.transmit(message)
            else:
                actions[node] = Action.listen()
        outcome = network.run_round(actions)
        for node in listeners:
            received = outcome.received[node]
            if isinstance(received, Message) and node not in heard:
                heard[node] = received
    return heard


def decay_success_probability_lower_bound(num_contenders: int) -> float:
    """Analytic lower bound on the Lemma 3.1 success probability.

    For a listener with ``k = num_contenders`` participating neighbours,
    consider the Decay step ``i`` with ``2^-i`` closest to ``1/k`` from
    below (so ``1/(2k) < 2^-i <= 1/k``).  The probability that exactly one
    contender transmits at that step is at least

        ``k * p * (1 - p)^(k-1)  >=  (1/2) * (1 - 1/k)^(k-1)  >=  1/(2e)``.

    This is the classical bound; the Lemma 3.1 regression tests check
    that the empirical success rate dominates it for all ``k``.
    """
    if num_contenders < 1:
        raise ConfigurationError(
            f"num_contenders must be >= 1, got {num_contenders}"
        )
    if num_contenders == 1:
        # Step 1 alone transmits with probability 1/2.
        return 0.5
    k = num_contenders
    # Find the step probability p = 2^-i with 1/(2k) < p <= 1/k.
    step = math.ceil(math.log2(k))
    p = 2.0 ** (-step)
    return k * p * (1.0 - p) ** (k - 1)
