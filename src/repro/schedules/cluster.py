"""Cost-charged cluster schedules (Lemma 2.3, simplified).

The skeleton Compete pays ``⌈log2 n⌉`` Decay steps per round of progress
because a listener could, in the worst case, have ``Θ(n)`` contending
neighbours.  The paper's Lemma 2.3 replaces that global worst case with
a *charging argument* over a cluster decomposition: schedule length is
bought per cluster, priced at the contention the cluster can actually
cause, and the total cost telescopes into the headline bound instead of
multiplying by ``log n``.

This module reproduces the charging argument in its simplified,
simulation-friendly form.  Given a
:class:`~repro.core.clustering.ClusterDecomposition`, each node ``v`` is
charged for

* the contention bound of its own cluster (the **intra-cluster** charge:
  resolving collisions among clustermates), and
* the contention bounds of every cluster owning one of its neighbours
  (the **inter-cluster** charge: a transmission by ``v`` also lands on
  listeners across its cluster's boundary).

``v``'s Decay cycle is then shortened to
``⌈log2(charged_contention(v) + 1)⌉`` steps -- enough, by the Lemma 3.1
argument, to resolve the contention at *every* listener ``v`` can reach,
because each such listener ``u`` lives in a charged cluster and
``contention(cluster(u)) >= degree(u) >= #contenders at u``.  On a path
this cuts the cycle from ``⌈log2 n⌉`` to 2 steps; on a grid the 3-step
charge rounds up to a 4-step cycle; on a star (where the hub really
does face ``n - 1`` contenders) it correctly stays at ``⌈log2 n⌉`` --
the schedule never undershoots the contention a cluster certifies.

Cycle lengths are rounded up to powers of two so that shorter cycles
*nest* inside longer ones (see
:func:`~repro.schedules.transmission.next_power_of_two`): whenever a
contender with the longest cycle at a listener reaches the step whose
probability matches the contender count, every other contender is at the
same step, which is exactly the alignment Lemma 3.1's
single-transmitter calculation needs.
"""

from __future__ import annotations

import math

from repro.schedules.transmission import (
    TransmissionSchedule,
    decay_probabilities,
    next_power_of_two,
)


def charged_cycle_steps(contention_bound: int) -> int:
    """Decay steps charged for a contention bound, before pow-2 rounding.

    >>> [charged_cycle_steps(k) for k in (0, 1, 2, 4, 255)]
    [1, 1, 2, 3, 8]
    """
    return max(1, math.ceil(math.log2(contention_bound + 1)))


def cluster_schedule(decomposition, name: str = "clustered") -> TransmissionSchedule:
    """Build the cost-charged transmission schedule of a decomposition.

    Each node's Decay cycle has
    ``next_power_of_two(⌈log2(charged_contention + 1)⌉)`` steps with the
    classical ``2^-step`` probabilities, where ``charged_contention`` is
    :meth:`~repro.core.clustering.ClusterDecomposition.charged_contention`
    (the intra- plus inter-cluster charge described in the module
    docstring).

    >>> from repro import topology
    >>> from repro.core.clustering import decompose
    >>> schedule = cluster_schedule(decompose(topology.path_graph(64)))
    >>> schedule.max_period()  # contention 2 everywhere -> 2-step cycles
    2
    """
    cycles = {}
    for node in decomposition.graph.nodes():
        steps = charged_cycle_steps(decomposition.charged_contention(node))
        cycles[node] = decay_probabilities(next_power_of_two(steps))
    return TransmissionSchedule(cycles, name=name)
