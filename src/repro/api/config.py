"""The unified run configuration: :class:`ExecutionConfig` + :func:`resolve_execution`.

Before this layer existed, every entry point threaded three orthogonal
execution axes -- ``backend="reference"|"vectorized"``,
``engine="auto"|"dense"|"sparse"``, ``strategy="skeleton"|"clustered"`` --
plus the collision model and the round-budget knobs (``parameters`` /
``margin``) as separate keyword arguments, and every new axis meant
touching every call site.  :class:`ExecutionConfig` collapses the web
into one validated, immutable value object that `Compete`, `broadcast`,
`elect_leader`, `decay_broadcast`, `VectorizedCompeteEngine` and the
benchmark subsystem all accept as a single ``config=``:

>>> from repro.api import ExecutionConfig
>>> config = ExecutionConfig(backend="vectorized", engine="sparse")
>>> config.backend, config.engine, config.strategy
('vectorized', 'sparse', 'skeleton')

Configs are frozen; derive variants with :meth:`ExecutionConfig.replace`:

>>> config.replace(strategy="clustered").strategy
'clustered'
>>> config.engine  # the original is untouched
'sparse'

:func:`resolve_execution` is the one shared path that turns a config plus
a concrete graph into everything a run needs -- the derived
:class:`~repro.core.parameters.CompeteParameters` round budget, the
strategy compiled to a
:class:`~repro.schedules.transmission.TransmissionSchedule`, the
``"auto"`` engine resolved through the edge-density heuristic
(:func:`repro.simulation.sparse.select_engine` -- applied here and only
here for internal callers, so the dense/sparse crossover has a single
source of truth), and the normalised collision model.  The per-node
seeding policy (the ``DrawStreams`` replay and its pre-draw block size)
also lives behind it: :meth:`ResolvedExecution.build_engine` constructs
the vectorized engine with the config's ``draw_block`` and the already
concrete kernel.

The legacy per-function kwargs keep working for one release through
:func:`coerce_execution_config`, which emits a single
:class:`DeprecationWarning` per call and builds the equivalent config --
so old call sites produce bit-for-bit identical runs while they migrate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import warnings
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.dynamics import DynamicsSpec, FaultSchedule, coerce_dynamics
from repro.network.graph import Graph
from repro.network.radio import CollisionModel
from repro.core.parameters import DEFAULT_MARGIN, CompeteParameters
from repro.core.compete import (
    BACKENDS,
    STRATEGIES,
    CompeteStrategy,
    resolve_strategy,
)
from repro.schedules.transmission import TransmissionSchedule
from repro.simulation.rng import RNG_MODES
from repro.simulation.sparse import resolve_engine
from repro.simulation.vectorized import (
    DEFAULT_DRAW_BLOCK,
    ENGINES,
    VectorizedCompeteEngine,
)
from repro.topology.validation import validate_radio_topology

#: Seed policies: how per-(trial, node) randomness is produced.
#: ``"replay"`` replays the reference runner's ``SeedSequence.spawn``
#: streams for round-exact backend parity; ``"decoupled"`` evaluates the
#: stateless counter-based hash of :mod:`repro.simulation.rng`
#: (vectorized backend only -- fast, seed-reproducible, distributionally
#: equivalent).  Aliases :data:`repro.simulation.rng.RNG_MODES`.
RNG_POLICIES = RNG_MODES

_COLLISION_BY_NAME = {model.value: model for model in CollisionModel}


@dataclasses.dataclass(frozen=True)
class ExecutionConfig:
    """Validated, immutable description of *how* a run executes.

    One config object covers every execution axis that used to be a
    separate keyword argument; it is independent of *what* runs (the
    graph, candidates, seeds), so one instance can drive many runs.

    Attributes
    ----------
    backend:
        ``"reference"`` (per-node protocols through the pure-Python
        :class:`~repro.simulation.runner.ProtocolRunner`) or
        ``"vectorized"`` (the round-exact NumPy batch engine).
    engine:
        Kernel selector for the vectorized backend: ``"auto"`` (the
        edge-density heuristic), ``"dense"`` or ``"sparse"``.  Ignored
        by the reference backend.
    strategy:
        The Compete inner-loop strategy: a registered name
        (:data:`repro.core.compete.STRATEGIES`) or a custom
        :class:`~repro.core.compete.CompeteStrategy` instance.
    collision_model:
        The radio model's collision semantics; accepts the enum or its
        string value (``"no-detection"`` / ``"with-detection"``) and is
        normalised to the enum.
    parameters:
        Explicit round budget (:class:`CompeteParameters`); ``None``
        derives it from the graph at resolution time.  Graph-specific,
        so configs carrying it only fit graphs of that size.
    margin:
        Multiplier on ``D + log2 n`` for the derived round budget
        (ignored when ``parameters`` is given).
    draw_block:
        Pre-draw block size of the vectorized backend's
        :class:`~repro.simulation.vectorized.DrawStreams` replay.
    rng:
        Seed policy, one of :data:`RNG_POLICIES`: ``"replay"`` (the
        reference-parity stream replay, round-exact across backends) or
        ``"decoupled"`` (the counter-based hash fast mode; vectorized
        backend only, seed-reproducible against itself, equivalent to
        replay *in distribution* -- the contract
        ``tests/test_rng_decoupled.py`` enforces statistically).
    dynamics:
        Optional :class:`repro.dynamics.DynamicsSpec` (or its
        ``describe()`` mapping, normalised to the spec): the seeded
        fault environment -- edge churn, node crash/recovery, jamming
        windows -- applied identically by every backend.  ``None`` (the
        default) is the static network.  Included in :meth:`identity`
        when set, so faulty and clean runs can never share a cache entry
        or a baseline join key.
    """

    backend: str = "reference"
    engine: str = "auto"
    strategy: Union[str, CompeteStrategy] = "skeleton"
    collision_model: Union[str, CollisionModel] = CollisionModel.NO_DETECTION
    parameters: Optional[CompeteParameters] = None
    margin: float = DEFAULT_MARGIN
    draw_block: int = DEFAULT_DRAW_BLOCK
    rng: str = "replay"
    dynamics: Optional[Union[DynamicsSpec, Mapping[str, Any]]] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if not isinstance(self.strategy, CompeteStrategy) and (
            self.strategy not in STRATEGIES
        ):
            raise ConfigurationError(
                f"strategy must be one of {STRATEGIES} or a CompeteStrategy "
                f"instance, got {self.strategy!r}"
            )
        if isinstance(self.collision_model, str):
            try:
                normalised = _COLLISION_BY_NAME[self.collision_model]
            except KeyError:
                raise ConfigurationError(
                    "collision_model must be a CollisionModel or one of "
                    f"{sorted(_COLLISION_BY_NAME)}, got "
                    f"{self.collision_model!r}"
                ) from None
            object.__setattr__(self, "collision_model", normalised)
        elif not isinstance(self.collision_model, CollisionModel):
            raise ConfigurationError(
                "collision_model must be a CollisionModel or its string "
                f"value, got {type(self.collision_model).__name__}"
            )
        if self.parameters is not None and not isinstance(
            self.parameters, CompeteParameters
        ):
            raise ConfigurationError(
                "parameters must be a CompeteParameters or None, got "
                f"{type(self.parameters).__name__}"
            )
        if not self.margin > 0:
            raise ConfigurationError(
                f"margin must be > 0, got {self.margin}"
            )
        if self.draw_block < 1:
            raise ConfigurationError(
                f"draw_block must be >= 1, got {self.draw_block}"
            )
        if self.rng not in RNG_POLICIES:
            raise ConfigurationError(
                f"rng must be one of {RNG_POLICIES}, got {self.rng!r}"
            )
        if self.rng == "decoupled" and self.backend == "reference":
            raise ConfigurationError(
                "rng='decoupled' requires the vectorized backend: the "
                "reference runner is defined by its per-node stream "
                "replay and has no counter-based mode"
            )
        # Normalise mappings (the persisted JSON form) to the spec, like
        # collision_model above; validation happens in DynamicsSpec.
        object.__setattr__(self, "dynamics", coerce_dynamics(self.dynamics))

    @property
    def strategy_name(self) -> str:
        """The strategy's short name (recorded on results/artifacts)."""
        if isinstance(self.strategy, CompeteStrategy):
            return self.strategy.name
        return self.strategy

    def strategy_instance(self) -> CompeteStrategy:
        """The strategy as a :class:`CompeteStrategy` instance."""
        return resolve_strategy(self.strategy)

    def replace(self, **changes: Any) -> "ExecutionConfig":
        """A new config with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> dict[str, Any]:
        """The config's execution axes as a JSON-friendly dict."""
        description = {
            "backend": self.backend,
            "engine": self.engine,
            "strategy": self.strategy_name,
            "collision_model": self.collision_model.value,
            "margin": self.margin,
            "rng": self.rng,
        }
        # Included only when set: every static config (and with it every
        # committed pre-dynamics artifact identity) keeps the exact
        # digest it had before the dynamics axis existed.
        if self.dynamics is not None:
            description["dynamics"] = self.dynamics.describe()
        return description

    def identity(self) -> str:
        """A short stable digest of the config's execution axes.

        Two configs share an identity exactly when :meth:`describe`
        agrees -- backend, engine, strategy, collision model, margin and
        rng policy.  The benchmark report subsystem uses this as the
        join key when matching a candidate artifact to its committed
        baseline, so the digest must stay stable across processes and
        releases (it hashes the canonical JSON form, never ``repr``).

        >>> ExecutionConfig().identity() == ExecutionConfig().identity()
        True
        >>> ExecutionConfig().identity() != ExecutionConfig(
        ...     strategy="clustered").identity()
        True
        """
        canonical = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    def cache_key(self, topology: str) -> str:
        """The resolution-cache key for this config on one topology.

        ``topology`` is a topology digest (normally
        :func:`topology_digest` over a scenario's family + generator
        arguments).  Two (config, topology) pairs share a key exactly
        when :meth:`identity` and the digest both agree, so configs that
        execute identically on *different* graphs -- the classic cache
        collision -- can never share an entry.  ``repro.service`` keys
        its compiled-:class:`ResolvedExecution` LRU with this.

        Note the deliberate blind spots, matching :meth:`identity`:
        ``draw_block`` (a throughput knob that cannot change results)
        and an explicit ``parameters`` round budget (graph-derived on
        the service path, where requests arrive as scenario payloads).
        Callers that pin explicit parameters must not share a cache
        across different budgets.
        """
        return f"{self.identity()}:{topology}"


def topology_digest(family: str, topology_args: Mapping[str, Any]) -> str:
    """A short stable digest identifying one generated topology.

    Hashes the canonical JSON form of the scenario-level description
    (family name + generator arguments, which for random families pin an
    explicit seed), i.e. exactly the data a persisted scenario block
    uses to rebuild the graph -- so equal digests mean the same graph
    without having to build it first.

    >>> topology_digest("grid", {"rows": 8, "cols": 8}) == topology_digest(
    ...     "grid", {"cols": 8, "rows": 8})
    True
    >>> topology_digest("grid", {"rows": 8, "cols": 8}) != topology_digest(
    ...     "grid", {"rows": 16, "cols": 16})
    True
    """
    canonical = json.dumps(
        {"family": family, "topology_args": dict(topology_args)},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


class ResolvedExecution:
    """An :class:`ExecutionConfig` bound to one concrete graph.

    Produced by :func:`resolve_execution`; holds everything downstream
    code needs to run: the validated graph, the derived (or supplied)
    round budget, the strategy instance, the concrete vectorized kernel
    (``"auto"`` already resolved through the density heuristic), and --
    built lazily, because cluster decomposition is not free -- the
    compiled :class:`TransmissionSchedule`.
    """

    def __init__(
        self,
        graph: Graph,
        config: ExecutionConfig,
        parameters: CompeteParameters,
        strategy: CompeteStrategy,
        engine: str,
    ) -> None:
        self._graph = graph
        self._config = config
        self._parameters = parameters
        self._strategy = strategy
        self._engine = engine
        self._schedule: Optional[TransmissionSchedule] = None
        self._fault_schedule: Optional[FaultSchedule] = None

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def config(self) -> ExecutionConfig:
        return self._config

    @property
    def parameters(self) -> CompeteParameters:
        """The run's round budget."""
        return self._parameters

    @property
    def strategy(self) -> CompeteStrategy:
        """The resolved strategy instance."""
        return self._strategy

    @property
    def collision_model(self) -> CollisionModel:
        return self._config.collision_model

    @property
    def backend(self) -> str:
        return self._config.backend

    @property
    def engine(self) -> str:
        """The concrete vectorized kernel (never ``"auto"``)."""
        return self._engine

    @property
    def schedule(self) -> TransmissionSchedule:
        """The strategy's compiled schedule (built on first access)."""
        if self._schedule is None:
            self._schedule = self._strategy.build_schedule(
                self._graph, self._parameters
            )
        return self._schedule

    @property
    def fault_schedule(self) -> Optional[FaultSchedule]:
        """The config's dynamics compiled against this graph.

        ``None`` for static configs.  Built on first access (the
        canonical edge enumeration costs an ``O(m log m)`` sort) and
        shared by every backend the resolution drives, so the reference
        runner and the vectorized kernels replay one fault trajectory.
        """
        if self._fault_schedule is None and self._config.dynamics is not None:
            self._fault_schedule = FaultSchedule(
                self._config.dynamics, self._graph
            )
        return self._fault_schedule

    def build_engine(self) -> VectorizedCompeteEngine:
        """Construct the vectorized engine this resolution describes.

        The engine receives the already-resolved concrete kernel, so the
        density heuristic is applied exactly once, in
        :func:`resolve_execution`.
        """
        return VectorizedCompeteEngine(
            self._graph,
            schedule=self.schedule,
            max_rounds=self._parameters.total_rounds,
            engine=self._engine,
            draw_block=self._config.draw_block,
            rng=self._config.rng,
            dynamics=self.fault_schedule,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResolvedExecution(backend={self.backend!r}, "
            f"engine={self._engine!r}, strategy={self._strategy.name!r}, "
            f"n={self._graph.num_nodes})"
        )


def resolve_execution(
    graph: Graph,
    config: Optional[ExecutionConfig] = None,
    *,
    parameters: Optional[CompeteParameters] = None,
    diameter: Optional[int] = None,
) -> ResolvedExecution:
    """Bind ``config`` (default :class:`ExecutionConfig()`) to ``graph``.

    This is the single shared resolution path: topology validation, the
    round-budget derivation, strategy lookup, and -- crucially -- the
    ``"auto"`` engine decision all happen here, so every caller agrees
    on the dense/sparse crossover.

    Parameters
    ----------
    graph:
        A connected radio-network topology.
    config:
        The execution description; ``None`` means all defaults.
    parameters:
        Explicit round budget, overriding ``config.parameters``; useful
        when the caller already knows the diameter.
    diameter:
        Skip the exact diameter computation when deriving parameters
        (forwarded to :meth:`CompeteParameters.from_graph`).

    >>> from repro import topology
    >>> resolved = resolve_execution(topology.path_graph(8))
    >>> resolved.engine, resolved.strategy.name
    ('dense', 'skeleton')
    """
    if config is None:
        config = ExecutionConfig()
    validate_radio_topology(graph)
    if parameters is None:
        parameters = config.parameters
    if parameters is None:
        parameters = CompeteParameters.from_graph(
            graph, diameter=diameter, margin=config.margin
        )
    elif parameters.num_nodes != graph.num_nodes:
        raise ConfigurationError(
            f"parameters are for n={parameters.num_nodes} but the graph "
            f"has n={graph.num_nodes}"
        )
    strategy = config.strategy_instance()
    engine = resolve_engine(config.engine, graph.num_nodes, graph.num_edges)
    return ResolvedExecution(graph, config, parameters, strategy, engine)


def coerce_execution_config(
    config: Optional[ExecutionConfig],
    *,
    where: str,
    stacklevel: int = 3,
    **legacy: Any,
) -> ExecutionConfig:
    """The deprecation shim behind the old per-function kwargs.

    ``legacy`` holds the old keyword arguments (``backend=``,
    ``engine=``, ``strategy=``, ``collision_model=``, ``margin=``) with
    ``None`` meaning "not passed".  When none were passed, ``config``
    (or a default :class:`ExecutionConfig`) is returned untouched.  When
    any were, exactly **one** :class:`DeprecationWarning` is emitted --
    naming every legacy kwarg used and the replacement -- and the
    equivalent config is built, so old call sites keep producing
    seed-identical results.  Mixing ``config=`` with legacy kwargs is an
    error rather than a silent precedence rule.
    """
    used = {key: value for key, value in legacy.items() if value is not None}
    if not used:
        return config if config is not None else ExecutionConfig()
    if config is not None:
        raise ConfigurationError(
            f"{where}: pass either config= or the deprecated "
            f"{sorted(used)} keyword(s), not both"
        )
    names = ", ".join(f"{key}=" for key in sorted(used))
    replacement = ", ".join(
        f"{key}={value!r}" for key, value in sorted(used.items())
    )
    warnings.warn(
        f"{where}: the {names} keyword(s) are deprecated and will be "
        f"removed in the next release; pass "
        f"config=ExecutionConfig({replacement}) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return ExecutionConfig(**used)
