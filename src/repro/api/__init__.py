"""The first-class run API: one config object, one algorithm registry.

This layer is the single front door for *how* and *what* to run:

* :class:`~repro.api.config.ExecutionConfig` -- a validated, immutable
  value object holding every execution axis (backend, engine, strategy,
  collision model, round budget, seed policy) that used to be threaded
  as separate keyword arguments through every entry point.
  :func:`~repro.api.config.resolve_execution` binds a config to a
  concrete graph -- deriving the round budget, compiling the strategy's
  :class:`~repro.schedules.transmission.TransmissionSchedule`, and
  resolving ``engine="auto"`` through the edge-density heuristic in
  exactly one place.
* :class:`~repro.api.registry.AlgorithmRegistry` -- algorithms
  (``broadcast``, ``leader-election``, the classical
  ``decay-broadcast`` baseline, and future prior-work protocols) as
  named, capability-declaring plugins
  (:data:`~repro.api.registry.DEFAULT_ALGORITHMS`), so scenarios and
  the CLI dispatch by name instead of ``if``/``elif`` chains.

The old per-function ``backend=``/``engine=``/``strategy=`` kwargs keep
working for one release through
:func:`~repro.api.config.coerce_execution_config` (one
:class:`DeprecationWarning` per call, identical results).
"""

from repro.api.config import (
    RNG_POLICIES,
    ExecutionConfig,
    ResolvedExecution,
    coerce_execution_config,
    resolve_execution,
    topology_digest,
)
from repro.api.registry import (
    DEFAULT_ALGORITHMS,
    Algorithm,
    AlgorithmRegistry,
    get_algorithm,
)

__all__ = [
    "RNG_POLICIES",
    "ExecutionConfig",
    "ResolvedExecution",
    "coerce_execution_config",
    "resolve_execution",
    "topology_digest",
    "DEFAULT_ALGORITHMS",
    "Algorithm",
    "AlgorithmRegistry",
    "get_algorithm",
]
