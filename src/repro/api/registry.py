"""The algorithm registry: named algorithms with declared capabilities.

Scenarios, the benchmark runner and the CLI used to dispatch on
hard-coded ``if algorithm == "broadcast" ... elif ...`` chains, so a new
baseline protocol meant edits across five modules.  This module makes
the algorithm a first-class registered object: an :class:`Algorithm`
bundles the entry points (single-seed ``run``, optional batched
``run_batch``) with the *capabilities* callers must respect -- which
collision models the protocol supports, whether it can (or must) run
with spontaneous transmissions, and which extra per-trial series its
results report.  :data:`DEFAULT_ALGORITHMS` holds the built-ins:

* ``"broadcast"`` -- Compete-based broadcasting (the paper's algorithm),
* ``"leader-election"`` -- ~1/n self-selection + Compete on random IDs,
* ``"decay-broadcast"`` -- the classical repeated-Decay baseline
  (:mod:`repro.core.decay_broadcast`), registered through the same seam
  a future Ghaffari--Haeupler--Khabbazian collision-detection baseline
  will use.

Adding a baseline is now a self-contained plugin: implement the
algorithm against :class:`~repro.api.config.ExecutionConfig`, build an
:class:`Algorithm` record, and ``DEFAULT_ALGORITHMS.register(...)`` it
-- scenarios and the CLI pick it up by name with no dispatch edits.

>>> sorted(DEFAULT_ALGORITHMS.names())
['broadcast', 'decay-broadcast', 'leader-election']
>>> DEFAULT_ALGORITHMS.get("decay-broadcast").supports_spontaneous
False
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.network.graph import Graph
from repro.network.radio import CollisionModel
from repro.api.config import ExecutionConfig
from repro.core.broadcast import broadcast, broadcast_batch
from repro.core.decay_broadcast import decay_broadcast, decay_broadcast_batch
from repro.core.leader_election import elect_leader


@dataclasses.dataclass(frozen=True)
class Algorithm:
    """One registered algorithm: entry points plus declared capabilities.

    Attributes
    ----------
    name:
        Registry key; also what scenarios and the CLI dispatch on.
    description:
        One line shown by ``python -m repro.experiments algorithms``.
    run:
        ``run(graph, *, config, seed, spontaneous)`` -> result object.
        Implementations pick their own conventions for anything further
        (e.g. the broadcast source defaults to the graph's first node).
    run_batch:
        Optional ``run_batch(graph, *, config, seeds, spontaneous)`` ->
        list of results, for algorithms whose trials batch on the
        vectorized backend; ``None`` falls back to per-seed ``run``
        calls.
    collision_models:
        The collision semantics the protocol is defined for.
    supports_spontaneous / requires_spontaneous:
        Whether the algorithm *may* and *must* run with uninformed nodes
        transmitting from round 0 (the paper's model).  The classical
        baselines set ``supports_spontaneous=False``.
    spontaneous_default:
        What ``spontaneous=None`` resolves to when dispatching.
    extra_series:
        Additional per-trial result attributes the benchmark aggregator
        summarises (e.g. ``("attempts",)`` for leader election).
    """

    name: str
    description: str
    run: Callable[..., Any]
    run_batch: Optional[Callable[..., Any]] = None
    collision_models: frozenset = frozenset(CollisionModel)
    supports_spontaneous: bool = True
    requires_spontaneous: bool = False
    spontaneous_default: bool = False
    extra_series: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("algorithm name must be non-empty")
        if not self.collision_models:
            raise ConfigurationError(
                f"algorithm {self.name!r} must support at least one "
                "collision model"
            )
        if self.requires_spontaneous and not self.supports_spontaneous:
            raise ConfigurationError(
                f"algorithm {self.name!r} cannot require spontaneous "
                "transmissions while not supporting them"
            )

    def check(
        self, *, collision_model: CollisionModel, spontaneous: bool
    ) -> None:
        """Raise unless this capability combination is declared supported."""
        if collision_model not in self.collision_models:
            supported = sorted(m.value for m in self.collision_models)
            raise ConfigurationError(
                f"algorithm {self.name!r} does not support collision model "
                f"{collision_model.value!r} (supported: {supported})"
            )
        if spontaneous and not self.supports_spontaneous:
            raise ConfigurationError(
                f"algorithm {self.name!r} does not support spontaneous "
                "transmissions (it models the classical regime)"
            )
        if not spontaneous and self.requires_spontaneous:
            raise ConfigurationError(
                f"algorithm {self.name!r} requires spontaneous transmissions"
            )


class AlgorithmRegistry:
    """A named collection of :class:`Algorithm` records.

    The module-level :data:`DEFAULT_ALGORITHMS` holds the built-ins;
    tests and downstream code can build private registries.
    """

    def __init__(self) -> None:
        self._algorithms: dict[str, Algorithm] = {}

    def register(self, algorithm: Algorithm) -> Algorithm:
        """Add ``algorithm``; duplicate names are rejected."""
        if algorithm.name in self._algorithms:
            raise ConfigurationError(
                f"algorithm {algorithm.name!r} is already registered"
            )
        self._algorithms[algorithm.name] = algorithm
        return algorithm

    def get(self, name: str) -> Algorithm:
        """Look up an algorithm by exact name."""
        try:
            return self._algorithms[name]
        except KeyError:
            hint = ", ".join(sorted(self._algorithms)) or "(registry is empty)"
            raise ConfigurationError(
                f"unknown algorithm {name!r}; registered algorithms: {hint}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._algorithms)

    def run(
        self,
        name: str,
        graph: Graph,
        *,
        config: Optional[ExecutionConfig] = None,
        seed: Optional[int] = None,
        spontaneous: Optional[bool] = None,
        **kwargs: Any,
    ) -> Any:
        """Dispatch one seeded run to the named algorithm.

        ``spontaneous=None`` resolves to the algorithm's declared
        default; the capability check runs before any work.

        >>> from repro import topology
        >>> result = DEFAULT_ALGORITHMS.run(
        ...     "decay-broadcast", topology.star_graph(6), seed=0)
        >>> result.success
        True
        """
        algorithm = self.get(name)
        if config is None:
            config = ExecutionConfig()
        if spontaneous is None:
            spontaneous = algorithm.spontaneous_default
        algorithm.check(
            collision_model=config.collision_model, spontaneous=spontaneous
        )
        return algorithm.run(
            graph, config=config, seed=seed, spontaneous=spontaneous, **kwargs
        )

    def run_batch(
        self,
        name: str,
        graph: Graph,
        *,
        seeds,
        config: Optional[ExecutionConfig] = None,
        spontaneous: Optional[bool] = None,
        **kwargs: Any,
    ) -> list:
        """Dispatch a batch of seeded trials to the named algorithm.

        Uses the algorithm's batched entry point when it has one (the
        trials share one vectorized engine), falling back to per-seed
        :meth:`run` calls otherwise.
        """
        algorithm = self.get(name)
        if config is None:
            config = ExecutionConfig()
        if spontaneous is None:
            spontaneous = algorithm.spontaneous_default
        algorithm.check(
            collision_model=config.collision_model, spontaneous=spontaneous
        )
        if algorithm.run_batch is not None:
            return algorithm.run_batch(
                graph, config=config, seeds=seeds, spontaneous=spontaneous,
                **kwargs,
            )
        return [
            algorithm.run(
                graph, config=config, seed=seed, spontaneous=spontaneous,
                **kwargs,
            )
            for seed in seeds
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._algorithms

    def __len__(self) -> int:
        return len(self._algorithms)

    def __iter__(self) -> Iterator[Algorithm]:
        return iter(self._algorithms.values())


# ----------------------------------------------------------------------
# built-in algorithms
# ----------------------------------------------------------------------
def _default_source(graph: Graph, source) -> Any:
    return graph.nodes()[0] if source is None else source


def _run_broadcast(graph, *, config, seed, spontaneous, source=None):
    return broadcast(
        graph, _default_source(graph, source), seed=seed,
        spontaneous=spontaneous, config=config,
    )


def _run_broadcast_batch(graph, *, config, seeds, spontaneous, source=None):
    return broadcast_batch(
        graph, _default_source(graph, source), seeds=seeds,
        spontaneous=spontaneous, config=config,
    )


def _run_election(graph, *, config, seed, spontaneous):
    return elect_leader(
        graph, seed=seed, spontaneous=spontaneous, config=config
    )


def _run_decay_broadcast(graph, *, config, seed, spontaneous, source=None):
    return decay_broadcast(
        graph, _default_source(graph, source), seed=seed,
        spontaneous=spontaneous, config=config,
    )


def _run_decay_broadcast_batch(
    graph, *, config, seeds, spontaneous, source=None
):
    return decay_broadcast_batch(
        graph, _default_source(graph, source), seeds=seeds,
        spontaneous=spontaneous, config=config,
    )


#: The built-in algorithm registry scenarios and the CLI dispatch through.
DEFAULT_ALGORITHMS = AlgorithmRegistry()

DEFAULT_ALGORITHMS.register(Algorithm(
    name="broadcast",
    description=(
        "Compete-based broadcasting (the paper's algorithm; spontaneous "
        "transmissions on by default)"
    ),
    run=_run_broadcast,
    run_batch=_run_broadcast_batch,
    spontaneous_default=True,
))

DEFAULT_ALGORITHMS.register(Algorithm(
    name="leader-election",
    description=(
        "~1/n candidate self-selection + Compete on random identifiers, "
        "retried until a unique leader saturates"
    ),
    run=_run_election,
    spontaneous_default=False,
    extra_series=("attempts",),
))

DEFAULT_ALGORITHMS.register(Algorithm(
    name="decay-broadcast",
    description=(
        "classical repeated-Decay broadcast (Bar-Yehuda-Goldreich-Itai), "
        "the no-spontaneous-transmissions baseline"
    ),
    run=_run_decay_broadcast,
    run_batch=_run_decay_broadcast_batch,
    supports_spontaneous=False,
    spontaneous_default=False,
))


def get_algorithm(name: str) -> Algorithm:
    """Look up ``name`` in :data:`DEFAULT_ALGORITHMS`."""
    return DEFAULT_ALGORITHMS.get(name)
